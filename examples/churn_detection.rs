//! Dynamic node classification — the Wikipedia/MOOC/Reddit scenario:
//! predict which users are entering an anomalous state (ban / drop-out /
//! churn) from their temporal interaction patterns.
//!
//! A fraction of synthetic users turn anomalous mid-stream: their item
//! choices stop following community structure and their sessions churn.
//! We pre-train with CPDG on the first 60% of the stream and classify user
//! states on the remainder, comparing against a task-supervised TGN.
//!
//! ```text
//! cargo run --release --example churn_detection
//! ```

// Examples narrate their results on stdout by design.
#![allow(clippy::disallowed_macros)]

use cpdg::core::pipeline::{run_node_classification, PipelineConfig};
use cpdg::dgnn::EncoderKind;
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, GraphStats, SyntheticConfig};

fn main() {
    let dataset = generate(&SyntheticConfig::wikipedia_like(3).scaled(0.6));
    let stats = GraphStats::compute(&dataset.graph);
    println!(
        "dataset: {} events, {} dynamic labels ({:.1}% positive)\n",
        dataset.graph.num_events(),
        dataset.graph.labels().len(),
        stats.label_positive_rate * 100.0
    );

    let split = time_transfer(&dataset.graph, 0.6).expect("split");

    let mut cpdg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(3);
    cpdg.dim = 16;
    cpdg.pretrain.epochs = 4;
    cpdg.finetune.epochs = 3;
    let cpdg_auc = run_node_classification(&split, &cpdg);

    let mut vanilla = PipelineConfig::vanilla(EncoderKind::Tgn).with_seed(3);
    vanilla.dim = 16;
    vanilla.pretrain.epochs = 4;
    vanilla.finetune.epochs = 3;
    let tgn_auc = run_node_classification(&split, &vanilla);

    println!("anomalous-user detection (test AUC):");
    println!("  TGN (task-supervised pre-training): {tgn_auc:.4}");
    println!("  TGN with CPDG pre-training        : {cpdg_auc:.4}");
    println!("  difference                        : {:+.4}", cpdg_auc - tgn_auc);
}
