//! Quickstart: pre-train a TGN encoder with CPDG on a small synthetic
//! dynamic graph, fine-tune on the later portion of the stream, and report
//! link-prediction metrics — the whole paper pipeline in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Examples narrate their results on stdout by design.
#![allow(clippy::disallowed_macros)]

use cpdg::core::pipeline::{run_link_prediction, PipelineConfig};
use cpdg::dgnn::EncoderKind;
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, SyntheticConfig};

fn main() {
    // 1. A synthetic user–item interaction stream with planted long-term
    //    preferences and short-term sessions (stands in for e.g. Amazon).
    let dataset = generate(&SyntheticConfig::amazon_like(42).scaled(0.5));
    println!(
        "dataset: {} nodes, {} events",
        dataset.graph.num_nodes(),
        dataset.graph.num_events()
    );

    // 2. Time transfer: pre-train on the first 70% of the stream,
    //    fine-tune + evaluate on the rest.
    let split = time_transfer(&dataset.graph, 0.7).expect("split");
    println!(
        "pre-train events: {}, downstream events: {}",
        split.pretrain.num_events(),
        split.downstream.num_events()
    );

    // 3. CPDG pre-training (temporal + structural contrast + link
    //    prediction pretext) with EIE-GRU fine-tuning, TGN backbone.
    let mut cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(42);
    cfg.dim = 16;
    cfg.pretrain.epochs = 4;
    cfg.finetune.epochs = 3;

    let cpdg = run_link_prediction(&split, &cfg, false);
    println!("CPDG        : AUC {:.4}  AP {:.4}", cpdg.auc, cpdg.ap);

    // 4. Compare against the same encoder without pre-training.
    let mut baseline = PipelineConfig::no_pretrain(EncoderKind::Tgn).with_seed(42);
    baseline.dim = 16;
    baseline.finetune.epochs = 3;
    let none = run_link_prediction(&split, &baseline, false);
    println!("No pre-train: AUC {:.4}  AP {:.4}", none.auc, none.ap);

    println!(
        "CPDG pre-training changed AUC by {:+.4}",
        cpdg.auc - none.auc
    );
}
