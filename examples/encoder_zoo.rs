//! Encoder zoo — the paper's model-generalisation claim (Table VIII):
//! CPDG is encoder-agnostic. This example pre-trains each of the three
//! Table III presets (DyRep, JODIE, TGN) with and without CPDG on the same
//! transfer split and prints the gain per backbone, plus each encoder's
//! module wiring and parameter count.
//!
//! ```text
//! cargo run --release --example encoder_zoo
//! ```

// Examples narrate their results on stdout by design.
#![allow(clippy::disallowed_macros)]

use cpdg::core::pipeline::{run_link_prediction, PipelineConfig};
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind};
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, SyntheticConfig};
use cpdg::tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = generate(&SyntheticConfig::amazon_like(11).scaled(0.5));
    let split = time_transfer(&dataset.graph, 0.7).expect("split");

    println!("Table III wiring and parameter counts (dim = 16):");
    for kind in EncoderKind::all() {
        let (embed, msg, agg, mem) = kind.modules();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DgnnConfig::preset(kind, 16, 1.0);
        let _enc = DgnnEncoder::new(&mut store, &mut rng, "enc", dataset.graph.num_nodes(), cfg);
        println!(
            "  {:<6} f={embed:?}, Msg={msg:?}, Agg={agg:?}, Mem={mem:?} — {} scalar params",
            kind.name(),
            store.scalar_count()
        );
    }
    println!();

    for kind in EncoderKind::all() {
        let mut vanilla = PipelineConfig::vanilla(kind).with_seed(11);
        vanilla.dim = 16;
        vanilla.pretrain.epochs = 4;
        vanilla.finetune.epochs = 3;
        let base = run_link_prediction(&split, &vanilla, false);

        let mut with_cpdg = PipelineConfig::cpdg(kind).with_seed(11);
        with_cpdg.dim = 16;
        with_cpdg.pretrain.epochs = 4;
        with_cpdg.finetune.epochs = 3;
        let ours = run_link_prediction(&split, &with_cpdg, false);

        println!(
            "{:<6} vanilla AUC {:.4} → with CPDG {:.4}  ({:+.4})",
            kind.name(),
            base.auc,
            ours.auc,
            ours.auc - base.auc
        );
    }
}
