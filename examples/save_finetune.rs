//! Pre-train once, save, fine-tune many times — the deployment workflow the
//! paper's introduction motivates: an industrial platform pre-trains a
//! single CPDG encoder on historical data, ships the artifact, and teams
//! fine-tune it for their own downstream windows without retraining from
//! scratch.
//!
//! Demonstrates the `ModelFile` envelope: encoder wiring + parameters +
//! EIE memory checkpoints round-trip through one JSON file.
//!
//! ```text
//! cargo run --release --example save_finetune
//! ```

// Examples narrate their results on stdout by design.
#![allow(clippy::disallowed_macros)]

use cpdg::core::finetune::{finetune_link_prediction, FinetuneConfig, FinetuneStrategy};
use cpdg::core::model_io::ModelFile;
use cpdg::core::pipeline::auto_time_scale;
use cpdg::core::pretrain::{pretrain, PretrainConfig};
use cpdg::core::EieFusion;
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor};
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, SyntheticConfig};
use cpdg::tensor::{optim::Adam, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn main() {
    let ds = generate(&SyntheticConfig::amazon_like(21).scaled(0.4));
    let split = time_transfer(&ds.graph, 0.7).expect("split");

    // --- stage 1: pre-train and save ---------------------------------
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(21);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 16, auto_time_scale(&split.pretrain));
    let mut encoder =
        DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg.clone());
    let head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", 16);
    let mut opt = Adam::new(2e-2);
    let out = pretrain(
        &mut encoder, &head, &mut store, &mut opt, &split.pretrain,
        &PretrainConfig { epochs: 3, ..Default::default() },
    );
    println!(
        "pre-trained: final loss {:.4}, {} checkpoints",
        out.epoch_losses.last().unwrap().total,
        out.checkpoints.len()
    );

    let path = PathBuf::from(std::env::temp_dir()).join("cpdg_example_model.json");
    let model = ModelFile::new(dcfg, ds.graph.num_nodes(), store, out.checkpoints);
    model.save(&path).expect("save model");
    println!("saved → {} ({} scalar params)", path.display(), model.params.scalar_count());

    // --- stage 2: a fresh process would reload and fine-tune ----------
    let reloaded = ModelFile::load(&path).expect("load model");
    let mut store2 = ParamStore::new();
    let mut rng2 = StdRng::seed_from_u64(99); // different init — will be overwritten
    let mut encoder2 = DgnnEncoder::new(
        &mut store2, &mut rng2, "enc", reloaded.num_nodes, reloaded.encoder_config.clone(),
    );
    let copied = store2.load_matching(&reloaded.params);
    println!("reloaded {copied} tensors into a fresh encoder");

    for strategy in [FinetuneStrategy::Full, FinetuneStrategy::Eie(EieFusion::Gru)] {
        let mut s = store2.clone();
        let cfg = FinetuneConfig { epochs: 2, strategy, ..Default::default() };
        let res = finetune_link_prediction(
            &mut encoder2, &mut s, &split.downstream, &reloaded.checkpoints, &cfg, None,
        );
        println!("fine-tune [{}]: AUC {:.4}  AP {:.4}", strategy.name(), res.auc, res.ap);
    }
    std::fs::remove_file(&path).ok();
}
