//! Incremental serving — the "no frequent retraining" story of the paper's
//! introduction, §I: in production, billions of interactions arrive in a
//! short interval, so retraining per task is impractical. Instead, a
//! pre-trained CPDG encoder *serves while it streams*: each arriving batch
//! updates node memory (no gradient work), and link scores are produced
//! on demand from the live memory.
//!
//! This example pre-trains on history, then replays the "live" tail of the
//! stream hour by hour, reporting rolling AUC and the memory drift — the
//! kind of loop an online recommender would run.
//!
//! ```text
//! cargo run --release --example incremental_serving
//! ```

// Examples narrate their results on stdout by design.
#![allow(clippy::disallowed_macros)]

use cpdg::core::pipeline::auto_time_scale;
use cpdg::core::pretrain::{pretrain, PretrainConfig};
use cpdg::dgnn::metrics::link_prediction_metrics;
use cpdg::dgnn::trainer::NegativeSampler;
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor};
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, NodeId, SyntheticConfig, Timestamp};
use cpdg::tensor::{optim::Adam, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = generate(&SyntheticConfig::meituan_like(5).scaled(0.4));
    let split = time_transfer(&ds.graph, 0.6).expect("split");
    println!(
        "history: {} events | live stream: {} events",
        split.pretrain.num_events(),
        split.downstream.num_events()
    );

    // Offline: CPDG pre-training on history.
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 16, auto_time_scale(&split.pretrain));
    let mut encoder =
        DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
    let mut opt = Adam::new(2e-2);
    pretrain(&mut encoder, &head, &mut store, &mut opt, &split.pretrain,
             &PretrainConfig { epochs: 3, ..Default::default() });
    println!("pre-training done; switching to serve-while-streaming mode\n");

    // Online: stream the live tail in windows; score each window's events
    // *before* applying them (true next-interaction prediction), then fold
    // them into memory. No parameter updates — frozen weights, live state.
    let live = &split.downstream;
    let sampler = NegativeSampler::from_graph(live);
    let mut srng = StdRng::seed_from_u64(77);
    let n_windows = 6;
    let per_window = live.num_events().div_ceil(n_windows);

    encoder.reset_state();
    println!("{:<8} {:>8} {:>9} {:>12}", "window", "events", "AUC", "memory rms");
    for (w, chunk) in live.events().chunks(per_window).enumerate() {
        let mut tape = Tape::new();
        let ctx = encoder.apply_pending(&mut tape, &store, live);

        let srcs: Vec<NodeId> = chunk.iter().map(|e| e.src).collect();
        let dsts: Vec<NodeId> = chunk.iter().map(|e| e.dst).collect();
        let times: Vec<Timestamp> = chunk.iter().map(|e| e.t).collect();
        let negs: Vec<NodeId> = chunk.iter().map(|_| sampler.sample(&mut srng)).collect();

        let z_src = encoder.embed_many(&mut tape, &store, &ctx, live, &srcs, &times);
        let z_dst = encoder.embed_many(&mut tape, &store, &ctx, live, &dsts, &times);
        let z_neg = encoder.embed_many(&mut tape, &store, &ctx, live, &negs, &times);
        let pos = head.score(&mut tape, &store, z_src, z_dst);
        let neg = head.score(&mut tape, &store, z_src, z_neg);
        let (auc, _) = link_prediction_metrics(
            tape.value(pos).data(),
            tape.value(neg).data(),
        );

        encoder.commit(&tape, ctx, chunk);
        println!(
            "{:<8} {:>8} {:>9.4} {:>12.4}",
            format!("#{}", w + 1),
            chunk.len(),
            auc,
            encoder.memory.rms()
        );
    }
    println!("\nMemory keeps absorbing the live stream with zero retraining —");
    println!("re-run pre-training only when the rolling AUC drifts down.");
}
