//! Recommender-system field transfer — the scenario the paper's
//! introduction motivates: an industrial platform pre-trains one encoder on
//! a data-rich product category and reuses it across categories instead of
//! retraining from scratch.
//!
//! We pre-train on the "Arts, Crafts & Sewing"-like field and fine-tune on
//! the "Beauty"-like and "Luxury"-like fields, comparing CPDG pre-training
//! against training each downstream model from scratch.
//!
//! ```text
//! cargo run --release --example recommender
//! ```

// Examples narrate their results on stdout by design.
#![allow(clippy::disallowed_macros)]

use cpdg::core::pipeline::{run_link_prediction, PipelineConfig};
use cpdg::dgnn::EncoderKind;
use cpdg::graph::split::{subgraph_where, time_cut};
use cpdg::graph::{generate, SyntheticConfig, TransferSplit};

fn main() {
    let dataset = generate(&SyntheticConfig::amazon_like(7).scaled(0.6));
    let cut = time_cut(&dataset.graph, 0.7);

    // Field 2 plays "Arts, Crafts & Sewing": the big pre-training corpus.
    let pretrain = subgraph_where(&dataset.graph, |e| e.field == 2 && e.t >= cut)
        .expect("pre-training field");
    println!("pre-training on field 2: {} events\n", pretrain.num_events());

    for (name, field) in [("Beauty", 0u16), ("Luxury", 1)] {
        let downstream = subgraph_where(&dataset.graph, |e| e.field == field && e.t >= cut)
            .expect("downstream field");
        let split = TransferSplit { pretrain: pretrain.clone(), downstream };
        println!(
            "== downstream field {name} ({} events) ==",
            split.downstream.num_events()
        );

        let mut cpdg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(7);
        cpdg.dim = 16;
        cpdg.pretrain.epochs = 4;
        cpdg.finetune.epochs = 3;
        let with = run_link_prediction(&split, &cpdg, false);

        let mut scratch = PipelineConfig::no_pretrain(EncoderKind::Tgn).with_seed(7);
        scratch.dim = 16;
        scratch.finetune.epochs = 3;
        let without = run_link_prediction(&split, &scratch, false);

        println!("  CPDG field-transfer : AUC {:.4}  AP {:.4}", with.auc, with.ap);
        println!("  train from scratch  : AUC {:.4}  AP {:.4}", without.auc, without.ap);
        println!("  transfer gain       : {:+.4} AUC\n", with.auc - without.auc);
    }
}
