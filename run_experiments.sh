#!/usr/bin/env bash
# Regenerates every table and figure of the paper, then the shape check.
# Quick mode by default; pass --full (or any harness flags) through.
#
#   ./run_experiments.sh                 # quick (~1 h on one CPU core)
#   ./run_experiments.sh --full          # 5 seeds, larger graphs
set -euo pipefail
cd "$(dirname "$0")"

ARGS=("$@")
cargo build --release -p cpdg-bench

run() {
    echo "=== $1 ${ARGS[*]:-} ==="
    cargo run --release -p cpdg-bench --bin "$1" -- "${ARGS[@]:-}" || echo "[$1 failed]"
}

run table4
run table5
run table6
run table7
run table8
run table9
run table10
run fig5
run fig6
run ablation
run scaling
run shape_check

echo "All experiment outputs are under results/."
