//! Continual-training chaos suite: the promotion-safety oracle.
//!
//! The contract under test: a serving engine with a continual trainer
//! attached must answer queries **byte-identically** to an engine with no
//! trainer at all, no matter what goes wrong inside the trainer —
//! injected step faults, emit faults, promote-time faults, guard
//! divergence, corrupt candidate files — right up until a candidate
//! passes the validation gate and is *promoted*. Training is allowed to
//! change serving exactly one way: through a validated promotion.
//!
//! Three pillars:
//!
//! * **baseline invariance** — one fault plan walks a cycle through every
//!   trainer fault point (`trainer.step`, `trainer.emit`,
//!   `trainer.promote`); after each failed cycle the trainer engine's
//!   replies are compared verbatim against a trainer-less twin, and every
//!   rejected candidate is accounted for in `STATUS`;
//! * **kill -9 at every cut point** — the process dies before emit, after
//!   emit but before promotion, and after promotion sealed the pointer;
//!   each time, recovery (promoted-pointer resolution + WAL replay) is a
//!   *deterministic function of durable state*: two independent
//!   recoveries serve byte-identical replies, and only the post-promotion
//!   cut resolves to the candidate epoch. A corrupt pointer is refused
//!   and falls back to the base model, still deterministically;
//! * **probation rollback** — a promotion that trips the circuit breaker
//!   inside its probation window is rolled back: the previous epoch
//!   returns to serving, the pointer is rewritten to it (even though it
//!   lives outside the epoch dir), and the candidate is quarantined.
//!
//! Plus the window-slicing properties the trainer leans on: every event
//! covered, exact tiling at `stride == span`, half-open boundaries,
//! duplicates inseparable, and slicing identical at any shard count after
//! merge-replay recovery (the `shard_suite` replay-order guarantee).
//!
//! The scripted real-SIGKILL variant of the kill oracle (against the
//! `cpdg` binary under `serve --continual`) lives in CI's continual-suite
//! job; this file is the in-process oracle it leans on.

use cpdg::core::chaos::{FaultHook, FaultKind, FaultPlan, FaultPoint, Trigger};
use cpdg::core::wal::WalConfig;
use cpdg::core::{slice_windows, EventWindow, ModelFile, WindowConfig};
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, GuardConfig, LinkPredictor};
use cpdg::serve::trainer::QUARANTINE_DIR;
use cpdg::serve::{
    parse_line, read_promoted, CycleOutcome, Engine, EngineConfig, TrainerConfig, TrainerRuntime,
};
use cpdg::tensor::ParamStore;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const NODES: usize = 16;
const DIM: usize = 8;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_continual_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A freshly-initialised base model (namespaces `enc` / `pretext_head`)
/// saved to `dir/base.json` — the epoch serving starts from.
fn base_model(dir: &Path) -> PathBuf {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
    let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
    let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", enc.dim());
    let path = dir.join("base.json");
    ModelFile::new(cfg, NODES, store, Vec::new())
        .save(&path)
        .unwrap();
    path
}

fn tiny_segments() -> WalConfig {
    WalConfig {
        segment_bytes: 64,
        ..WalConfig::default()
    }
}

fn exec(engine: &Engine, line: &str) -> String {
    let cmd = parse_line(line).unwrap_or_else(|e| panic!("bad script line {line:?}: {e}"));
    engine.execute(cmd).render()
}

/// The ingestion stream: a node rotation with one event per time unit, so
/// span-20/stride-10 windows share plenty of nodes to contrast.
fn events(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("EVENT {} {} {}.0", i % 8, 8 + i % 8, i))
        .collect()
}

fn feed(engines: &[&Engine], lines: &[String]) {
    for line in lines {
        for engine in engines {
            let r = exec(engine, line);
            assert!(r.starts_with("OK "), "{line:?} -> {r}");
        }
    }
}

/// Deterministic queries probing node memories past the stream's end.
fn queries() -> Vec<String> {
    let mut q = Vec::new();
    for i in 0..8u32 {
        q.push(format!("EMB {i} 100.0"));
        q.push(format!("SCORE {} {} 100.0", i, 8 + (i + 3) % 8));
    }
    q
}

fn snap(engine: &Engine) -> Vec<String> {
    queries().iter().map(|q| exec(engine, q)).collect()
}

/// The trainer geometry all suite scenarios share: enough windows over a
/// 64-event stream to train, with divergence disabled unless a scenario
/// forces it.
fn trainer_cfg(epoch_dir: PathBuf) -> TrainerConfig {
    let mut cfg = TrainerConfig::new(epoch_dir);
    cfg.continual.window = WindowConfig {
        span: 20.0,
        stride: 10.0,
    };
    cfg.continual.min_events = 16;
    cfg.continual.seed = 7;
    cfg.continual.guard = GuardConfig::never_diverge();
    cfg
}

/// The tentpole oracle: one fault plan fires every trainer fault point on
/// successive cycles, and the trainer engine's replies stay byte-identical
/// to a trainer-less twin until the first *validated* promotion lands.
#[test]
fn faulted_cycles_never_change_replies_until_a_validated_promotion() {
    let dir = test_dir("invariance");
    let base = base_model(&dir);
    let model = ModelFile::load(&base).unwrap();
    let plan = FaultPlan::new(21)
        .with(
            FaultPoint::TrainerStep,
            FaultKind::Transient,
            Trigger::Nth { n: 0 },
        )
        .with(
            FaultPoint::TrainerEmit,
            FaultKind::Transient,
            Trigger::Nth { n: 0 },
        )
        .with(
            FaultPoint::TrainerPromote,
            FaultKind::Transient,
            Trigger::Nth { n: 0 },
        );
    let trained = Arc::new(Engine::from_model(
        &model,
        EngineConfig::default(),
        FaultHook::install(&plan),
    ));
    let baseline = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    let mut rt =
        TrainerRuntime::new(Arc::clone(&trained), &base, trainer_cfg(dir.join("epochs"))).unwrap();
    feed(&[&trained, &baseline], &events(64));

    // Cycle 1: the step fault aborts training mid-window — retried later.
    match rt.run_cycle().unwrap() {
        CycleOutcome::Faulted(reason) => assert!(reason.contains("trainer.step"), "{reason}"),
        other => panic!("cycle 1: expected step fault, got {other:?}"),
    }
    assert_eq!(snap(&trained), snap(&baseline), "after step fault");

    // Cycle 2: training completes but emission fails before any bytes.
    match rt.run_cycle().unwrap() {
        CycleOutcome::Quarantined(reason) => assert!(reason.contains("trainer.emit"), "{reason}"),
        other => panic!("cycle 2: expected emit quarantine, got {other:?}"),
    }
    assert_eq!(snap(&trained), snap(&baseline), "after emit fault");

    // Cycle 3: the candidate emits and passes readback, but promotion
    // fires the `trainer.promote` fault — the file is quarantined and the
    // serving epoch never swaps.
    match rt.run_cycle().unwrap() {
        CycleOutcome::Quarantined(reason) => {
            assert!(reason.contains("trainer.promote"), "{reason}")
        }
        other => panic!("cycle 3: expected promote quarantine, got {other:?}"),
    }
    assert_eq!(trained.version(), 1, "serving untouched through 3 failures");
    assert_eq!(snap(&trained), snap(&baseline), "after promote fault");
    let status = exec(&trained, "STATUS");
    assert!(status.contains("trainer.quarantined=2"), "{status}");
    assert!(status.contains("trainer.promotions=0"), "{status}");
    assert!(
        dir.join("epochs")
            .join(QUARANTINE_DIR)
            .join("candidate-g1.json")
            .exists(),
        "promote-faulted candidate parked in quarantine"
    );

    // Cycle 4: nothing fires — the candidate passes the gate and promotes.
    // This is the one sanctioned way training may change serving.
    match rt.run_cycle().unwrap() {
        CycleOutcome::Promoted { version, gate } => {
            assert_eq!(version, 2);
            assert!(gate.pass, "{}", gate.reason);
        }
        other => panic!("cycle 4: expected promotion, got {other:?}"),
    }
    assert_eq!(trained.version(), 2);
    for reply in snap(&trained) {
        assert!(reply.starts_with("OK v2 "), "promoted reply: {reply}");
    }
    let promoted = read_promoted(&dir.join("epochs")).unwrap().unwrap();
    assert!(
        promoted.model.ends_with("candidate-g2.json"),
        "{promoted:?}"
    );
    assert_eq!(promoted.generation, 2, "pointer records the generation");
    let status = exec(&trained, "STATUS");
    assert!(status.contains("trainer.promotions=1"), "{status}");
    assert!(status.contains("trainer.quarantined=2"), "{status}");
    assert!(status.contains("trainer.candidates=2"), "{status}");
    assert!(status.contains("trainer.serving_epoch=2"), "{status}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Guard divergence is quarantined — the trainer rebuilds from the
/// serving epoch and serving never notices.
#[test]
fn divergence_quarantines_the_cycle_and_spares_serving() {
    let dir = test_dir("diverge");
    let base = base_model(&dir);
    let model = ModelFile::load(&base).unwrap();
    let engine = Arc::new(Engine::from_model(
        &model,
        EngineConfig::default(),
        FaultHook::none(),
    ));
    let baseline = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    let mut cfg = trainer_cfg(dir.join("epochs"));
    // Any gradient "explodes" and one poisoned step is one too many.
    cfg.continual.guard = GuardConfig {
        max_grad_norm: 0.0,
        max_retries: 1,
        ..GuardConfig::default()
    };
    let mut rt = TrainerRuntime::new(Arc::clone(&engine), &base, cfg).unwrap();
    feed(&[&engine, &baseline], &events(64));
    match rt.run_cycle().unwrap() {
        CycleOutcome::Quarantined(reason) => assert!(reason.contains("diverged"), "{reason}"),
        other => panic!("expected divergence quarantine, got {other:?}"),
    }
    assert_eq!(engine.version(), 1);
    assert_eq!(snap(&engine), snap(&baseline), "serving unaffected");
    let status = exec(&engine, "STATUS");
    assert!(status.contains("trainer.quarantined=1"), "{status}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A candidate corrupted between emit and promote is refused by the
/// sealed loader — promotion errors, the serving epoch stays.
#[test]
fn corrupt_candidate_bytes_cannot_reach_serving() {
    let dir = test_dir("corrupt");
    let base = base_model(&dir);
    let engine =
        Engine::from_model_file(&base, EngineConfig::default(), FaultHook::none()).unwrap();
    let bytes = std::fs::read(&base).unwrap();
    let cand = dir.join("candidate-torn.json");
    std::fs::write(&cand, &bytes[..bytes.len() / 2]).unwrap();
    assert!(
        engine.promote_epoch(&cand).is_err(),
        "torn candidate must be refused"
    );
    assert_eq!(engine.version(), 1, "serving epoch untouched");
    std::fs::remove_dir_all(&dir).ok();
}

/// Resolution a restarting `cpdg serve --continual` performs: follow the
/// promoted pointer when it is sound, otherwise serve the base model,
/// then replay the WAL.
fn recover(base: &Path, epochs: &Path, wal: &Path) -> (Engine, PathBuf) {
    let serving = match read_promoted(epochs) {
        Ok(Some(p)) => p.model,
        _ => base.to_path_buf(),
    };
    let engine =
        Engine::from_model_file(&serving, EngineConfig::default(), FaultHook::none()).unwrap();
    engine.open_wal(wal, tiny_segments()).unwrap();
    (engine, serving)
}

/// kill -9 at every cut point of train → emit → promote: recovery is a
/// deterministic function of (durable WAL, promoted pointer). Two
/// independent recoveries always serve byte-identical replies, and only
/// the cut *after* the pointer was sealed resolves to the candidate.
#[test]
fn kill_nine_at_every_trainer_cut_point_recovers_deterministically() {
    // (cut name, fault point aborting the cycle there, expected epoch file)
    let cuts: [(&str, Option<FaultPoint>, &str); 3] = [
        ("before_emit", Some(FaultPoint::TrainerEmit), "base.json"),
        (
            "after_emit_no_promote",
            Some(FaultPoint::TrainerPromote),
            "base.json",
        ),
        ("after_promote", None, "candidate-g1.json"),
    ];
    for (name, fault, expect) in cuts {
        let dir = test_dir(&format!("kill_{name}"));
        let base = base_model(&dir);
        let epochs = dir.join("epochs");
        let wal = dir.join("wal");
        std::fs::create_dir_all(&wal).unwrap();
        let hook = match fault {
            Some(point) => FaultHook::install(&FaultPlan::new(5).with(
                point,
                FaultKind::Permanent,
                Trigger::Every { k: 1 },
            )),
            None => FaultHook::none(),
        };
        let model = ModelFile::load(&base).unwrap();
        let engine = Arc::new(Engine::from_model(&model, EngineConfig::default(), hook));
        engine.open_wal(&wal, tiny_segments()).unwrap();
        let mut rt =
            TrainerRuntime::new(Arc::clone(&engine), &base, trainer_cfg(epochs.clone())).unwrap();
        feed(&[&engine], &events(64));
        let outcome = rt.run_cycle().unwrap();
        match fault {
            Some(_) => assert!(
                matches!(outcome, CycleOutcome::Quarantined(_)),
                "{name}: {outcome:?}"
            ),
            None => assert!(
                matches!(outcome, CycleOutcome::Promoted { .. }),
                "{name}: {outcome:?}"
            ),
        }
        // kill -9 analog: no drain, no checkpoint, no shutdown.
        drop(rt);
        drop(engine);

        let (first, serving_a) = recover(&base, &epochs, &wal);
        let (second, serving_b) = recover(&base, &epochs, &wal);
        assert_eq!(serving_a, serving_b, "{name}: resolution is deterministic");
        assert!(
            serving_a.ends_with(expect),
            "{name}: resolved {} instead of {expect}",
            serving_a.display()
        );
        assert_eq!(
            snap(&first),
            snap(&second),
            "{name}: independent recoveries must serve identical replies"
        );

        if fault.is_none() {
            // A trainer re-attached after recovery resumes the generation
            // sequence above the promoted pointer: its next candidate must
            // never overwrite the epoch file it is serving from, and the
            // pointer must keep naming an existing file throughout.
            let g1 = epochs.join("candidate-g1.json");
            let promoted_bytes = std::fs::read(&g1).unwrap();
            let (engine, serving) = recover(&base, &epochs, &wal);
            assert!(serving.ends_with("candidate-g1.json"), "{name}");
            let engine = Arc::new(engine);
            let mut rt =
                TrainerRuntime::new(Arc::clone(&engine), &serving, trainer_cfg(epochs.clone()))
                    .unwrap();
            let outcome = rt.run_cycle().unwrap();
            assert!(
                !matches!(outcome, CycleOutcome::Idle),
                "{name}: recovered stream must be trainable, got {outcome:?}"
            );
            assert_eq!(
                std::fs::read(&g1).unwrap(),
                promoted_bytes,
                "{name}: restarted trainer scribbled on the promoted epoch"
            );
            let pointer = read_promoted(&epochs).unwrap().unwrap();
            assert!(pointer.generation >= 1, "{name}: {pointer:?}");
            assert!(pointer.model.exists(), "{name}: dangling pointer");
            drop(rt);
            drop(engine);

            // Scribble over the pointer primary: the sealed replica copy
            // (`promoted.cpdg.r1`) heals it — recovery keeps resolving to
            // the promoted epoch instead of regressing to the base model.
            std::fs::write(epochs.join("promoted.cpdg"), b"garbage").unwrap();
            let healed = read_promoted(&epochs).unwrap().unwrap();
            assert!(
                healed.model.ends_with("candidate-g1.json"),
                "{name}: replica did not heal the pointer: {}",
                healed.model.display()
            );

            // Scribble over *every* copy: recovery must refuse the pointer
            // (typed, not followed) and fall back to the base epoch —
            // again identically on every attempt.
            std::fs::write(epochs.join("promoted.cpdg"), b"garbage").unwrap();
            std::fs::write(epochs.join("promoted.cpdg.r1"), b"garbage").unwrap();
            assert!(read_promoted(&epochs).is_err(), "corrupt pointer followed");
            let (fb_a, path_a) = recover(&base, &epochs, &wal);
            let (fb_b, path_b) = recover(&base, &epochs, &wal);
            assert!(path_a.ends_with("base.json"), "{}", path_a.display());
            assert_eq!(path_a, path_b);
            assert_eq!(snap(&fb_a), snap(&fb_b), "{name}: fallback determinism");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A promotion that trips the breaker inside its probation window is
/// rolled back: the previous epoch (outside the epoch dir!) returns to
/// serving, the pointer follows it, and the candidate is quarantined.
#[test]
fn breaker_trip_inside_probation_rolls_the_promotion_back() {
    let dir = test_dir("rollback");
    let base = base_model(&dir);
    let model = ModelFile::load(&base).unwrap();
    // Three consecutive inference faults — exactly the breaker threshold.
    let plan = FaultPlan::new(31)
        .with(
            FaultPoint::ServeInfer,
            FaultKind::Transient,
            Trigger::Nth { n: 0 },
        )
        .with(
            FaultPoint::ServeInfer,
            FaultKind::Transient,
            Trigger::Nth { n: 1 },
        )
        .with(
            FaultPoint::ServeInfer,
            FaultKind::Transient,
            Trigger::Nth { n: 2 },
        );
    let engine = Arc::new(Engine::from_model(
        &model,
        EngineConfig::default(),
        FaultHook::install(&plan),
    ));
    let epochs = dir.join("epochs");
    let mut rt =
        TrainerRuntime::new(Arc::clone(&engine), &base, trainer_cfg(epochs.clone())).unwrap();
    feed(&[&engine], &events(64));
    match rt.run_cycle().unwrap() {
        CycleOutcome::Promoted { version, .. } => assert_eq!(version, 2),
        other => panic!("expected promotion, got {other:?}"),
    }
    assert_eq!(engine.breaker_trips(), 0, "clean at promotion time");

    // The freshly promoted epoch "misbehaves": three straight failed
    // queries trip the breaker while the promotion is on probation.
    for i in 0..3 {
        let _ = exec(&engine, &format!("EMB {i} 100.0"));
    }
    assert_eq!(engine.breaker_trips(), 1, "breaker tripped");

    match rt.run_cycle().unwrap() {
        CycleOutcome::RolledBack { version } => assert_eq!(version, 3),
        other => panic!("expected rollback, got {other:?}"),
    }
    assert_eq!(engine.version(), 3, "rollback is a forward swap");
    let pointer = read_promoted(&epochs).unwrap().unwrap();
    assert!(
        pointer.model.ends_with("base.json"),
        "pointer follows the fallback even outside the epoch dir: {}",
        pointer.model.display()
    );
    assert!(
        epochs
            .join(QUARANTINE_DIR)
            .join("candidate-g1.json")
            .exists(),
        "rolled-back candidate quarantined"
    );
    let status = exec(&engine, "STATUS");
    assert!(status.contains("trainer.rollbacks=1"), "{status}");
    assert!(status.contains("trainer.promotions=1"), "{status}");
    assert!(status.contains("trainer.quarantined=1"), "{status}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Half-open window boundaries: an event at exactly a window edge belongs
/// to the *next* window, and all duplicates of a timestamp travel
/// together.
#[test]
fn window_boundaries_are_half_open_and_duplicates_stay_together() {
    let times = [0.0, 5.0, 10.0, 10.0, 10.0, 19.9, 20.0];
    let cfg = WindowConfig {
        span: 10.0,
        stride: 10.0,
    };
    let ws = slice_windows(&times, &cfg).unwrap();
    for (i, &t) in times.iter().enumerate() {
        let owners: Vec<&EventWindow> = ws.iter().filter(|w| w.lo <= i && i < w.hi).collect();
        assert_eq!(owners.len(), 1, "event {i} (t={t}) owned once");
        assert!(owners[0].contains_time(t));
    }
    // [0,10) holds 0.0 and 5.0; all three 10.0s open [10,20); 20.0 opens
    // the next window rather than closing the previous one.
    assert_eq!((ws[0].lo, ws[0].hi), (0, 2));
    assert_eq!((ws[1].lo, ws[1].hi), (2, 6));
    assert!(ws[2].contains_time(20.0));
}

/// Window slicing over the recovered stream is identical at any shard
/// count: merge-replay reconstructs one global event order, so the
/// trainer sees the same windows whether the WAL was 1, 2, or 8 streams.
#[test]
fn window_slicing_is_identical_at_any_shard_count() {
    let dir = test_dir("shard_windows");
    let base = base_model(&dir);
    let model = ModelFile::load(&base).unwrap();
    let cfg = WindowConfig {
        span: 12.0,
        stride: 6.0,
    };
    let stream: Vec<String> = (0..40)
        .map(|i| format!("EVENT {} {} {}.5", i % 8, 8 + (i * 3) % 8, i))
        .collect();
    let mut sliced: Vec<Vec<EventWindow>> = Vec::new();
    for shards in [1usize, 2, 8] {
        let wal = dir.join(format!("wal{shards}"));
        std::fs::create_dir_all(&wal).unwrap();
        let config = EngineConfig {
            shards,
            ..EngineConfig::default()
        };
        let engine = Engine::from_model(&model, config.clone(), FaultHook::none());
        engine.open_wal(&wal, tiny_segments()).unwrap();
        feed(&[&engine], &stream);
        drop(engine); // crash, then recover through merge-replay
        let recovered = Engine::from_model(&model, config, FaultHook::none());
        recovered.open_wal(&wal, tiny_segments()).unwrap();
        let graph = recovered.snapshot_graph();
        let times: Vec<f64> = graph.events().iter().map(|e| e.t).collect();
        sliced.push(slice_windows(&times, &cfg).unwrap());
    }
    assert!(!sliced[0].is_empty());
    assert_eq!(sliced[0], sliced[1], "1 vs 2 shards");
    assert_eq!(sliced[0], sliced[2], "1 vs 8 shards");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every event lands in at least one window, and a window's index
    /// range `lo..hi` agrees exactly with its time-interval membership —
    /// including for duplicate timestamps, which are inseparable.
    #[test]
    fn every_event_is_covered_and_ranges_match_intervals(
        raw in prop::collection::vec(0u32..2000, 1..100),
        span_ticks in 1u32..60,
        stride_eighths in 1u32..=8,
    ) {
        let mut times: Vec<f64> = raw.iter().map(|&v| f64::from(v) * 0.25).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let span = f64::from(span_ticks) * 0.5;
        let stride = span * f64::from(stride_eighths) / 8.0;
        let cfg = WindowConfig::new(span, stride).unwrap();
        let ws = slice_windows(&times, &cfg).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let covered = ws.iter().filter(|w| w.lo <= i && i < w.hi).count();
            prop_assert!(covered >= 1, "event {i} (t={t}) uncovered");
            for w in &ws {
                prop_assert_eq!(
                    w.lo <= i && i < w.hi,
                    w.contains_time(t),
                    "window {} range/interval disagree at event {}",
                    w.index,
                    i
                );
            }
        }
    }

    /// With `stride == span` the windows tile the stream: every event in
    /// exactly one window.
    #[test]
    fn exact_tiling_owns_every_event_exactly_once(
        raw in prop::collection::vec(0u32..2000, 1..100),
        span_ticks in 1u32..60,
    ) {
        let mut times: Vec<f64> = raw.iter().map(|&v| f64::from(v) * 0.25).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let span = f64::from(span_ticks) * 0.5;
        let cfg = WindowConfig::new(span, span).unwrap();
        let ws = slice_windows(&times, &cfg).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let covered = ws.iter().filter(|w| w.lo <= i && i < w.hi).count();
            prop_assert_eq!(covered, 1, "event {} (t={}) owned {} times", i, t, covered);
        }
    }
}
