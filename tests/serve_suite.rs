//! Serve-layer chaos suite: the online-serving recovery oracle.
//!
//! Each test drives a scripted request stream through a real TCP
//! [`Server`] under a deterministic [`FaultPlan`] and asserts, at **1 and
//! 4 worker threads**:
//!
//! * exactly one reply per request — a full `OK`, a typed `DEGRADED`, or a
//!   typed `ERR` (the lockstep reads below would hang, not pass, if a
//!   reply were ever lost);
//! * every reply the model *does* serve is bit-identical to the fault-free
//!   run at the same script position — shedding, breaker trips, and failed
//!   reloads must leave no trace once the breaker re-closes;
//! * the memory persisted at drain is byte-identical to the fault-free
//!   run's, because ingestion is never faulted and queries never commit.
//!
//! Determinism rests on the serve design: a single connection is lockstep
//! (one outstanding request), the engine serialises inference, and fault
//! triggers count hits — so hit index N is always script line N.

use cpdg::core::chaos::{FaultHook, FaultKind, FaultPlan, FaultPoint, Trigger};
use cpdg::core::storage::FS_STORAGE;
use cpdg::core::ModelFile;
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor, MemorySnapshot};
use cpdg::serve::{render_floats, Engine, EngineConfig, Server, ServerConfig};
use cpdg::tensor::{Matrix, ParamStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const NODES: usize = 12;
const DIM: usize = 8;

/// A model bundle shaped exactly like `cpdg pretrain` writes: parameter
/// namespaces `enc` / `pretext_head`, plus one EIE memory snapshot with
/// recognisable values so degraded replies are checkable.
fn trained_model(seed: u64) -> ModelFile {
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let _enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
    let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", DIM);
    let states = Matrix::from_vec(
        NODES,
        DIM,
        (0..NODES * DIM).map(|i| ((i % 17) as f32) * 0.05 - 0.3).collect(),
    );
    ModelFile::new(cfg, NODES, store, vec![MemorySnapshot { states, progress: 1.0 }])
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_serve_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `script` line-by-line over one lockstep TCP connection against a
/// fresh engine/server, then drains and persists memory. Returns the reply
/// per script line and the persisted memory bytes.
fn run_serve(
    script: &[String],
    workers: usize,
    plan: Option<&FaultPlan>,
    model: &ModelFile,
    mem_path: &Path,
) -> (Vec<String>, Vec<u8>) {
    let hook = match plan {
        Some(p) => FaultHook::install(p),
        None => FaultHook::none(),
    };
    let engine = Arc::new(Engine::from_model(model, EngineConfig::default(), hook));
    let server = Server::start(
        Arc::clone(&engine),
        &ServerConfig { workers, ..ServerConfig::default() },
    )
    .expect("bind serve");
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut replies = Vec::with_capacity(script.len());
    for line in script {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "connection closed mid-script at {line:?}");
        replies.push(reply.trim_end().to_string());
    }
    drop((stream, reader));
    let engine = server.shutdown();
    engine.persist_memory(&FS_STORAGE, mem_path).expect("persist drained memory");
    let bytes = std::fs::read(mem_path).unwrap();
    (replies, bytes)
}

/// Six in-range events followed by fourteen queries; `STATS` stays out so
/// replies are comparable across fault plans (shed counts differ by design).
fn base_script() -> Vec<String> {
    let mut s: Vec<String> = vec![
        "EVENT 0 1 1.0",
        "EVENT 1 2 2.0",
        "EVENT 2 3 3.0",
        "EVENT 3 4 4.0",
        "EVENT 4 5 5.0",
        "EVENT 0 5 6.0",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for i in 0..7u32 {
        s.push(format!("EMB {}", i % 6));
        s.push(format!("SCORE {} {}", i % 6, (i + 2) % 6));
    }
    s
}

#[test]
fn fault_free_replies_and_memory_are_worker_count_invariant() {
    let model = trained_model(3);
    let dir = test_dir("invariant");
    let script = base_script();
    let (r1, m1) = run_serve(&script, 1, None, &model, &dir.join("mem1.json"));
    let (r4, m4) = run_serve(&script, 4, None, &model, &dir.join("mem4.json"));
    assert_eq!(r1, r4, "replies must not depend on worker count");
    assert_eq!(m1, m4, "drained memory must not depend on worker count");
    for (line, reply) in script.iter().zip(&r1) {
        assert!(reply.starts_with("OK v1 "), "{line:?} -> {reply:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admission_faults_shed_exact_requests_and_spare_the_rest() {
    let model = trained_model(3);
    let dir = test_dir("shed");
    let mut script = base_script();
    script.push("STATS".to_string());
    let last = script.len() - 1;

    let (reference, ref_mem) = run_serve(&script, 1, None, &model, &dir.join("ref.json"));
    assert!(reference[last].contains("shed=0"), "{}", reference[last]);

    // `Every { k: 9 }` fires on hits 9 and 18 — both queries (the six
    // EVENT lines occupy hits 1–6, so the memory stream is untouched, and
    // the closing STATS at hit 21 is spared).
    let plan = FaultPlan::new(9).with(
        FaultPoint::ServeAccept,
        FaultKind::Transient,
        Trigger::Every { k: 9 },
    );
    for workers in [1usize, 4] {
        let (replies, mem) =
            run_serve(&script, workers, Some(&plan), &model, &dir.join(format!("w{workers}.json")));
        for (i, (got, want)) in replies.iter().zip(&reference).enumerate() {
            if i == 8 || i == 17 {
                assert!(got.starts_with("ERR overloaded"), "pos {i}: {got:?}");
            } else if i == last {
                assert!(got.contains("shed=2"), "stats must count both sheds: {got}");
            } else {
                assert_eq!(got, want, "non-shed reply diverged at pos {i} ({workers} workers)");
            }
        }
        assert_eq!(mem, ref_mem, "memory diverged under shedding ({workers} workers)");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn infer_faults_trip_the_breaker_and_a_clean_probe_recloses_it() {
    let model = trained_model(3);
    let dir = test_dir("breaker");
    let script = base_script(); // 6 events, then queries 1..=14
    let (reference, ref_mem) = run_serve(&script, 1, None, &model, &dir.join("ref.json"));

    // Three one-shot infer faults: queries 1–3 fail and trip the breaker
    // (threshold 3). Queries 4–6 are shorted; query 7 is the probe
    // (probe_every 4), succeeds, and re-closes. Queries 8+ must be
    // bit-identical to the fault-free run — the oracle in one test.
    let plan = FaultPlan::new(11)
        .with(FaultPoint::ServeInfer, FaultKind::Transient, Trigger::Nth { n: 1 })
        .with(FaultPoint::ServeInfer, FaultKind::Transient, Trigger::Nth { n: 2 })
        .with(FaultPoint::ServeInfer, FaultKind::Transient, Trigger::Nth { n: 3 });
    for workers in [1usize, 4] {
        let (replies, mem) =
            run_serve(&script, workers, Some(&plan), &model, &dir.join(format!("w{workers}.json")));
        for (i, (got, want)) in replies.iter().zip(&reference).enumerate() {
            let query_idx = i as i64 - 5; // 1-based query number; events are <= 0
            if (1..=6).contains(&query_idx) {
                assert!(got.starts_with("DEGRADED v1 "), "query {query_idx}: {got:?}");
                // Degraded bodies come from the model's static EIE snapshot,
                // not from (possibly poisoned) live weights.
                let expected = match script[i].split(' ').collect::<Vec<_>>()[..] {
                    ["EMB", n] => {
                        let n: usize = n.parse().unwrap();
                        render_floats(model.checkpoints[0].states.row(n))
                    }
                    ["SCORE", a, b] => {
                        let (a, b): (usize, usize) = (a.parse().unwrap(), b.parse().unwrap());
                        let (ra, rb) = (
                            model.checkpoints[0].states.row(a),
                            model.checkpoints[0].states.row(b),
                        );
                        let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
                        render_floats(&[dot])
                    }
                    _ => unreachable!("query script line"),
                };
                assert_eq!(got, &format!("DEGRADED v1 {expected}"), "pos {i}");
            } else {
                assert_eq!(got, want, "post-reclose reply diverged at pos {i} ({workers} workers)");
            }
        }
        assert_eq!(mem, ref_mem, "memory diverged under breaker chaos ({workers} workers)");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_fault_keeps_old_epoch_live_then_clean_reload_bumps_version() {
    let dir = test_dir("reload");
    let model = trained_model(3);
    let next = trained_model(4);
    let next_path = dir.join("model_v2.json");
    next.save(&next_path).unwrap();

    let script: Vec<String> = vec![
        "EVENT 0 1 1.0".to_string(),
        "EVENT 1 2 2.0".to_string(),
        "EMB 1".to_string(),
        format!("RELOAD {}", next_path.display()),
        "EMB 1".to_string(),
        format!("RELOAD {}", next_path.display()),
        "EMB 1".to_string(),
        "EVENT 2 3 3.0".to_string(),
    ];
    let plan = FaultPlan::new(13).with(
        FaultPoint::ServeReload,
        FaultKind::Transient,
        Trigger::Nth { n: 1 },
    );
    for workers in [1usize, 4] {
        let (r, _) =
            run_serve(&script, workers, Some(&plan), &model, &dir.join(format!("w{workers}.json")));
        assert!(r[3].starts_with("ERR reload"), "{}", r[3]);
        assert_eq!(r[2], r[4], "a failed reload must leave serving untouched");
        assert!(r[4].starts_with("OK v1 "), "{}", r[4]);
        assert_eq!(r[5], "OK v2 reloaded");
        assert!(r[6].starts_with("OK v2 "), "reply stamped with new version: {}", r[6]);
        assert_eq!(r[7], "OK v2 event 2", "ingestion continues across the swap");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Extracts the `v<N>` stamp from an `OK`/`DEGRADED` reply.
fn reply_version(reply: &str) -> Option<u64> {
    reply.split(' ').nth(1)?.strip_prefix('v')?.parse().ok()
}

#[test]
fn concurrent_clients_with_hot_reloads_lose_nothing_and_see_monotone_versions() {
    const PER_THREAD: usize = 40;
    let dir = test_dir("stress");
    let model = trained_model(3);
    let reload_path = dir.join("model_next.json");
    trained_model(5).save(&reload_path).unwrap();

    let engine = Arc::new(Engine::from_model(&model, EngineConfig::default(), FaultHook::none()));
    let server = Server::start(
        Arc::clone(&engine),
        &ServerConfig { workers: 4, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let roundtrip = |stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "lost reply for {line:?}");
        reply.trim_end().to_string()
    };

    let mut handles = Vec::new();
    for thread in 0..4usize {
        handles.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut replies = Vec::with_capacity(PER_THREAD);
            for i in 0..PER_THREAD {
                // Thread 0 is the sole event writer (timestamps stay
                // monotone); the rest hammer queries.
                let line = match thread {
                    0 => format!("EVENT {} {} {}.0", i % NODES, (i + 1) % NODES, i),
                    _ => match i % 3 {
                        0 => format!("EMB {}", (thread + i) % NODES),
                        1 => format!("SCORE {} {}", i % NODES, (i + thread) % NODES),
                        _ => "PING".to_string(),
                    },
                };
                writeln!(stream, "{line}").unwrap();
                stream.flush().unwrap();
                let mut reply = String::new();
                reader.read_line(&mut reply).unwrap();
                assert!(!reply.is_empty(), "lost reply for {line:?}");
                replies.push(reply.trim_end().to_string());
            }
            replies
        }));
    }

    // Two live model swaps from a fifth connection while the others run.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for expect_version in [2u64, 3] {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let r = roundtrip(&mut stream, &mut reader, &format!("RELOAD {}", reload_path.display()));
        assert_eq!(r, format!("OK v{expect_version} reloaded"));
    }
    drop((stream, reader));

    for handle in handles {
        let replies = handle.join().expect("client thread");
        assert_eq!(replies.len(), PER_THREAD, "every request must be answered");
        let mut last_version = 0u64;
        for reply in &replies {
            assert!(
                reply.starts_with("OK v") || reply.starts_with("DEGRADED v"),
                "unexpected reply under clean stress: {reply:?}"
            );
            let v = reply_version(reply).expect("version stamp");
            assert!(v >= last_version, "version went backwards on one connection: {replies:?}");
            last_version = v;
        }
    }

    let engine = server.shutdown();
    use std::sync::atomic::Ordering;
    assert_eq!(engine.stats.events.load(Ordering::Relaxed), PER_THREAD as u64);
    assert_eq!(engine.stats.reloads.load(Ordering::Relaxed), 2);
    assert_eq!(engine.stats.shed.load(Ordering::Relaxed), 0, "queue never filled under lockstep");
    engine.persist_memory(&FS_STORAGE, &dir.join("mem.json")).expect("post-stress drain persists");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The line grammar is total: any unicode junk parses or rejects
    /// without panicking.
    #[test]
    fn parse_line_is_total_over_arbitrary_input(line in "\\PC{0,60}") {
        let _ = cpdg::serve::parse_line(&line);
    }

    /// Adversarially shaped requests — a plausible verb with junk operands
    /// — never panic, and never parse into an out-of-grammar command.
    #[test]
    fn parse_line_is_total_over_malformed_requests(
        verb in "(EVENT|EMB|SCORE|RELOAD|STATS|PING|[A-Z]{1,8})",
        operands in proptest::collection::vec("-?[0-9a-zA-Z._]{1,10}", 0..5),
    ) {
        let line = if operands.is_empty() {
            verb
        } else {
            format!("{verb} {}", operands.join(" "))
        };
        if let Ok(cmd) = cpdg::serve::parse_line(&line) {
            // Whatever parsed must render back through the reply path
            // without panicking either.
            let _ = format!("{cmd:?}");
        }
    }
}
