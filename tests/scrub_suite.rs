//! Scrub suite: the self-healing artifact oracle.
//!
//! The contract under test: for **every artifact class** the serving
//! stack persists — sealed WAL segments, the drain checkpoint
//! `checkpoint.cpdg`, candidate epoch files, the promoted pointer
//! `promoted.cpdg` — flipping a byte of any *one* sealed copy must leave
//! serving replies **bit-identical** to an uncorrupted run (the repair
//! path heals the bad copy from a replica), and flipping a byte of
//! *every* copy must produce a **typed refusal naming the artifact**
//! (exit code 4 at the CLI) — never a panic, never silently wrong bytes.
//! The oracle runs at 1 and 4 shards with a continual trainer attached,
//! because those are the topologies `cpdg serve` actually deploys.
//!
//! Alongside the tentpole oracle:
//!
//! * **kill -9 mid-repair** — a crash between corruption *detection* and
//!   the repair write landing leaves the bad copy on disk; the restart
//!   resolves identically and this time the repair lands. Torn repair
//!   residue (`.{name}.tmp`) is ignored by catalog and loaders alike.
//! * **chaos bitflips** — the `integrity.bitflip` fault point corrupts
//!   reads *in memory*: a one-shot flip falls through to the replica, a
//!   permanent flip refuses with the artifact path, and the disk stays
//!   sound either way.
//! * **budgeted scrubbing** — a `Scrubber` with a tiny byte budget heals
//!   a corrupted sharded tree across several cursor-resumed cycles.
//! * **exhaustive offset flips** — a single byte flipped at *every*
//!   offset of a sealed pointer / epoch / checkpoint / WAL segment is
//!   refused by the strict loaders (plus a proptest pinning the generic
//!   property for arbitrary payloads and arbitrary single-bit flips).
//!
//! The refusal assertions pin the exact user-facing failure: `cpdg`
//! prints `error: {Display}` and exits with `CpdgError::exit_code()`
//! (the CLI crate's inline tests cover the printing), so checking the
//! Display string and exit code here checks the `exit 4` message names
//! the artifact for each class. The scripted real-`dd` variant of the
//! flip oracle (against the `cpdg` binary) lives in CI's scrub-suite
//! job; this file is the in-process oracle it leans on.

use cpdg::core::chaos::{FaultHook, FaultKind, FaultPlan, FaultPoint, Trigger};
use cpdg::core::integrity;
use cpdg::core::scrub;
use cpdg::core::storage::FS_STORAGE;
use cpdg::core::wal::{self, Wal, WalCheckpoint, WalConfig};
use cpdg::core::{CpdgError, ModelFile, ScrubConfig, Scrubber, WindowConfig};
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, GuardConfig, LinkPredictor};
use cpdg::serve::{
    parse_line, read_promoted_with, write_promoted, CycleOutcome, Engine, EngineConfig,
    TrainerConfig, TrainerRuntime,
};
use cpdg::tensor::{Matrix, ParamStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const NODES: usize = 16;
const DIM: usize = 8;
/// Every oracle runs at these shard counts; 1 is the legacy flat layout.
const SHARD_COUNTS: [usize; 2] = [1, 4];

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_scrubsuite_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A freshly-initialised base model (namespaces `enc` / `pretext_head`)
/// saved to `dir/base.json` — the epoch serving starts from.
fn base_model(dir: &Path) -> PathBuf {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
    let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
    let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", enc.dim());
    let path = dir.join("base.json");
    ModelFile::new(cfg, NODES, store, Vec::new())
        .save(&path)
        .unwrap();
    path
}

/// Small segments so the event stream crosses several rotation
/// boundaries (sealed, replicated segments) in every shard's log.
fn wal_cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 64,
        ..WalConfig::default()
    }
}

fn sharded_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        ..EngineConfig::default()
    }
}

fn exec(engine: &Engine, line: &str) -> String {
    let cmd = parse_line(line).unwrap_or_else(|e| panic!("bad script line {line:?}: {e}"));
    engine.execute(cmd).render()
}

/// The ingestion stream: a node rotation with one event per time unit,
/// spread over enough node pairs that 4-shard routing fills every
/// `wal.shard<k>/` stream.
fn events(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("EVENT {} {} {}.0", i % 8, 8 + i % 8, i))
        .collect()
}

fn feed(engines: &[&Engine], lines: &[String]) {
    for line in lines {
        for engine in engines {
            let r = exec(engine, line);
            assert!(r.starts_with("OK "), "{line:?} -> {r}");
        }
    }
}

/// Deterministic queries probing node memories past the stream's end.
fn queries() -> Vec<String> {
    let mut q = Vec::new();
    for i in 0..8u32 {
        q.push(format!("EMB {i} 100.0"));
        q.push(format!("SCORE {} {} 100.0", i, 8 + (i + 3) % 8));
    }
    q
}

fn snap(engine: &Engine) -> Vec<String> {
    queries().iter().map(|q| exec(engine, q)).collect()
}

/// The trainer geometry the continual suite established: enough windows
/// over a 64-event stream to train and promote on the first cycle.
fn trainer_cfg(epoch_dir: PathBuf) -> TrainerConfig {
    let mut cfg = TrainerConfig::new(epoch_dir);
    cfg.continual.window = WindowConfig {
        span: 20.0,
        stride: 10.0,
    };
    cfg.continual.min_events = 16;
    cfg.continual.seed = 7;
    cfg.continual.guard = GuardConfig::never_diverge();
    cfg
}

/// Flips one byte in the middle of `path` — the suite's stand-in for a
/// `dd`-injected disk flip.
fn flip(path: &Path) {
    let mut bytes = std::fs::read(path).unwrap();
    assert!(!bytes.is_empty(), "cannot flip empty {}", path.display());
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(path, &bytes).unwrap();
}

/// Flips the primary *and* its `.r1` replica: no sound copy left.
fn flip_all(path: &Path) {
    flip(path);
    flip(&scrub::replica_path(path, 1));
}

fn backup_copies(path: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(path).unwrap(),
        std::fs::read(scrub::replica_path(path, 1)).unwrap(),
    )
}

fn restore_copies(path: &Path, saved: &(Vec<u8>, Vec<u8>)) {
    std::fs::write(path, &saved.0).unwrap();
    std::fs::write(scrub::replica_path(path, 1), &saved.1).unwrap();
}

/// Sealed (non-tail) WAL segment primaries under `wal_root`, covering
/// both the flat layout and `wal.shard<k>/` subdirectories.
fn sealed_interior_segments(wal_root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![wal_root.to_path_buf()];
    for e in std::fs::read_dir(wal_root).unwrap().flatten() {
        let p = e.path();
        if p.is_dir() && e.file_name().to_string_lossy().starts_with("wal.shard") {
            dirs.push(p);
        }
    }
    dirs.sort();
    let mut out = Vec::new();
    for dir in dirs {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(scrub::classify)
                    == Some(scrub::ArtifactClass::WalSegment)
            })
            .collect();
        segs.sort();
        segs.pop(); // the highest-start segment is the active tail
        out.extend(segs);
    }
    out
}

/// One durable serving state with every artifact class present: a
/// promoted candidate epoch + pointer (continual trainer), a WAL
/// checkpoint, and sealed replicated segments written after it.
struct State {
    dir: PathBuf,
    base: PathBuf,
    epochs: PathBuf,
    wal: PathBuf,
}

fn build_state(shards: usize, tag: &str) -> State {
    let dir = test_dir(&format!("{tag}_s{shards}"));
    let base = base_model(&dir);
    let epochs = dir.join("epochs");
    let wal = dir.join("wal");
    std::fs::create_dir_all(&wal).unwrap();
    let model = ModelFile::load(&base).unwrap();
    let engine = Arc::new(Engine::from_model(
        &model,
        sharded_config(shards),
        FaultHook::none(),
    ));
    engine.open_wal(&wal, wal_cfg()).unwrap();
    let mut rt =
        TrainerRuntime::new(Arc::clone(&engine), &base, trainer_cfg(epochs.clone())).unwrap();
    let stream = events(96);
    feed(&[&engine], &stream[..64]);
    match rt.run_cycle().unwrap() {
        CycleOutcome::Promoted { version, .. } => assert_eq!(version, 2),
        other => panic!("{shards} shards: expected promotion, got {other:?}"),
    }
    // Checkpoint (truncating the replayed segments), then keep streaming
    // so fresh sealed segments exist *after* the checkpoint.
    assert!(engine.checkpoint_wal(&FS_STORAGE).unwrap().is_some());
    feed(&[&engine], &stream[64..]);
    // kill -9 analog: no drain, no second checkpoint, no shutdown.
    drop(rt);
    drop(engine);
    State {
        dir,
        base,
        epochs,
        wal,
    }
}

/// The resolution a restarting `cpdg serve --continual` performs, through
/// the replicated readers serving actually uses: follow the promoted
/// pointer when any copy is sound (else the base model), load the epoch
/// through its replica set, replay the WAL (checkpoint first).
fn recover(st: &State, shards: usize) -> (Engine, PathBuf) {
    let serving = match read_promoted_with(&st.epochs, 2) {
        Ok(Some(p)) => p.model,
        _ => st.base.clone(),
    };
    let model = ModelFile::load_replicated(&FS_STORAGE, &serving, 2, &FaultHook::none()).unwrap();
    let engine = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
    engine.open_wal(&st.wal, wal_cfg()).unwrap();
    (engine, serving)
}

/// The tentpole heal oracle: flip one sealed copy of each artifact class
/// and recovery must repair it in passing — replies bit-identical to the
/// uncorrupted reference, artifact strictly verifiable on disk again.
#[test]
fn flipping_one_copy_of_each_artifact_class_heals_and_serving_stays_bit_identical() {
    for shards in SHARD_COUNTS {
        let st = build_state(shards, "heal");
        let reference = {
            let (engine, serving) = recover(&st, shards);
            assert!(serving.ends_with("candidate-g1.json"), "{shards} shards");
            snap(&engine)
        };
        assert_eq!(
            snap(&recover(&st, shards).0),
            reference,
            "{shards} shards: recovery must be deterministic before any corruption"
        );

        let pointer = st.epochs.join("promoted.cpdg");
        let epoch = read_promoted_with(&st.epochs, 2).unwrap().unwrap().model;
        let checkpoint = st.wal.join("checkpoint.cpdg");
        let segments = sealed_interior_segments(&st.wal);
        assert!(
            !segments.is_empty(),
            "{shards} shards: no sealed segments to corrupt"
        );
        let segment = segments[0].clone();

        let targets: [(&str, &Path); 4] = [
            ("pointer", &pointer),
            ("epoch", &epoch),
            ("wal-checkpoint", &checkpoint),
            ("wal-segment", &segment),
        ];
        for (class, path) in targets {
            flip(path);
            let (engine, _) = recover(&st, shards);
            assert_eq!(
                snap(&engine),
                reference,
                "{shards} shards: {class} flip changed served bytes"
            );
            drop(engine);
            let healed = std::fs::read(path).unwrap();
            let sound = if class == "wal-segment" {
                wal::segment_is_sound(&healed)
            } else {
                integrity::unseal_strict(&healed, path).is_ok()
            };
            assert!(sound, "{shards} shards: {class} primary not healed on disk");
        }

        // A continual trainer re-attached to the healed tree keeps
        // working on top of it — the generation sequence resumes.
        let (engine, serving) = recover(&st, shards);
        let engine = Arc::new(engine);
        let mut rt = TrainerRuntime::new(
            Arc::clone(&engine),
            &serving,
            trainer_cfg(st.epochs.clone()),
        )
        .unwrap();
        let outcome = rt.run_cycle().unwrap();
        assert!(
            matches!(outcome, CycleOutcome::Promoted { .. } | CycleOutcome::Idle),
            "{shards} shards: trainer on healed tree: {outcome:?}"
        );
        std::fs::remove_dir_all(&st.dir).ok();
    }
}

/// The tentpole refusal oracle: flip *every* sealed copy of each artifact
/// class and the responsible loader must refuse with a typed error that
/// names the artifact and maps to CLI exit code 4 — never panic, never
/// serve from garbage.
#[test]
fn flipping_every_copy_of_each_artifact_class_refuses_with_the_artifact_named() {
    for shards in SHARD_COUNTS {
        let st = build_state(shards, "refuse");
        let reference = snap(&recover(&st, shards).0);

        // Pointer: refused by the pointer reader; full recovery falls
        // back to the base epoch, deterministically.
        let pointer = st.epochs.join("promoted.cpdg");
        let saved = backup_copies(&pointer);
        flip_all(&pointer);
        let err = read_promoted_with(&st.epochs, 2).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{shards} shards: {err}");
        assert!(err.to_string().contains("promoted.cpdg"), "{err}");
        let (fb_a, path_a) = recover(&st, shards);
        let (fb_b, path_b) = recover(&st, shards);
        assert!(path_a.ends_with("base.json"), "{}", path_a.display());
        assert_eq!(path_a, path_b, "{shards} shards: fallback determinism");
        assert_eq!(snap(&fb_a), snap(&fb_b), "{shards} shards");
        drop((fb_a, fb_b));
        restore_copies(&pointer, &saved);

        // Epoch: refused by the replicated model loader.
        let epoch = read_promoted_with(&st.epochs, 2).unwrap().unwrap().model;
        let saved = backup_copies(&epoch);
        flip_all(&epoch);
        let err = ModelFile::load_replicated(&FS_STORAGE, &epoch, 2, &FaultHook::none())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{shards} shards: {err}");
        assert!(err.to_string().contains("candidate-g1.json"), "{err}");
        restore_copies(&epoch, &saved);

        // Checkpoint: refused by WAL recovery before any replay.
        let checkpoint = st.wal.join("checkpoint.cpdg");
        let saved = backup_copies(&checkpoint);
        flip_all(&checkpoint);
        let model = ModelFile::load_replicated(&FS_STORAGE, &epoch, 2, &FaultHook::none()).unwrap();
        let engine = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
        let err = engine.open_wal(&st.wal, wal_cfg()).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{shards} shards: {err}");
        assert!(err.to_string().contains("checkpoint.cpdg"), "{err}");
        drop(engine);
        restore_copies(&checkpoint, &saved);

        // WAL segment: quarantined, and recovery refuses with the typed
        // gap its records leave behind instead of replaying garbage.
        let segment = sealed_interior_segments(&st.wal)[0].clone();
        let saved = backup_copies(&segment);
        flip_all(&segment);
        let engine = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
        let err = engine.open_wal(&st.wal, wal_cfg()).unwrap_err();
        assert!(matches!(err, CpdgError::WalGap { .. }), "{err}");
        assert_eq!(err.exit_code(), 4, "{shards} shards: {err}");
        assert!(err.to_string().contains("gap"), "{err}");
        drop(engine);
        let qdir = segment.parent().unwrap().join(scrub::QUARANTINE_DIR);
        assert!(
            qdir.join(segment.file_name().unwrap()).exists(),
            "{shards} shards: unrepairable segment not quarantined"
        );
        restore_copies(&segment, &saved);
        std::fs::remove_dir_all(&qdir).unwrap();

        // Every class restored: the tree serves the reference again.
        assert_eq!(snap(&recover(&st, shards).0), reference, "{shards} shards");
        std::fs::remove_dir_all(&st.dir).ok();
    }
}

/// kill -9 between corruption *detection* and the repair write landing:
/// the restart resolves identically, the repair lands the second time,
/// and torn repair residue (`.{name}.tmp`) confuses nothing.
#[test]
fn a_crash_between_corruption_detection_and_repair_recovers_deterministically() {
    let dir = test_dir("midrepair");
    let base = base_model(&dir);
    let epochs = dir.join("epochs");
    std::fs::create_dir_all(&epochs).unwrap();
    write_promoted(&epochs, 1, &base, 2).unwrap();
    let pointer = epochs.join("promoted.cpdg");
    flip(&pointer);

    // Crash window analog: the read detects the bad primary and falls
    // through to the replica, but every repair write is lost.
    let hook = FaultHook::install(&FaultPlan::new(9).with(
        FaultPoint::ScrubRepair,
        FaultKind::Permanent,
        Trigger::Every { k: 1 },
    ));
    let read = scrub::read_sealed_replicated(&FS_STORAGE, &pointer, 2, &hook).unwrap();
    assert_eq!(read.corrupt_copies, 1);
    assert_eq!(read.repaired, 0, "suppressed repair = crash before rename");
    assert!(
        integrity::unseal_strict(&std::fs::read(&pointer).unwrap(), &pointer).is_err(),
        "primary must still be bad on disk after the crashed repair"
    );
    // Residue a killed atomic publish leaves behind.
    std::fs::write(epochs.join(".promoted.cpdg.tmp"), b"half a repair").unwrap();

    // Restart: two independent resolutions agree, and the repair lands.
    let a = read_promoted_with(&epochs, 2).unwrap().unwrap();
    let b = read_promoted_with(&epochs, 2).unwrap().unwrap();
    assert_eq!(a.generation, b.generation);
    assert_eq!(a.model, b.model);
    assert!(a.model.ends_with("base.json"));
    assert!(
        integrity::unseal_strict(&std::fs::read(&pointer).unwrap(), &pointer).is_ok(),
        "restarted read must heal the primary"
    );

    // A scrub pass over the directory skips the `.tmp` residue and finds
    // nothing left to repair.
    let report = Scrubber::new(vec![epochs.clone()], ScrubConfig::default())
        .scrub_all(&FS_STORAGE, &FaultHook::none());
    assert_eq!(report.corrupt, 0, "{report:?}");
    assert!(report.unrepairable.is_empty(), "{report:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The `integrity.bitflip` chaos point corrupts reads in memory: a
/// one-shot flip falls through to the replica, a permanent flip refuses
/// with the artifact path — and the disk stays sound either way.
#[test]
fn injected_bitflips_fall_through_replicas_or_refuse_without_touching_disk() {
    let dir = test_dir("bitflip");
    let path = dir.join("promoted.cpdg");
    scrub::write_replicated(&FS_STORAGE, &path, &integrity::seal(b"3\n/m.json"), 2).unwrap();

    // First read flipped: the replica carries the payload through.
    let hook = FaultHook::install(&FaultPlan::new(1).with(
        FaultPoint::IntegrityBitflip,
        FaultKind::Transient,
        Trigger::Nth { n: 0 },
    ));
    let read = scrub::read_sealed_replicated(&FS_STORAGE, &path, 2, &hook).unwrap();
    assert_eq!(read.payload, b"3\n/m.json");
    assert_eq!(read.corrupt_copies, 1);

    // Every read flipped: typed refusal naming the artifact.
    let hook = FaultHook::install(&FaultPlan::new(1).with(
        FaultPoint::IntegrityBitflip,
        FaultKind::Permanent,
        Trigger::Every { k: 1 },
    ));
    let err = scrub::read_sealed_replicated(&FS_STORAGE, &path, 2, &hook)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.exit_code(), 4);
    assert!(err.to_string().contains("promoted.cpdg"), "{err}");

    // The flips lived in memory only: both copies verify and a plain
    // read succeeds.
    for i in 0..2 {
        let p = scrub::copy_path(&path, i);
        assert!(integrity::unseal_strict(&std::fs::read(&p).unwrap(), &p).is_ok());
    }
    scrub::read_sealed_replicated(&FS_STORAGE, &path, 2, &FaultHook::none()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A scrubber with a tiny byte budget heals a corrupted 4-shard tree
/// incrementally: several cursor-resumed cycles, then a clean full pass
/// and bit-identical recovery.
#[test]
fn a_byte_budgeted_scrubber_heals_a_sharded_tree_across_cycles() {
    let st = build_state(4, "budget");
    let reference = snap(&recover(&st, 4).0);
    flip(&st.epochs.join("promoted.cpdg"));
    flip(&st.wal.join("checkpoint.cpdg"));
    let segment = sealed_interior_segments(&st.wal)[0].clone();
    flip(&segment);

    let mut scrubber = Scrubber::new(
        vec![st.wal.clone(), st.epochs.clone()],
        ScrubConfig {
            replicas: 2,
            max_bytes_per_cycle: 200,
        },
    );
    let mut cycles = 0u32;
    let mut repaired = 0u64;
    while repaired < 3 && cycles < 1000 {
        let report = scrubber.scrub_cycle(&FS_STORAGE, &FaultHook::none());
        assert!(report.unrepairable.is_empty(), "{report:?}");
        repaired += report.repaired;
        cycles += 1;
    }
    assert!(
        repaired >= 3,
        "only {repaired} repairs after {cycles} cycles"
    );
    assert!(cycles > 1, "a 200-byte budget must take multiple cycles");

    let clean = scrubber.scrub_all(&FS_STORAGE, &FaultHook::none());
    assert_eq!(clean.corrupt, 0, "{clean:?}");
    assert!(clean.unrepairable.is_empty(), "{clean:?}");
    assert_eq!(snap(&recover(&st, 4).0), reference);
    std::fs::remove_dir_all(&st.dir).ok();
}

/// Satellite: rejected training work is accounted in `STATUS` — byte
/// totals of quarantined candidates and the most recent rejection cause.
#[test]
fn status_reports_quarantine_byte_totals_and_the_last_rejection_cause() {
    let dir = test_dir("qstatus");
    let base = base_model(&dir);
    let model = ModelFile::load(&base).unwrap();
    let plan = FaultPlan::new(11).with(
        FaultPoint::TrainerPromote,
        FaultKind::Transient,
        Trigger::Nth { n: 0 },
    );
    let engine = Arc::new(Engine::from_model(
        &model,
        EngineConfig::default(),
        FaultHook::install(&plan),
    ));
    let mut rt =
        TrainerRuntime::new(Arc::clone(&engine), &base, trainer_cfg(dir.join("epochs"))).unwrap();
    feed(&[&engine], &events(64));
    match rt.run_cycle().unwrap() {
        CycleOutcome::Quarantined(reason) => assert!(reason.contains("trainer.promote")),
        other => panic!("expected promote quarantine, got {other:?}"),
    }
    let status = exec(&engine, "STATUS");
    let field = |key: &str| -> String {
        let prefix = format!("{key}=");
        status
            .split_whitespace()
            .find_map(|t| t.strip_prefix(&prefix))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("missing {prefix} in {status}"))
    };
    assert_eq!(field("trainer.quarantined"), "1");
    let bytes: u64 = field("trainer.quarantined_bytes").parse().unwrap();
    assert!(bytes > 0, "quarantined candidate bytes accounted: {status}");
    assert!(
        field("trainer.last_reject").contains("trainer.promote"),
        "{status}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a single byte flipped at EVERY offset of the sealed
/// promoted pointer and of a sealed epoch file is refused by the exact
/// loaders serving uses — typed error, never a panic, never a load.
#[test]
fn every_single_byte_flip_of_pointer_and_epoch_files_is_refused_by_their_loaders() {
    let dir = test_dir("offsets_ptr");
    let epochs = dir.join("epochs");
    std::fs::create_dir_all(&epochs).unwrap();
    let model_path = dir.join("tiny.json");
    let mut params = ParamStore::new();
    params.register("w", Matrix::from_rows(&[&[1.5, -0.5]]));
    let tiny = ModelFile::new(
        DgnnConfig::preset(EncoderKind::Tgn, 4, 100.0),
        3,
        params,
        Vec::new(),
    );
    // replicas = 1: no second copy, so every flip must surface as an
    // error rather than heal. (The 0x40 mask never maps one hex digit to
    // another, so footer flips are always unparseable — the proptest
    // below covers arbitrary bit positions.)
    tiny.save_replicated(&FS_STORAGE, &model_path, 1).unwrap();
    write_promoted(&epochs, 1, &model_path, 1).unwrap();
    let pointer = epochs.join("promoted.cpdg");

    let pointer_pristine = std::fs::read(&pointer).unwrap();
    for off in 0..pointer_pristine.len() {
        let mut bad = pointer_pristine.clone();
        bad[off] ^= 0x40;
        std::fs::write(&pointer, &bad).unwrap();
        let got = catch_unwind(AssertUnwindSafe(|| {
            read_promoted_with(&epochs, 1).map(|_| ())
        }))
        .unwrap_or_else(|_| panic!("pointer flip at {off}: panicked"));
        assert!(got.is_err(), "pointer flip at {off} was followed");
    }
    std::fs::write(&pointer, &pointer_pristine).unwrap();

    let epoch_pristine = std::fs::read(&model_path).unwrap();
    for off in 0..epoch_pristine.len() {
        let mut bad = epoch_pristine.clone();
        bad[off] ^= 0x40;
        std::fs::write(&model_path, &bad).unwrap();
        let got = catch_unwind(AssertUnwindSafe(|| {
            ModelFile::load_replicated(&FS_STORAGE, &model_path, 1, &FaultHook::none()).map(|_| ())
        }))
        .unwrap_or_else(|_| panic!("epoch flip at {off}: panicked"));
        assert!(got.is_err(), "epoch flip at {off} loaded");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: every offset of a real sealed WAL checkpoint — exhaustive
/// in memory against the strict unsealer, strided on disk against the
/// replicated checkpoint loader.
#[test]
fn every_single_byte_flip_of_a_sealed_checkpoint_is_refused() {
    let dir = test_dir("offsets_ckpt");
    let base = base_model(&dir);
    let wal_dir = dir.join("wal");
    let engine =
        Engine::from_model_file(&base, EngineConfig::default(), FaultHook::none()).unwrap();
    engine.open_wal(&wal_dir, wal_cfg()).unwrap();
    feed(&[&engine], &events(8));
    assert!(engine.checkpoint_wal(&FS_STORAGE).unwrap().is_some());
    drop(engine);

    let path = wal_dir.join("checkpoint.cpdg");
    let pristine = std::fs::read(&path).unwrap();
    for off in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[off] ^= 0x40;
        let got = catch_unwind(AssertUnwindSafe(|| {
            integrity::unseal_strict(&bad, &path).is_err()
        }))
        .unwrap_or_else(|_| panic!("checkpoint flip at {off}: panicked"));
        assert!(got, "checkpoint flip at {off} unsealed");
    }
    // Strided pass through the real loader (every offset would be pure
    // IO repetition; the in-memory pass above already covered them all).
    let stride = (pristine.len() / 197).max(1);
    for off in (0..pristine.len()).step_by(stride) {
        let mut bad = pristine.clone();
        bad[off] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        let got =
            WalCheckpoint::load_replicated(&FS_STORAGE, &path, 1, &FaultHook::none()).map(|_| ());
        assert!(got.is_err(), "checkpoint flip at {off} loaded");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: every offset of a sealed (non-tail) WAL segment — with no
/// replica to heal from, `Wal::open` must quarantine and refuse with a
/// typed gap at every flip position, never panic, never replay garbage.
#[test]
fn every_single_byte_flip_of_a_sealed_wal_segment_is_refused_never_replayed() {
    let dir = test_dir("offsets_seg");
    let src = dir.join("wal");
    let cfg = || WalConfig {
        segment_bytes: 64,
        replicas: 1,
        ..WalConfig::default()
    };
    {
        let mut w = Wal::open(&src, cfg(), FaultHook::none()).unwrap();
        for i in 0..12u32 {
            w.append(format!("record-{i}").as_bytes()).unwrap();
        }
    }
    let mut names: Vec<String> = std::fs::read_dir(&src)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| scrub::classify(n) == Some(scrub::ArtifactClass::WalSegment))
        .collect();
    names.sort();
    assert!(
        names.len() >= 2,
        "need a sealed interior segment: {names:?}"
    );
    let interior = names[0].clone();
    let files: Vec<(String, Vec<u8>)> = names
        .iter()
        .map(|n| (n.clone(), std::fs::read(src.join(n)).unwrap()))
        .collect();
    let interior_bytes = std::fs::read(src.join(&interior)).unwrap();

    for off in 0..interior_bytes.len() {
        let case = dir.join(format!("case-{off}"));
        std::fs::create_dir_all(&case).unwrap();
        for (name, bytes) in &files {
            if *name == interior {
                let mut bad = bytes.clone();
                bad[off] ^= 0x40;
                std::fs::write(case.join(name), &bad).unwrap();
            } else {
                std::fs::write(case.join(name), bytes).unwrap();
            }
        }
        let got = catch_unwind(AssertUnwindSafe(|| {
            Wal::open(&case, cfg(), FaultHook::none()).map(|_| ())
        }))
        .unwrap_or_else(|_| panic!("segment flip at {off}: panicked"));
        let err = match got {
            Err(e) => e,
            Ok(()) => panic!("segment flip at {off} opened cleanly"),
        };
        assert_eq!(err.exit_code(), 4, "segment flip at {off}: {err}");
        std::fs::remove_dir_all(&case).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For ANY payload and ANY single-bit flip of its sealed bytes, the
    /// strict unsealer either refuses (typed) or — when the flip only
    /// changed the *case* of a footer hex digit, leaving the recorded
    /// checksum's value intact — returns the byte-exact original
    /// payload. Silently wrong bytes are impossible.
    #[test]
    fn prop_single_bit_flips_of_sealed_bytes_never_yield_wrong_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        idx in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let sealed = integrity::seal(&payload);
        let off = idx.index(sealed.len());
        let mut bad = sealed.clone();
        bad[off] ^= 1 << bit;
        match integrity::unseal_strict(&bad, Path::new("sealed.cpdg")) {
            Err(_) => {}
            Ok(got) => prop_assert_eq!(got, payload.as_slice()),
        }
    }
}
