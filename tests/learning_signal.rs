//! Learning-signal integration tests: on planted-structure data, the
//! trained models must beat chance, and the CPDG components must behave as
//! the paper describes (contrast losses train, pre-training helps a
//! data-poor downstream task).
//!
//! These are statistical tests over seeded runs; thresholds are
//! deliberately loose so they stay robust while still catching silent
//! regressions (e.g. gradients not flowing, samplers ignoring time).

use cpdg::core::pipeline::{run_link_prediction, PipelineConfig};
use cpdg::core::sampler::bfs::{eta_bfs, BfsConfig};
use cpdg::core::sampler::prob::TemporalBias;
use cpdg::dgnn::EncoderKind;
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cpdg_beats_chance_on_synthetic_amazon() {
    let ds = generate(&SyntheticConfig::amazon_like(0).scaled(0.5));
    let split = time_transfer(&ds.graph, 0.7).unwrap();
    let mut cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(0);
    cfg.dim = 16;
    cfg.pretrain.epochs = 4;
    cfg.finetune.epochs = 4;
    let res = run_link_prediction(&split, &cfg, false);
    assert!(res.auc > 0.58, "CPDG should clearly beat chance, got AUC {}", res.auc);
}

#[test]
fn pretraining_loss_decreases_across_epochs() {
    use cpdg::core::pretrain::{pretrain, PretrainConfig};
    use cpdg::dgnn::{DgnnConfig, DgnnEncoder, LinkPredictor};
    use cpdg::tensor::{optim::Adam, ParamStore};

    let ds = generate(&SyntheticConfig::amazon_like(1).scaled(0.3));
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 16, 10_000.0);
    let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
    let mut opt = Adam::new(2e-2);
    let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph,
                       &PretrainConfig { epochs: 5, batch_size: 200, ..Default::default() });
    let first = out.epoch_losses.first().unwrap().total;
    let last = out.epoch_losses.last().unwrap().total;
    assert!(last < first, "CPDG objective should descend: {first:.4} → {last:.4}");
    // The pretext term specifically should improve too.
    let first_tlp = out.epoch_losses.first().unwrap().tlp;
    let last_tlp = out.epoch_losses.last().unwrap().tlp;
    assert!(last_tlp < first_tlp, "pretext loss should descend: {first_tlp:.4} → {last_tlp:.4}");
}

#[test]
fn chronological_bfs_actually_visits_more_recent_neighborhoods() {
    // On session-heavy synthetic data, the average event time of chrono
    // samples must exceed the reverse samples' by a clear margin.
    let ds = generate(&SyntheticConfig::gowalla_like(2).scaled(0.3));
    let g = &ds.graph;
    let t = g.t_max().unwrap() + 1.0;
    let mut rng = StdRng::seed_from_u64(2);
    let chrono = BfsConfig::new(4, 2, 0.3, TemporalBias::Chronological);
    let reverse = BfsConfig::new(4, 2, 0.3, TemporalBias::ReverseChronological);

    let active: Vec<u32> = g
        .active_nodes()
        .into_iter()
        .filter(|&n| g.degree_before(n, t) >= 8)
        .take(40)
        .collect();
    assert!(active.len() >= 10, "need enough busy nodes");

    let mean_last_time = |nodes: &[u32]| -> f64 {
        let mut total = 0.0;
        let mut count = 0;
        for &n in nodes {
            if let Some(e) = g.neighbors_before(n, t).last() {
                total += e.t;
                count += 1;
            }
        }
        total / count.max(1) as f64
    };

    let mut chrono_sum = 0.0;
    let mut reverse_sum = 0.0;
    for &root in &active {
        let c = eta_bfs(g, root, t, &chrono, &mut rng);
        let r = eta_bfs(g, root, t, &reverse, &mut rng);
        chrono_sum += mean_last_time(&c[1..]);
        reverse_sum += mean_last_time(&r[1..]);
    }
    assert!(
        chrono_sum > reverse_sum,
        "chronological samples should be more recent: {chrono_sum:.0} vs {reverse_sum:.0}"
    );
}

#[test]
fn pretrained_encoder_outperforms_scratch_when_downstream_is_small() {
    // The paper's core claim, tested in aggregate over 3 seeds on a
    // data-poor downstream split (25% of the stream).
    let mut pre_wins = 0;
    let mut diffs = Vec::new();
    for seed in 0..3u64 {
        let ds = generate(&SyntheticConfig::amazon_like(seed + 10).scaled(0.4));
        let split = time_transfer(&ds.graph, 0.75).unwrap();

        let mut cpdg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(seed);
        cpdg.dim = 16;
        cpdg.pretrain.epochs = 4;
        cpdg.finetune.epochs = 3;
        let with = run_link_prediction(&split, &cpdg, false);

        let mut scratch = PipelineConfig::no_pretrain(EncoderKind::Tgn).with_seed(seed);
        scratch.dim = 16;
        scratch.finetune.epochs = 3;
        let without = run_link_prediction(&split, &scratch, false);

        diffs.push(with.auc - without.auc);
        if with.auc > without.auc {
            pre_wins += 1;
        }
    }
    assert!(
        pre_wins >= 2,
        "pre-training should usually help a small downstream task; diffs {diffs:?}"
    );
}
