//! WAL chaos suite: the crash-recovery oracle.
//!
//! The durability contract under test: an engine that crashes at *any*
//! fault point — a failed append, a failed fsync, an outright `kill -9`
//! between any two requests — and then recovers by replaying its
//! write-ahead log must serve **byte-identical** replies to an engine
//! that ran uninterrupted over the same accepted events. Not "close",
//! not "equivalent": the rendered reply strings are compared verbatim.
//!
//! Three pillars:
//!
//! * every WAL fault point (`wal.append`, `wal.fsync`, `wal.replay`)
//!   is driven both transiently (retried invisibly) and permanently
//!   (typed rejection, exactly-once semantics: a rejected event is in
//!   neither memory nor log);
//! * the kill -9 analog — dropping the engine with no drain, no
//!   checkpoint, no sync beyond the per-append policy — at every cut
//!   point of the event stream, including across segment rotations and
//!   checkpoints;
//! * a panicking worker is restarted by the supervisor without
//!   disturbing other live connections.
//!
//! Determinism notes: tests keep at most one request in flight, so fault
//! trigger hit-counts map 1:1 to script positions at any worker count;
//! the scripted `kill -9` variant (a real SIGKILL against the `cpdg`
//! binary) lives in CI's wal-suite job, this file is the in-process
//! oracle it leans on.

use cpdg::core::chaos::{FaultHook, FaultKind, FaultPlan, FaultPoint, Trigger};
use cpdg::core::storage::FS_STORAGE;
use cpdg::core::wal::WalConfig;
use cpdg::core::{CpdgError, ModelFile};
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor, MemorySnapshot};
use cpdg::serve::{parse_line, Engine, EngineConfig, Server, ServerConfig};
use cpdg::tensor::{Matrix, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

const NODES: usize = 12;
const DIM: usize = 8;

/// A model bundle shaped like `cpdg pretrain` writes (namespaces `enc` /
/// `pretext_head`), so engines built from it serve real replies.
fn trained_model(seed: u64) -> ModelFile {
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let _enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
    let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", DIM);
    let states = Matrix::from_vec(
        NODES,
        DIM,
        (0..NODES * DIM)
            .map(|i| ((i % 13) as f32) * 0.04 - 0.2)
            .collect(),
    );
    ModelFile::new(
        cfg,
        NODES,
        store,
        vec![MemorySnapshot {
            states,
            progress: 1.0,
        }],
    )
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_wal_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small segments so multi-event streams cross rotation boundaries — the
/// recovery paths under test must walk sealed segments, not just the tail.
fn tiny_segments() -> WalConfig {
    WalConfig {
        segment_bytes: 64,
        ..WalConfig::default()
    }
}

fn exec(engine: &Engine, line: &str) -> String {
    let cmd = parse_line(line).unwrap_or_else(|e| panic!("bad script line {line:?}: {e}"));
    engine.execute(cmd).render()
}

/// The ingestion stream: enough events to span several 64-byte segments.
fn events() -> Vec<String> {
    (0..10u32)
        .map(|i| format!("EVENT {} {} {}.0", i % 6, (i + 1) % 6, i + 1))
        .collect()
}

/// Deterministic queries (explicit timestamps) probing the ingested state.
fn queries() -> Vec<String> {
    let mut q = Vec::new();
    for i in 0..6u32 {
        q.push(format!("EMB {i} 10.0"));
        q.push(format!("SCORE {} {} 10.0", i, (i + 3) % 6));
    }
    q
}

/// Replies of an uninterrupted, WAL-less engine that ingested exactly
/// `accepted` — the oracle every recovered engine is compared against.
fn reference_replies(model: &ModelFile, accepted: &[String]) -> Vec<String> {
    let engine = Engine::from_model(model, EngineConfig::default(), FaultHook::none());
    for line in accepted {
        let r = exec(&engine, line);
        assert!(
            r.starts_with("OK "),
            "reference ingest failed: {line:?} -> {r}"
        );
    }
    queries().iter().map(|q| exec(&engine, q)).collect()
}

#[test]
fn kill_nine_at_every_cut_point_recovers_bit_identical() {
    let model = trained_model(7);
    let stream = events();
    let reference = reference_replies(&model, &stream);
    // The oracle runs at both the legacy flat layout and the sharded one:
    // a crash between any two requests must recover identically whether
    // replay walks one WAL or merge-replays four `wal.shard<k>/` streams.
    for shards in [1usize, 4] {
        let config = EngineConfig {
            shards,
            ..EngineConfig::default()
        };
        for cut in 0..=stream.len() {
            let dir = test_dir(&format!("cut{cut}_s{shards}"));
            let engine = Engine::from_model(&model, config.clone(), FaultHook::none());
            engine.open_wal(&dir, tiny_segments()).unwrap();
            for line in &stream[..cut] {
                let r = exec(&engine, line);
                assert!(r.starts_with("OK "), "{line:?} -> {r}");
            }
            // kill -9 analog: no drain, no checkpoint, no final sync.
            drop(engine);

            let recovered = Engine::from_model(&model, config.clone(), FaultHook::none());
            let report = recovered.open_wal(&dir, tiny_segments()).unwrap();
            assert_eq!(report.replayed, cut as u64, "cut {cut} shards {shards}");
            // Finish the stream on the recovered engine: replay + remainder
            // must equal one uninterrupted run of the full stream.
            for line in &stream[cut..] {
                let r = exec(&recovered, line);
                assert!(r.starts_with("OK "), "post-recovery {line:?} -> {r}");
            }
            let got: Vec<String> = queries().iter().map(|q| exec(&recovered, q)).collect();
            assert_eq!(got, reference, "cut {cut} shards {shards}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn checkpoint_then_crash_replays_only_the_suffix() {
    let model = trained_model(7);
    let stream = events();
    let dir = test_dir("ckpt");
    let engine = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    engine.open_wal(&dir, tiny_segments()).unwrap();
    for line in &stream[..6] {
        exec(&engine, line);
    }
    engine.checkpoint_wal(&FS_STORAGE).unwrap();
    for line in &stream[6..] {
        exec(&engine, line);
    }
    drop(engine); // crash after the checkpoint, with live tail in the log

    let recovered = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    let report = recovered.open_wal(&dir, tiny_segments()).unwrap();
    assert_eq!(report.checkpoint_applied, 6);
    assert_eq!(report.replayed, (stream.len() - 6) as u64);
    let got: Vec<String> = queries().iter().map(|q| exec(&recovered, q)).collect();
    assert_eq!(got, reference_replies(&model, &stream));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permanent_append_and_fsync_faults_reject_exactly_once() {
    let model = trained_model(7);
    let stream = events();
    // Fault the 4th hit of each point: the 4th EVENT must be rejected,
    // every other event accepted, and recovery must reconstruct exactly
    // the accepted set — the rejected event is in neither memory nor any
    // shard's log. Each point is consulted exactly once per EVENT at any
    // shard count (`shard.route` by the coordinator, `wal.append` /
    // `wal.fsync` by whichever shard stream owns the event), so the same
    // plan rejects the same script position everywhere.
    for shards in [1usize, 4] {
        let config = EngineConfig {
            shards,
            ..EngineConfig::default()
        };
        for point in [
            FaultPoint::ShardRoute,
            FaultPoint::WalAppend,
            FaultPoint::WalFsync,
        ] {
            let dir = test_dir(&format!(
                "reject_{}_s{shards}",
                point.name().replace('.', "_")
            ));
            let plan = FaultPlan::new(5).with(point, FaultKind::Permanent, Trigger::Nth { n: 4 });
            let engine = Engine::from_model(&model, config.clone(), FaultHook::install(&plan));
            engine.open_wal(&dir, tiny_segments()).unwrap();
            let mut accepted = Vec::new();
            for (i, line) in stream.iter().enumerate() {
                let r = exec(&engine, line);
                if i == 3 {
                    assert!(r.starts_with("ERR exec "), "{point:?} pos {i}: {r}");
                } else {
                    assert!(r.starts_with("OK "), "{point:?} pos {i}: {r}");
                    accepted.push(line.clone());
                }
            }
            let live: Vec<String> = queries().iter().map(|q| exec(&engine, q)).collect();
            let reference = reference_replies(&model, &accepted);
            assert_eq!(
                live, reference,
                "{point:?} shards={shards}: live replies after rejection"
            );
            drop(engine);

            let recovered = Engine::from_model(&model, config.clone(), FaultHook::none());
            let report = recovered.open_wal(&dir, tiny_segments()).unwrap();
            assert_eq!(
                report.replayed,
                accepted.len() as u64,
                "{point:?} shards={shards}"
            );
            let got: Vec<String> = queries().iter().map(|q| exec(&recovered, q)).collect();
            assert_eq!(
                got, reference,
                "{point:?} shards={shards}: recovered replies"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn transient_wal_faults_are_retried_invisibly() {
    let model = trained_model(7);
    let stream = events();
    let dir = test_dir("transient");
    // One transient fault on each WAL point: the retry policy absorbs all
    // of them; every event lands and recovery sees the full stream.
    let plan = FaultPlan::new(3)
        .with(
            FaultPoint::WalAppend,
            FaultKind::Transient,
            Trigger::Nth { n: 2 },
        )
        .with(
            FaultPoint::WalFsync,
            FaultKind::Transient,
            Trigger::Nth { n: 5 },
        )
        .with(
            FaultPoint::WalReplay,
            FaultKind::Transient,
            Trigger::Nth { n: 3 },
        );
    let engine = Engine::from_model(&model, EngineConfig::default(), FaultHook::install(&plan));
    engine.open_wal(&dir, tiny_segments()).unwrap();
    for line in &stream {
        let r = exec(&engine, line);
        assert!(r.starts_with("OK "), "{line:?} -> {r}");
    }
    drop(engine);

    // Recovery shares the same plan instance semantics: a fresh install
    // re-arms the replay fault, which must be retried invisibly too.
    let recovered = Engine::from_model(&model, EngineConfig::default(), FaultHook::install(&plan));
    let report = recovered.open_wal(&dir, tiny_segments()).unwrap();
    assert_eq!(report.replayed, stream.len() as u64);
    let got: Vec<String> = queries().iter().map(|q| exec(&recovered, q)).collect();
    assert_eq!(got, reference_replies(&model, &stream));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permanent_replay_fault_is_a_typed_recovery_error() {
    let model = trained_model(7);
    let dir = test_dir("replay_err");
    let engine = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    engine.open_wal(&dir, tiny_segments()).unwrap();
    for line in &events() {
        exec(&engine, line);
    }
    drop(engine);

    let plan = FaultPlan::new(1).with(
        FaultPoint::WalReplay,
        FaultKind::Permanent,
        Trigger::Nth { n: 2 },
    );
    let broken = Engine::from_model(&model, EngineConfig::default(), FaultHook::install(&plan));
    match broken.open_wal(&dir, tiny_segments()) {
        Err(CpdgError::Fault { point, .. }) => assert_eq!(point, "wal.replay"),
        other => panic!("expected a typed replay fault, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// One lockstep request/reply over an existing connection.
fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(!reply.is_empty(), "connection closed at {line:?}");
    reply.trim_end().to_string()
}

#[test]
fn panicking_worker_spares_other_connections() {
    let model = trained_model(7);
    for workers in [1usize, 4] {
        // The 3rd job processed by the pool panics its worker. Requests
        // are kept lockstep across both connections, so hit order (and
        // therefore which request dies) is deterministic at any pool size.
        let plan = FaultPlan::new(2).with(
            FaultPoint::ServeWorker,
            FaultKind::Permanent,
            Trigger::Nth { n: 3 },
        );
        let engine = Arc::new(Engine::from_model(
            &model,
            EngineConfig::default(),
            FaultHook::install(&plan),
        ));
        let server = Server::start(
            Arc::clone(&engine),
            &ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut a = TcpStream::connect(server.local_addr()).unwrap();
        let mut ra = BufReader::new(a.try_clone().unwrap());
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        let mut rb = BufReader::new(b.try_clone().unwrap());

        assert_eq!(send(&mut b, &mut rb, "EVENT 0 1 1.0"), "OK v1 event 0");
        assert_eq!(send(&mut a, &mut ra, "PING"), "OK v1 pong");
        // Hit 3: connection A's request rides the panicking worker and
        // gets the deterministic lost-reply error…
        assert_eq!(
            send(&mut a, &mut ra, "PING"),
            "ERR exec reply channel closed"
        );
        // …while connection B — open throughout — never notices: the
        // supervisor restarted the worker and the pool keeps serving.
        assert_eq!(send(&mut b, &mut rb, "EVENT 1 2 2.0"), "OK v1 event 1");
        assert_eq!(send(&mut b, &mut rb, "EMB 1 2.0"), {
            let reference = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
            exec(&reference, "EVENT 0 1 1.0");
            exec(&reference, "EVENT 1 2 2.0");
            exec(&reference, "EMB 1 2.0")
        });
        let status = send(&mut b, &mut rb, "STATUS");
        assert!(
            status.contains("worker_panics=1"),
            "workers={workers}: {status}"
        );
        // A's connection also stays usable after its lost request.
        assert_eq!(send(&mut a, &mut ra, "PING"), "OK v1 pong");
        drop((a, ra, b, rb));
        let engine = server.shutdown();
        assert_eq!(
            engine
                .stats
                .worker_panics
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "workers={workers}"
        );
    }
}

#[test]
fn status_surfaces_wal_and_recovery_fields() {
    let model = trained_model(7);
    let dir = test_dir("status");
    let engine = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    engine.open_wal(&dir, tiny_segments()).unwrap();
    for line in &events() {
        exec(&engine, line);
    }
    drop(engine);

    let recovered = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    recovered.open_wal(&dir, tiny_segments()).unwrap();
    let status = exec(&recovered, "STATUS");
    for pair in [
        "wal=1",
        "recovered_replayed=10",
        "wal_next_index=10",
        "events=10",
    ] {
        assert!(status.contains(pair), "missing {pair} in {status}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
