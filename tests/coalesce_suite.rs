//! Coalesce suite: the request-coalescing + embedding-cache oracle.
//!
//! PR 8's tentpole batches compatible queued queries into one fused
//! forward pass and fronts the engine with a temporal embedding cache.
//! Both are *latency* features; the contract that makes them deployable is
//! an invariance: **`--batch N --cache on` replies must be bit-identical
//! to `--batch 1 --cache off`**, at 1, 2, and 8 shards, including under
//! breaker trips, hot reload, and WAL crash recovery. "Bit-identical" is
//! literal — rendered reply strings are compared verbatim.
//!
//! The suite drives the invariance at three levels:
//! * engine level — [`Engine::execute_query_batch`] against sequential
//!   [`Engine::execute`] over the same scripts, with events interleaved
//!   between rounds so per-node cache invalidation is on the hot path;
//! * property level — proptest-generated EVENT/QUERY/RELOAD interleavings
//!   (including out-of-range ids), batched+cached vs sequential+uncached;
//! * wire level — a real TCP server at `batch: 8` under concurrent
//!   connections, every reply checked against a single-engine reference.
//!
//! The cache's *unit* semantics (key aliasing, dependency indexing,
//! counter accounting) live in `crates/serve/src/cache.rs`; this suite
//! only pins what callers can observe end to end.

use cpdg::core::chaos::{FaultHook, FaultKind, FaultPlan, FaultPoint, Trigger};
use cpdg::core::wal::WalConfig;
use cpdg::core::ModelFile;
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor, MemorySnapshot};
use cpdg::serve::{parse_line, Command, Engine, EngineConfig, Server, ServerConfig};
use cpdg::tensor::{Matrix, ParamStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const NODES: usize = 12;
const DIM: usize = 8;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// A model bundle shaped like `cpdg pretrain` writes (namespaces `enc` /
/// `pretext_head`), so engines built from it serve real replies.
fn trained_model(seed: u64) -> ModelFile {
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let _enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
    let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", DIM);
    let states = Matrix::from_vec(
        NODES,
        DIM,
        (0..NODES * DIM)
            .map(|i| ((i % 11) as f32) * 0.03 - 0.15)
            .collect(),
    );
    ModelFile::new(
        cfg,
        NODES,
        store,
        vec![MemorySnapshot {
            states,
            progress: 1.0,
        }],
    )
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_coalesce_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine(shards: usize, cache: bool, hook: FaultHook) -> Engine {
    Engine::from_model(
        &trained_model(21),
        EngineConfig {
            shards,
            cache,
            ..EngineConfig::default()
        },
        hook,
    )
}

fn exec(engine: &Engine, line: &str) -> String {
    let cmd = parse_line(line).unwrap_or_else(|e| panic!("bad script line {line:?}: {e}"));
    engine.execute(cmd).render()
}

fn ingest(engine: &Engine, events: &[String]) {
    for line in events {
        let r = exec(engine, line);
        assert!(r.starts_with("OK "), "ingest failed: {line:?} -> {r}");
    }
}

fn events(from: u32, count: u32) -> Vec<String> {
    (from..from + count)
        .map(|i| format!("EVENT {} {} {}.0", i % 6, (i + 1) % 6, i + 1))
        .collect()
}

/// Deterministic queries (explicit timestamps), each listed twice so a
/// cache-on run is guaranteed in-batch hits — the second occurrence must
/// replay the first's bytes.
fn query_lines(t: f64) -> Vec<String> {
    let mut q = Vec::new();
    for i in 0..6u32 {
        q.push(format!("EMB {i} {t}"));
        q.push(format!("EMB {i} {t}"));
        q.push(format!("SCORE {} {} {t}", i, (i + 3) % 6));
    }
    // An out-of-range node inside a batch must yield the same typed ERR
    // it does sequentially, without poisoning its batchmates.
    q.push(format!("EMB {} {t}", NODES + 7));
    q
}

fn parse_all(lines: &[String]) -> Vec<Command> {
    lines
        .iter()
        .map(|l| parse_line(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect()
}

/// Executes `lines` on `batched` in fused chunks of `width` and on
/// `sequential` one by one, asserting rendered replies are identical.
fn assert_batches_match(batched: &Engine, sequential: &Engine, lines: &[String], width: usize) {
    let cmds = parse_all(lines);
    let mut got = Vec::with_capacity(cmds.len());
    for chunk in cmds.chunks(width.max(1)) {
        got.extend(
            batched
                .execute_query_batch(chunk, &[])
                .into_iter()
                .map(|r| r.render()),
        );
    }
    let want: Vec<String> = cmds
        .iter()
        .map(|c| sequential.execute(c.clone()).render())
        .collect();
    assert_eq!(got, want, "width {width}");
}

// ---------------------------------------------------------------------
// The tentpole oracle: batched+cached == sequential+uncached at every
// shard count, with ingestion interleaved so invalidation must be sound.
// ---------------------------------------------------------------------

#[test]
fn batched_cached_replies_are_bit_identical_at_every_shard_count() {
    for shards in SHARD_COUNTS {
        let batched = engine(shards, true, FaultHook::none());
        let sequential = engine(shards, false, FaultHook::none());
        ingest(&batched, &events(0, 10));
        ingest(&sequential, &events(0, 10));
        for width in [2usize, 4, 8] {
            assert_batches_match(&batched, &sequential, &query_lines(10.0), width);
        }
        let (hits, misses, _) = batched.cache_counters();
        assert!(hits > 0, "repeat queries must hit ({hits}h/{misses}m)");

        // Fresh events invalidate exactly the touched dependency sets; a
        // stale cache entry surviving here would break bit-identity.
        ingest(&batched, &events(10, 5));
        ingest(&sequential, &events(10, 5));
        let (_, _, invalidations) = batched.cache_counters();
        assert!(invalidations > 0, "ingestion must invalidate warm entries");
        assert_batches_match(&batched, &sequential, &query_lines(15.0), 4);
        assert_eq!(
            batched
                .stats
                .events
                .load(std::sync::atomic::Ordering::Relaxed),
            sequential
                .stats
                .events
                .load(std::sync::atomic::Ordering::Relaxed),
        );
    }
}

#[test]
fn coalescing_stays_invariant_under_breaker_trips_and_probes() {
    // Every inference fails: the query stream walks through failure
    // accumulation, the trip, shorted requests, and failed probes. The
    // batch path must consume fault-point hits and breaker transitions in
    // exactly the sequential order.
    let plan = FaultPlan::new(0).with(
        FaultPoint::ServeInfer,
        FaultKind::Permanent,
        Trigger::Every { k: 1 },
    );
    for shards in SHARD_COUNTS {
        let batched = engine(shards, true, FaultHook::install(&plan));
        let sequential = engine(shards, false, FaultHook::install(&plan));
        ingest(&batched, &events(0, 6));
        ingest(&sequential, &events(0, 6));
        assert_batches_match(&batched, &sequential, &query_lines(6.0), 4);
        assert_eq!(batched.breaker_open(), sequential.breaker_open());
        assert!(batched.breaker_open(), "the plan must actually trip");
    }
}

#[test]
fn reload_mid_stream_clears_the_cache_and_stays_invariant() {
    let dir = test_dir("reload");
    let next_path = dir.join("next.json");
    // Different seed, same shape: the swap genuinely changes parameters,
    // so any cache entry surviving it would change reply bytes.
    trained_model(35).save(&next_path).unwrap();
    let batched = engine(1, true, FaultHook::none());
    let sequential = engine(1, false, FaultHook::none());
    ingest(&batched, &events(0, 8));
    ingest(&sequential, &events(0, 8));
    assert_batches_match(&batched, &sequential, &query_lines(8.0), 4);
    assert!(batched.cache_len() > 0);

    let reload = format!("RELOAD {}", next_path.display());
    assert_eq!(exec(&batched, &reload), exec(&sequential, &reload));
    assert_eq!(batched.cache_len(), 0, "reload wholesale-invalidates");
    assert_batches_match(&batched, &sequential, &query_lines(8.0), 4);

    // Defensive fallback: a batch slice containing a non-query must
    // execute sequentially with identical replies (the server never
    // builds one, but the engine API tolerates it).
    let mixed = vec![
        "EMB 1 8.0".to_string(),
        reload.clone(),
        "SCORE 0 2 8.0".to_string(),
    ];
    assert_batches_match(&batched, &sequential, &mixed, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_recovery_restarts_with_a_cold_cache_and_identical_replies() {
    let dir = test_dir("recover");
    let cached_cfg = || EngineConfig {
        cache: true,
        ..EngineConfig::default()
    };
    let model = trained_model(21);
    let warm = Engine::from_model(&model, cached_cfg(), FaultHook::none());
    warm.open_wal(&dir.join("wal"), WalConfig::default())
        .unwrap();
    ingest(&warm, &events(0, 10));
    // Warm the cache, twice over, then die without drain or checkpoint.
    let cmds = parse_all(&query_lines(10.0));
    warm.execute_query_batch(&cmds, &[]);
    let (hits, _, _) = warm.cache_counters();
    assert!(hits > 0);
    drop(warm);

    let recovered = Engine::from_model(&model, cached_cfg(), FaultHook::none());
    let report = recovered
        .open_wal(&dir.join("wal"), WalConfig::default())
        .unwrap();
    assert_eq!(report.replayed, 10);
    assert_eq!(
        recovered.cache_len(),
        0,
        "recovery must never trust pre-crash cache state"
    );
    // Batched+cached replies from the recovered engine match a fresh
    // uninterrupted uncached engine byte for byte.
    let reference = engine(1, false, FaultHook::none());
    ingest(&reference, &events(0, 10));
    let got: Vec<String> = recovered
        .execute_query_batch(&cmds, &[])
        .into_iter()
        .map(|r| r.render())
        .collect();
    let want: Vec<String> = cmds
        .iter()
        .map(|c| reference.execute(c.clone()).render())
        .collect();
    assert_eq!(got, want);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Wire level: a coalescing server under concurrent connections.
// ---------------------------------------------------------------------

#[test]
fn tcp_server_with_batching_and_cache_answers_every_connection_correctly() {
    let model = trained_model(21);
    let reference = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    ingest(&reference, &events(0, 10));

    let serving = Arc::new(Engine::from_model(
        &model,
        EngineConfig {
            cache: true,
            ..EngineConfig::default()
        },
        FaultHook::none(),
    ));
    let server = Server::start(
        Arc::clone(&serving),
        &ServerConfig {
            workers: 1,
            batch: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind serve");
    let addr = server.local_addr();

    // Ingest over one connection first (lockstep: deterministic order).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for line in events(0, 10) {
            writeln!(stream, "{line}").unwrap();
            stream.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert!(reply.starts_with("OK "), "{line:?} -> {reply}");
        }
    }

    // Pure queries from 6 concurrent connections: read-only on DGNN
    // state, so every reply must equal the reference engine's regardless
    // of how the worker coalesced them.
    let queries = query_lines(10.0);
    let expected: Vec<String> = queries.iter().map(|q| exec(&reference, q)).collect();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for (line, want) in queries.iter().zip(&expected) {
                    writeln!(stream, "{line}").unwrap();
                    stream.flush().unwrap();
                    let mut reply = String::new();
                    reader.read_line(&mut reply).unwrap();
                    assert_eq!(reply.trim_end(), want, "for {line:?}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
    let (hits, misses, _) = serving.cache_counters();
    assert!(
        hits > 0,
        "six identical scripts must hit the cache ({hits}h/{misses}m)"
    );
}

// ---------------------------------------------------------------------
// Property level: random EVENT / QUERY / RELOAD interleavings.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Event { src: u32, dst: u32 },
    Emb { node: u32, now: bool },
    Score { src: u32, dst: u32 },
    Reload,
}

/// Ops over a universe slightly larger than the model's, so out-of-range
/// ids (typed `ERR exec`, engine-side validation) interleave with real
/// traffic — pinning that a refused EVENT stays a no-op in both modes.
fn op_strategy() -> impl Strategy<Value = Op> {
    let id = 0..(NODES as u32 + 2);
    prop_oneof![
        3 => (id.clone(), id.clone()).prop_map(|(src, dst)| Op::Event { src, dst }),
        4 => (id.clone(), any::<bool>()).prop_map(|(node, now)| Op::Emb { node, now }),
        2 => (id.clone(), id).prop_map(|(src, dst)| Op::Score { src, dst }),
        1 => Just(Op::Reload),
    ]
}

/// Replays `ops` against a batched+cached engine and a sequential
/// uncached engine: query runs are flushed as one fused batch exactly
/// where a non-query op (or the end) lands, mirroring the server's
/// contiguous-prefix drain. Every rendered reply must match.
fn run_interleaving(reload_path: &Path, ops: &[Op]) {
    let batched = engine(1, true, FaultHook::none());
    let sequential = engine(1, false, FaultHook::none());
    let mut t = 0.0f64;
    let mut run: Vec<Command> = Vec::new();
    let mut got: Vec<String> = Vec::new();
    let mut want: Vec<String> = Vec::new();

    fn flush(
        batched: &Engine,
        sequential: &Engine,
        run: &mut Vec<Command>,
        got: &mut Vec<String>,
        want: &mut Vec<String>,
    ) {
        if run.is_empty() {
            return;
        }
        got.extend(
            batched
                .execute_query_batch(run, &[])
                .into_iter()
                .map(|r| r.render()),
        );
        for c in run.drain(..) {
            want.push(sequential.execute(c).render());
        }
    }

    for op in ops {
        match *op {
            Op::Emb { node, now } => run.push(Command::Emb {
                node,
                t: if now { None } else { Some(6.0) },
            }),
            Op::Score { src, dst } => run.push(Command::Score {
                src,
                dst,
                t: Some(6.0),
            }),
            Op::Event { src, dst } => {
                flush(&batched, &sequential, &mut run, &mut got, &mut want);
                t += 1.0;
                let cmd = Command::Event {
                    src,
                    dst,
                    t,
                    field: 0,
                };
                got.push(batched.execute(cmd.clone()).render());
                want.push(sequential.execute(cmd).render());
            }
            Op::Reload => {
                flush(&batched, &sequential, &mut run, &mut got, &mut want);
                let cmd = Command::Reload {
                    path: reload_path.display().to_string(),
                };
                got.push(batched.execute(cmd.clone()).render());
                want.push(sequential.execute(cmd).render());
            }
        }
    }
    flush(&batched, &sequential, &mut run, &mut got, &mut want);
    assert_eq!(got, want, "ops: {ops:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_interleavings_are_cache_and_batch_invariant(
        ops in proptest::collection::vec(op_strategy(), 1..36)
    ) {
        let dir = test_dir("prop");
        let reload_path = dir.join("reload.json");
        trained_model(35).save(&reload_path).unwrap();
        run_interleaving(&reload_path, &ops);
        std::fs::remove_dir_all(&dir).ok();
    }
}
