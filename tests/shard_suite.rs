//! Shard suite: the shard-count-invariance oracle.
//!
//! The sharded serving engine partitions the *durability and resilience*
//! domain — WAL streams, breaker replicas, admission queues — by node id,
//! while the DGNN compute core stays shared and serialised. The contract
//! that makes `--shards N` safe to deploy is therefore an invariance, not
//! a behaviour: **the same event and query streams must produce
//! bit-identical replies at 1, 2, and 8 shards**, including under drain,
//! hot reload, breaker trips, and crash recovery. "Bit-identical" is
//! literal — rendered reply strings and drained memory files are compared
//! verbatim.
//!
//! Alongside the oracle, property tests pin the routing map itself:
//! * routing is *total* — every node id maps to one in-range shard at any
//!   shard count;
//! * routing is *stable* — a rebuilt router (a restart) produces the same
//!   map, and the engine-side [`ShardBank`] agrees with the raw
//!   [`ShardRouter`], so a replayed WAL record always lands on the shard
//!   that originally owned it (asserted directly against on-disk
//!   `wal.shard<k>/` streams below).
//!
//! Topology-dependent surfaces (`STATUS` reports `shards=N` and per-shard
//! blocks by design) stay out of the compared scripts; their shape is
//! covered by the serve crate's inline tests and `observability.rs`.

use cpdg::core::chaos::{FaultHook, FaultKind, FaultPlan, FaultPoint, Trigger};
use cpdg::core::storage::FS_STORAGE;
use cpdg::core::wal::{decode_event_seq, shard_dir, Wal, WalConfig};
use cpdg::core::ModelFile;
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor, MemorySnapshot};
use cpdg::graph::ShardRouter;
use cpdg::serve::{parse_line, Engine, EngineConfig, Server, ServerConfig, ShardBank};
use cpdg::tensor::{Matrix, ParamStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const NODES: usize = 12;
const DIM: usize = 8;
/// Every oracle below runs at these shard counts; 1 is the legacy layout.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// A model bundle shaped like `cpdg pretrain` writes (namespaces `enc` /
/// `pretext_head`), so engines built from it serve real replies.
fn trained_model(seed: u64) -> ModelFile {
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let _enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
    let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", DIM);
    let states = Matrix::from_vec(
        NODES,
        DIM,
        (0..NODES * DIM)
            .map(|i| ((i % 11) as f32) * 0.03 - 0.15)
            .collect(),
    );
    ModelFile::new(
        cfg,
        NODES,
        store,
        vec![MemorySnapshot {
            states,
            progress: 1.0,
        }],
    )
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_shard_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sharded_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        ..EngineConfig::default()
    }
}

/// Small segments so multi-event streams cross rotation boundaries in
/// every shard's log, not just the single-shard one.
fn tiny_segments() -> WalConfig {
    WalConfig {
        segment_bytes: 64,
        ..WalConfig::default()
    }
}

fn exec(engine: &Engine, line: &str) -> String {
    let cmd = parse_line(line).unwrap_or_else(|e| panic!("bad script line {line:?}: {e}"));
    engine.execute(cmd).render()
}

/// The ingestion stream: node pairs chosen so that routing at 2, 4, and 8
/// shards spreads events across several `wal.shard<k>/` streams.
fn events() -> Vec<String> {
    (0..10u32)
        .map(|i| format!("EVENT {} {} {}.0", i % 6, (i + 1) % 6, i + 1))
        .collect()
}

/// Deterministic queries (explicit timestamps) probing the ingested state.
fn queries() -> Vec<String> {
    let mut q = Vec::new();
    for i in 0..6u32 {
        q.push(format!("EMB {i} 10.0"));
        q.push(format!("SCORE {} {} 10.0", i, (i + 3) % 6));
    }
    q
}

/// Replies of an uninterrupted, WAL-less, single-shard engine over the
/// same stream — the reference every sharded run is compared against.
fn reference_replies(model: &ModelFile, accepted: &[String]) -> Vec<String> {
    let engine = Engine::from_model(model, EngineConfig::default(), FaultHook::none());
    for line in accepted {
        let r = exec(&engine, line);
        assert!(
            r.starts_with("OK "),
            "reference ingest failed: {line:?} -> {r}"
        );
    }
    queries().iter().map(|q| exec(&engine, q)).collect()
}

/// Runs a script over a real TCP server at the given topology, drains,
/// persists memory, and returns `(replies, drained memory bytes)`.
fn run_serve(
    script: &[String],
    shards: usize,
    workers: usize,
    plan: Option<&FaultPlan>,
    model: &ModelFile,
    mem_path: &Path,
) -> (Vec<String>, Vec<u8>) {
    let hook = match plan {
        Some(p) => FaultHook::install(p),
        None => FaultHook::none(),
    };
    let engine = Arc::new(Engine::from_model(model, sharded_config(shards), hook));
    let server = Server::start(
        Arc::clone(&engine),
        &ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind serve");
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut replies = Vec::with_capacity(script.len());
    for line in script {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            !reply.is_empty(),
            "connection closed mid-script at {line:?}"
        );
        replies.push(reply.trim_end().to_string());
    }
    drop((stream, reader));
    let engine = server.shutdown();
    engine
        .persist_memory(&FS_STORAGE, mem_path)
        .expect("persist drained memory");
    let bytes = std::fs::read(mem_path).unwrap();
    (replies, bytes)
}

/// Events then queries, `STATUS`/`STATS` excluded: those report topology
/// and shed counts, which differ across shard counts by design.
fn invariance_script() -> Vec<String> {
    let mut s = vec!["PING".to_string()];
    s.extend(events());
    s.extend(queries());
    s.push("PING".to_string());
    s
}

// ---------------------------------------------------------------------
// The tentpole oracle: bit-identical replies and drained memory at
// 1 / 2 / 8 shards, each crossed with 1 / 4 workers per shard.
// ---------------------------------------------------------------------

#[test]
fn replies_and_drained_memory_are_invariant_across_shard_counts() {
    let model = trained_model(21);
    let script = invariance_script();
    let dir = test_dir("invariance");
    let (reference, reference_mem) =
        run_serve(&script, 1, 1, None, &model, &dir.join("mem_ref.json"));
    for r in &reference {
        assert!(r.starts_with("OK v1 "), "fault-free reference reply: {r}");
    }
    for shards in SHARD_COUNTS {
        for workers in [1usize, 4] {
            let mem_path = dir.join(format!("mem_s{shards}_w{workers}.json"));
            let (replies, mem) = run_serve(&script, shards, workers, None, &model, &mem_path);
            assert_eq!(
                replies, reference,
                "replies diverge at shards={shards} workers={workers}"
            );
            assert_eq!(
                mem, reference_mem,
                "drained memory diverges at shards={shards} workers={workers}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn breaker_trips_and_degraded_fallback_are_invariant_across_shard_counts() {
    let model = trained_model(23);
    // Every inference fails: the replicated breaker bank must trip in
    // lockstep at any shard count, and the degraded static-embedding
    // fallback (plus count-based probes, which also fail) must render the
    // exact same reply stream everywhere. Events keep succeeding — only
    // the query path is broken.
    let plan = FaultPlan::new(31).with(
        FaultPoint::ServeInfer,
        FaultKind::Transient,
        Trigger::Every { k: 1 },
    );
    let mut script = events();
    script.extend(queries());
    let run = |shards: usize| -> Vec<String> {
        let engine = Engine::from_model(&model, sharded_config(shards), FaultHook::install(&plan));
        script.iter().map(|line| exec(&engine, line)).collect()
    };
    let reference = run(1);
    assert!(
        reference.iter().any(|r| r.starts_with("DEGRADED ")),
        "fault plan never tripped the breaker: {reference:?}"
    );
    for shards in SHARD_COUNTS {
        assert_eq!(run(shards), reference, "shards={shards}");
    }
}

#[test]
fn hot_reload_is_invariant_across_shard_counts() {
    let model = trained_model(25);
    let dir = test_dir("reload");
    let next_path = dir.join("next_model.cpdg");
    trained_model(26).save(&next_path).unwrap();
    let mut script: Vec<String> = events()[..4].to_vec();
    script.push(format!("RELOAD {}", next_path.display()));
    script.extend(events()[4..].iter().cloned());
    script.extend(queries());
    let run = |shards: usize| -> Vec<String> {
        let engine = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
        script.iter().map(|line| exec(&engine, line)).collect()
    };
    let reference = run(1);
    assert!(
        reference[4].starts_with("OK v2 reloaded"),
        "reload reply: {}",
        reference[4]
    );
    assert!(
        reference.last().unwrap().starts_with("OK v2 "),
        "post-reload replies are v2: {:?}",
        reference.last()
    );
    for shards in SHARD_COUNTS {
        assert_eq!(run(shards), reference, "shards={shards}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Crash recovery: a mid-stream kill -9 analog at every shard count must
// recover to the exact same replies as an uninterrupted single-shard run,
// cold (merge-replay) and warm (checkpoint + empty suffix).
// ---------------------------------------------------------------------

#[test]
fn crash_recovery_is_invariant_across_shard_counts() {
    let model = trained_model(7);
    let stream = events();
    let cut = 7usize;
    let reference = reference_replies(&model, &stream);
    for shards in SHARD_COUNTS {
        let dir = test_dir(&format!("crash{shards}"));
        let engine = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
        engine.open_wal(&dir, tiny_segments()).unwrap();
        for line in &stream[..cut] {
            let r = exec(&engine, line);
            assert!(r.starts_with("OK "), "shards={shards} {line:?} -> {r}");
        }
        // kill -9 analog: no drain, no checkpoint, no final sync.
        drop(engine);

        let recovered = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
        let report = recovered.open_wal(&dir, tiny_segments()).unwrap();
        assert_eq!(report.replayed, cut as u64, "shards={shards}");
        for line in &stream[cut..] {
            let r = exec(&recovered, line);
            assert!(r.starts_with("OK "), "shards={shards} {line:?} -> {r}");
        }
        let got: Vec<String> = queries().iter().map(|q| exec(&recovered, q)).collect();
        assert_eq!(got, reference, "cold recovery at shards={shards}");

        // Checkpoint, crash again, warm-start: nothing left to replay.
        recovered.checkpoint_wal(&FS_STORAGE).unwrap();
        drop(recovered);
        let warm = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
        let report = warm.open_wal(&dir, tiny_segments()).unwrap();
        assert_eq!(
            report.checkpoint_applied,
            stream.len() as u64,
            "shards={shards}"
        );
        assert_eq!(report.replayed, 0, "shards={shards}");
        let got: Vec<String> = queries().iter().map(|q| exec(&warm, q)).collect();
        assert_eq!(got, reference, "warm recovery at shards={shards}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn shard_count_mismatch_is_a_typed_refusal() {
    let model = trained_model(7);

    // A checkpoint written at --shards 2 must refuse every other count.
    let dir = test_dir("mismatch");
    let engine = Engine::from_model(&model, sharded_config(2), FaultHook::none());
    engine.open_wal(&dir, tiny_segments()).unwrap();
    for line in &events()[..4] {
        exec(&engine, line);
    }
    engine.checkpoint_wal(&FS_STORAGE).unwrap();
    drop(engine);
    for wrong in [4usize, 8] {
        let e = Engine::from_model(&model, sharded_config(wrong), FaultHook::none());
        let err = e.open_wal(&dir, tiny_segments()).unwrap_err().to_string();
        assert!(
            err.contains("--shards"),
            "shards=2 checkpoint opened at {wrong}: {err}"
        );
    }
    let legacy = Engine::from_model(&model, sharded_config(1), FaultHook::none());
    let err = legacy
        .open_wal(&dir, tiny_segments())
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("shard"),
        "sharded checkpoint under legacy: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();

    // And the converse: a legacy checkpoint refuses a sharded reopen.
    let dir = test_dir("legacy");
    let engine = Engine::from_model(&model, sharded_config(1), FaultHook::none());
    engine.open_wal(&dir, tiny_segments()).unwrap();
    for line in &events()[..4] {
        exec(&engine, line);
    }
    engine.checkpoint_wal(&FS_STORAGE).unwrap();
    drop(engine);
    let sharded = Engine::from_model(&model, sharded_config(2), FaultHook::none());
    let err = sharded
        .open_wal(&dir, tiny_segments())
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("--shards 1"),
        "legacy checkpoint under shards=2: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Routing: replayed records land on the shard that wrote them, because
// the node→shard map is a pure function shared by the live router, the
// engine's ShardBank, and recovery.
// ---------------------------------------------------------------------

#[test]
fn replayed_records_land_on_their_originating_shard() {
    let model = trained_model(7);
    let shards = 4usize;
    let dir = test_dir("origin");
    let engine = Engine::from_model(&model, sharded_config(shards), FaultHook::none());
    engine.open_wal(&dir, tiny_segments()).unwrap();
    let stream = events();
    for line in &stream {
        let r = exec(&engine, line);
        assert!(r.starts_with("OK "), "{line:?} -> {r}");
    }
    drop(engine);

    // Walk each on-disk wal.shard<k>/ stream directly: every record's
    // source node must route back to exactly the shard that holds it, and
    // the union of sequence numbers must be dense — the merge-replay
    // contiguity precondition.
    let router = ShardRouter::new(shards);
    let mut seqs = Vec::new();
    for k in 0..shards {
        let wal = Wal::open(&shard_dir(&dir, k), tiny_segments(), FaultHook::none()).unwrap();
        wal.replay(0, |_, payload| {
            let (seq, src, _dst, _t, _field) = decode_event_seq(payload)
                .unwrap_or_else(|e| panic!("shard {k}: undecodable sharded frame: {e}"));
            assert_eq!(
                router.route(src),
                k,
                "seq {seq} (src {src}) persisted on shard {k}"
            );
            seqs.push(seq);
            Ok(())
        })
        .unwrap();
    }
    seqs.sort_unstable();
    let expect: Vec<u64> = (0..stream.len() as u64).collect();
    assert_eq!(seqs, expect, "merged shard streams cover a dense seq range");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Routing is total (always one in-range shard) and restart-stable
    /// (a rebuilt router produces the same map — the property WAL
    /// recovery relies on to re-own records after a crash).
    #[test]
    fn routing_is_total_and_restart_stable(node in any::<u32>(), shards in 1usize..64) {
        let owner = ShardRouter::new(shards).route(node);
        prop_assert!(owner < shards, "node {node} routed out of range: {owner} >= {shards}");
        prop_assert_eq!(
            owner,
            ShardRouter::new(shards).route(node),
            "a rebuilt router (restart) must agree"
        );
    }

    /// The engine-side ShardBank and the raw router agree on ownership,
    /// so a record appended by the bank is found by recovery's per-shard
    /// walk — each node belongs to exactly one shard under both views.
    #[test]
    fn bank_and_router_agree_on_ownership(node in any::<u32>(), shards in 1usize..16) {
        let bank = ShardBank::new(shards, 3, 4);
        let owner = bank.route(node);
        prop_assert_eq!(owner, ShardRouter::new(shards).route(node));
        let claims = (0..shards).filter(|&k| k == owner).count();
        prop_assert_eq!(claims, 1, "exactly one shard owns node {node}");
    }
}
