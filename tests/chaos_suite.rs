//! Chaos-harness integration suite: the recovery-correctness oracle.
//!
//! Each test runs the pipeline under a deterministic [`FaultPlan`] and
//! asserts the outcome is **bit-identical** to the fault-free run — faults
//! that are retried, resumed past, or quarantined must leave no trace in
//! the final parameters or metrics. Three distinct plans are covered:
//!
//! 1. transient storage / sampler / memory faults cleared by retry;
//! 2. a permanent `ckpt.save` fault that crashes pre-training mid-run,
//!    followed by a plan-free resume;
//! 3. malformed rows spliced into ingestion (`loader.row`) and quarantined
//!    by the lenient loader.

use cpdg::core::chaos::{
    load_jodie_chaos, FaultHook, FaultKind, FaultPlan, FaultPoint, RetryPolicy, Trigger,
};
use cpdg::core::checkpoint::CheckpointConfig;
use cpdg::core::error::CpdgError;
use cpdg::core::pretrain::{pretrain_resumable, PretrainConfig, PretrainRuntime};
use cpdg::core::storage::FS_STORAGE;
use cpdg::core::ModelFile;
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor, MemorySnapshot};
use cpdg::graph::loader::{write_jodie_csv, LoadOptions};
use cpdg::graph::{generate, SyntheticConfig, SyntheticDataset};
use cpdg::serve::{parse_line, Engine, EngineConfig};
use cpdg::tensor::optim::Adam;
use cpdg::tensor::{Matrix, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tiny_dataset(seed: u64) -> SyntheticDataset {
    generate(
        &SyntheticConfig {
            n_events: 600,
            ..SyntheticConfig::amazon_like(seed)
        }
        .scaled(0.12),
    )
}

/// Deterministic model builder: same inputs, same initialisation — the
/// contract both resume and the bit-identity oracle rely on.
fn build(num_nodes: usize, seed: u64) -> (ParamStore, DgnnEncoder, LinkPredictor) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, 16, 10_000.0);
    let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", num_nodes, cfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
    (store, enc, head)
}

fn pcfg() -> PretrainConfig {
    PretrainConfig {
        epochs: 1,
        batch_size: 50,
        n_checkpoints: 4,
        ..Default::default()
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_chaos_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The fault-free reference: one uninterrupted run, no persistence.
fn reference_run(ds: &SyntheticDataset, seed: u64) -> (ParamStore, Vec<u32>) {
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), seed);
    let mut opt = Adam::new(1e-2);
    let out = pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &pcfg(),
        &PretrainRuntime::default(),
    )
    .expect("reference run");
    let loss_bits = out.epoch_losses.iter().map(|e| e.total.to_bits()).collect();
    (store, loss_bits)
}

#[test]
fn transient_faults_are_retried_to_a_bit_identical_run() {
    let ds = tiny_dataset(10);
    let (ref_store, ref_losses) = reference_run(&ds, 10);

    // Plan 1: transient faults at three different layers. Every trigger is
    // self-clearing under retry: the hit counter advances on each retry, so
    // an `nth`/`every` rule stops matching on the next consultation.
    let plan = FaultPlan::new(42)
        .with(
            FaultPoint::StorageWrite,
            FaultKind::Transient,
            Trigger::Every { k: 3 },
        )
        .with(
            FaultPoint::SamplerBatch,
            FaultKind::Transient,
            Trigger::Nth { n: 2 },
        )
        .with(
            FaultPoint::MemoryUpdate,
            FaultKind::Transient,
            Trigger::Nth { n: 3 },
        );
    let hook = FaultHook::install(&plan);

    let dir = test_dir("transient");
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 10);
    let mut opt = Adam::new(1e-2);
    let out = pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &pcfg(),
        &PretrainRuntime {
            checkpoint: Some(CheckpointConfig {
                dir: dir.clone(),
                every_n_steps: 3,
                keep: 3,
            }),
            chaos: hook.clone(),
            ..PretrainRuntime::default()
        },
    )
    .expect("transient faults must be absorbed by retry");

    // The plan actually fired — this test is not vacuous.
    assert!(
        hook.injected() >= 3,
        "expected several injections, got {}",
        hook.injected()
    );
    assert!(hook.injected_at(FaultPoint::StorageWrite) > 0);
    assert!(hook.injected_at(FaultPoint::SamplerBatch) > 0);
    assert!(hook.injected_at(FaultPoint::MemoryUpdate) > 0);

    // …and left no trace: parameters and losses match the fault-free run
    // bit for bit.
    let losses: Vec<u32> = out.epoch_losses.iter().map(|e| e.total.to_bits()).collect();
    assert_eq!(
        losses, ref_losses,
        "epoch losses diverged under transient chaos"
    );
    assert_eq!(
        store.to_json(),
        ref_store.to_json(),
        "parameters diverged under transient chaos"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permanent_ckpt_save_fault_crashes_then_resumes_bit_identically() {
    let ds = tiny_dataset(11);
    let (ref_store, ref_losses) = reference_run(&ds, 11);

    // Plan 2: the second checkpoint publish dies permanently — retry must
    // give up immediately (permanent faults are not transient) and the run
    // must surface a typed I/O error mid-stream.
    let plan = FaultPlan::new(7).with(
        FaultPoint::CkptSave,
        FaultKind::Permanent,
        Trigger::Nth { n: 2 },
    );
    let hook = FaultHook::install(&plan);

    let dir = test_dir("ckpt_crash");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        every_n_steps: 3,
        keep: 3,
    };
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 11);
    let mut opt = Adam::new(1e-2);
    let err = pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &pcfg(),
        &PretrainRuntime {
            checkpoint: Some(ckpt.clone()),
            chaos: hook.clone(),
            ..PretrainRuntime::default()
        },
    )
    .expect_err("permanent ckpt.save fault must abort the run");
    assert!(matches!(err, CpdgError::Io { .. }), "{err}");
    assert_eq!(hook.injected_at(FaultPoint::CkptSave), 1);

    // The first checkpoint survived the crash; resuming without any plan
    // replays the remaining steps to the exact fault-free endpoint.
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 11);
    let mut opt = Adam::new(1e-2);
    let resumed = pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &pcfg(),
        &PretrainRuntime {
            checkpoint: Some(ckpt),
            resume: true,
            ..PretrainRuntime::default()
        },
    )
    .expect("resume after the injected crash");

    let losses: Vec<u32> = resumed
        .epoch_losses
        .iter()
        .map(|e| e.total.to_bits())
        .collect();
    assert_eq!(
        losses, ref_losses,
        "epoch losses diverged across crash+resume"
    );
    assert_eq!(
        store.to_json(),
        ref_store.to_json(),
        "resumed parameters must be bit-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantined_malformed_rows_leave_downstream_metrics_untouched() {
    let ds = tiny_dataset(12);
    let dir = test_dir("ingest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.csv");
    write_jodie_csv(
        &ds.graph,
        ds.num_users,
        std::fs::File::create(&path).unwrap(),
    )
    .unwrap();

    // Fault-free parse of the same bytes.
    let clean = load_jodie_chaos(
        &FS_STORAGE,
        &path,
        &LoadOptions::lenient(),
        &RetryPolicy::default(),
        &FaultHook::none(),
    )
    .expect("clean load");
    assert_eq!(clean.quarantine.total, 0);

    // Plan 3: splice a malformed line in front of every 40th data row. The
    // lenient loader must set each one aside and reconstruct the exact
    // clean graph.
    let plan = FaultPlan::new(3).with(
        FaultPoint::LoaderRow,
        FaultKind::Permanent,
        Trigger::Every { k: 40 },
    );
    let hook = FaultHook::install(&plan);
    let dirty = load_jodie_chaos(
        &FS_STORAGE,
        &path,
        &LoadOptions::lenient(),
        &RetryPolicy::default(),
        &hook,
    )
    .expect("lenient load absorbs injected rows");

    let injected = hook.injected_at(FaultPoint::LoaderRow) as usize;
    assert!(injected > 0, "plan must have fired");
    assert_eq!(
        dirty.quarantine.total, injected,
        "every injected malformed line is quarantined, nothing else"
    );
    assert_eq!(dirty.graph.num_events(), clean.graph.num_events());
    assert_eq!(dirty.num_users, clean.num_users);
    assert_eq!(dirty.num_items, clean.num_items);

    // Downstream bit-identity: pre-training on the quarantine-cleaned graph
    // equals pre-training on the clean one, parameter for parameter.
    let run = |g: &cpdg::graph::DynamicGraph| {
        let (mut store, mut enc, head) = build(g.num_nodes(), 12);
        let mut opt = Adam::new(1e-2);
        let out = pretrain_resumable(
            &mut enc,
            &head,
            &mut store,
            &mut opt,
            g,
            &pcfg(),
            &PretrainRuntime::default(),
        )
        .expect("pretrain");
        let bits: Vec<u32> = out.epoch_losses.iter().map(|e| e.total.to_bits()).collect();
        (store.to_json(), bits)
    };
    let (clean_params, clean_bits) = run(&clean.graph);
    let (dirty_params, dirty_bits) = run(&dirty.graph);
    assert_eq!(dirty_bits, clean_bits, "losses diverged after quarantine");
    assert_eq!(
        dirty_params, clean_params,
        "parameters diverged after quarantine"
    );

    // Strict mode refuses the same injected stream with a parse error.
    let strict_hook = FaultHook::install(&plan);
    let err = load_jodie_chaos(
        &FS_STORAGE,
        &path,
        &LoadOptions::strict(),
        &RetryPolicy::default(),
        &strict_hook,
    )
    .expect_err("strict mode must reject injected rows");
    assert!(matches!(err, CpdgError::Data(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The serve-side `shard.route` fault point: a faulted `EVENT` is
/// rejected with `ERR exec` *before* it reaches any WAL stream or the
/// encoder, the rejection leaves no trace (an engine fed only the
/// accepted events answers identically), and — because routing is
/// consulted exactly once per `EVENT` at any shard count — the whole
/// faulted trace is itself shard-count-invariant.
#[test]
fn shard_route_faults_reject_identically_at_any_shard_count() {
    const NODES: usize = 12;
    const DIM: usize = 8;
    let model = {
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(19);
        let _enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
        let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", DIM);
        let states = Matrix::from_vec(NODES, DIM, vec![0.1; NODES * DIM]);
        ModelFile::new(
            cfg,
            NODES,
            store,
            vec![MemorySnapshot {
                states,
                progress: 1.0,
            }],
        )
    };
    let events: Vec<String> = (0..8u32)
        .map(|i| format!("EVENT {} {} {}.0", i % 6, (i + 1) % 6, i + 1))
        .collect();
    let queries: Vec<String> = (0..6u32).map(|i| format!("EMB {i} 9.0")).collect();
    let exec = |engine: &Engine, line: &str| -> String {
        engine
            .execute(parse_line(line).expect("script line"))
            .render()
    };

    let run = |shards: usize| -> (Vec<String>, u64) {
        let plan = FaultPlan::new(13).with(
            FaultPoint::ShardRoute,
            FaultKind::Permanent,
            Trigger::Nth { n: 3 },
        );
        let hook = FaultHook::install(&plan);
        let engine = Engine::from_model(
            &model,
            EngineConfig {
                shards,
                ..EngineConfig::default()
            },
            hook.clone(),
        );
        let mut replies: Vec<String> = events.iter().map(|l| exec(&engine, l)).collect();
        replies.extend(queries.iter().map(|l| exec(&engine, l)));
        (replies, hook.injected_at(FaultPoint::ShardRoute))
    };

    let (reference, injected) = run(1);
    assert_eq!(injected, 1, "the route fault fired exactly once");
    assert!(
        reference[2].starts_with("ERR exec "),
        "3rd EVENT must be rejected at routing: {}",
        reference[2]
    );

    // Exactly-once: a fault-free engine fed only the accepted events
    // answers every query identically — the rejected event left no trace.
    let clean = Engine::from_model(&model, EngineConfig::default(), FaultHook::none());
    for (i, line) in events.iter().enumerate() {
        if i != 2 {
            assert!(
                exec(&clean, line).starts_with("OK "),
                "clean ingest {line:?}"
            );
        }
    }
    for (q, expect) in queries.iter().zip(&reference[events.len()..]) {
        assert_eq!(
            &exec(&clean, q),
            expect,
            "accepted-only state diverged at {q}"
        );
    }

    let (sharded, injected) = run(4);
    assert_eq!(injected, 1);
    assert_eq!(
        sharded, reference,
        "shard.route chaos trace diverges at 4 shards"
    );
}

#[test]
fn probability_triggers_are_reproducible_across_identical_plans() {
    // The `prob` trigger must be a pure function of (seed, point, hit):
    // two hooks built from the same plan inject at exactly the same hits.
    let plan = FaultPlan::new(99).with(
        FaultPoint::SamplerBatch,
        FaultKind::Transient,
        Trigger::Prob { p: 0.3 },
    );
    let trace = |plan: &FaultPlan| -> Vec<bool> {
        let hook = FaultHook::install(plan);
        (0..200)
            .map(|_| hook.check(FaultPoint::SamplerBatch).is_err())
            .collect()
    };
    let a = trace(&plan);
    let b = trace(&plan);
    assert_eq!(
        a, b,
        "identical plans must produce identical fault schedules"
    );
    let fired = a.iter().filter(|&&f| f).count();
    assert!(
        fired > 20 && fired < 100,
        "p=0.3 over 200 hits fired {fired} times"
    );
}
