//! Fault-tolerance integration tests: kill-and-resume pre-training,
//! corrupt-checkpoint fallback, crash-safe model saves, and divergence
//! reporting — the runtime behaviours that keep long experiments alive.

use cpdg::core::checkpoint::CheckpointConfig;
use cpdg::core::error::CpdgError;
use cpdg::core::model_io::ModelFile;
use cpdg::core::pretrain::{pretrain_resumable, PretrainConfig, PretrainRuntime};
use cpdg::core::storage::fault::CrashingStorage;
use cpdg::core::storage::{Storage, FS_STORAGE};
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, GuardConfig, LinkPredictor};
use cpdg::graph::{generate, SyntheticConfig, SyntheticDataset};
use cpdg::tensor::optim::Adam;
use cpdg::tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tiny_dataset(seed: u64) -> SyntheticDataset {
    generate(&SyntheticConfig { n_events: 600, ..SyntheticConfig::amazon_like(seed) }.scaled(0.12))
}

/// Deterministic model builder: every call with the same inputs yields an
/// identically initialised encoder/head/store — the contract resume relies on.
fn build(num_nodes: usize, seed: u64) -> (ParamStore, DgnnEncoder, LinkPredictor) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, 16, 10_000.0);
    let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", num_nodes, cfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
    (store, enc, head)
}

fn pcfg() -> PretrainConfig {
    PretrainConfig { epochs: 1, batch_size: 50, n_checkpoints: 4, ..Default::default() }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_ft_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn kill_and_resume_matches_uninterrupted_run_exactly() {
    let ds = tiny_dataset(0);
    let cfg = pcfg();

    // Reference: one uninterrupted run, no persistence.
    let (mut ref_store, mut ref_enc, ref_head) = build(ds.graph.num_nodes(), 0);
    let mut ref_opt = Adam::new(1e-2);
    let reference = pretrain_resumable(
        &mut ref_enc,
        &ref_head,
        &mut ref_store,
        &mut ref_opt,
        &ds.graph,
        &cfg,
        &PretrainRuntime::default(),
    )
    .expect("reference run");

    // Interrupted: checkpoint every 3 steps, kill after 7.
    let dir = test_dir("resume");
    let ckpt = CheckpointConfig { dir: dir.clone(), every_n_steps: 3, keep: 3 };
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 0);
    let mut opt = Adam::new(1e-2);
    let err = pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &cfg,
        &PretrainRuntime {
            checkpoint: Some(ckpt.clone()),
            step_limit: Some(7),
            ..PretrainRuntime::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, CpdgError::Interrupted { step: 7, .. }), "{err}");

    // Resume in a fresh, identically seeded process image.
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 0);
    let mut opt = Adam::new(1e-2);
    let resumed = pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &cfg,
        &PretrainRuntime {
            checkpoint: Some(ckpt),
            resume: true,
            ..PretrainRuntime::default()
        },
    )
    .expect("resumed run");

    // The resumed run must land exactly where the uninterrupted one did:
    // per-batch RNG reseeding makes the trajectories identical.
    assert_eq!(resumed.checkpoints.len(), cfg.n_checkpoints);
    assert_eq!(resumed.epoch_losses.len(), reference.epoch_losses.len());
    for (a, b) in resumed.epoch_losses.iter().zip(&reference.epoch_losses) {
        assert!(a.total.is_finite());
        assert!((a.total - b.total).abs() < 1e-5, "{} vs {}", a.total, b.total);
    }
    assert_eq!(
        store.to_json(),
        ref_store.to_json(),
        "resumed parameters must be bit-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_skips_corrupt_newest_checkpoint() {
    let ds = tiny_dataset(1);
    let cfg = pcfg();
    let dir = test_dir("corrupt");
    let ckpt = CheckpointConfig { dir: dir.clone(), every_n_steps: 3, keep: 3 };

    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 1);
    let mut opt = Adam::new(1e-2);
    pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &cfg,
        &PretrainRuntime {
            checkpoint: Some(ckpt.clone()),
            step_limit: Some(7),
            ..PretrainRuntime::default()
        },
    )
    .unwrap_err();

    // Truncate the newest checkpoint file (torn legacy write / bad disk).
    let mut files: Vec<PathBuf> = FS_STORAGE
        .list(&dir)
        .unwrap()
        .into_iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("ckpt-"))
                .unwrap_or(false)
        })
        .collect();
    assert!(files.len() >= 2, "expected at least two checkpoints, got {files:?}");
    let newest = files.pop().unwrap();
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    // Resume must fall back to the older valid checkpoint and complete.
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 1);
    let mut opt = Adam::new(1e-2);
    let resumed = pretrain_resumable(
        &mut enc,
        &head,
        &mut store,
        &mut opt,
        &ds.graph,
        &cfg,
        &PretrainRuntime { checkpoint: Some(ckpt), resume: true, ..PretrainRuntime::default() },
    )
    .expect("resume past the corrupt file");
    assert_eq!(resumed.checkpoints.len(), cfg.n_checkpoints);
    assert!(resumed.epoch_losses.iter().all(|e| e.total.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashed_model_save_preserves_previous_version() {
    let dir = test_dir("model_crash");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    let storage = CrashingStorage::new();

    let mut params = ParamStore::new();
    params.register("w", cpdg::tensor::Matrix::full(1, 2, 1.0));
    let v1 = ModelFile::new(DgnnConfig::preset(EncoderKind::Tgn, 8, 1.0), 3, params, vec![]);
    v1.save_with(&storage, &path).expect("first save");

    let mut params = ParamStore::new();
    params.register("w", cpdg::tensor::Matrix::full(1, 2, 2.0));
    let v2 = ModelFile::new(DgnnConfig::preset(EncoderKind::Tgn, 8, 1.0), 3, params, vec![]);
    storage.crash_after(16);
    v2.save_with(&storage, &path).expect_err("armed save must crash");
    assert_eq!(storage.crashes(), 1);

    // The bundle on disk is still the complete first version.
    let back = ModelFile::load_with(&storage, &path).expect("previous version intact");
    let id = back.params.lookup("w").unwrap();
    assert_eq!(back.params.value(id).get(0, 0), 1.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_model_diverges_with_typed_report() {
    // Synthetic loss spike: every parameter is NaN, so every step is
    // poisoned and a small retry budget must trip the watchdog.
    let ds = tiny_dataset(2);
    let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 2);
    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        for v in store.value_mut(id).data_mut() {
            *v = f32::NAN;
        }
    }
    let mut opt = Adam::new(1e-2);
    let runtime = PretrainRuntime {
        guard: GuardConfig { max_retries: 2, ..GuardConfig::default() },
        ..PretrainRuntime::default()
    };
    let err =
        pretrain_resumable(&mut enc, &head, &mut store, &mut opt, &ds.graph, &pcfg(), &runtime)
            .unwrap_err();
    match &err {
        CpdgError::Diverged(report) => {
            assert_eq!(report.consecutive_bad, 3);
            assert!(!report.last_loss.is_finite());
        }
        other => panic!("expected Diverged, got {other}"),
    }
    assert_eq!(err.exit_code(), 5, "divergence has its own exit code");
}
