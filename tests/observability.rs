//! Cross-crate observability integration: a fixed-seed mini CPDG pipeline
//! must leave behind a parseable provenance trail — `metrics.jsonl` records
//! for every pre-train/fine-tune epoch (with counter deltas) and a
//! `run.json` manifest whose counter totals reflect the hot paths that
//! actually ran. Parsing goes through `serde_json`, deliberately a
//! different JSON implementation than the hand-rolled writer in `cpdg-obs`.

use cpdg::core::chaos::{FaultHook, FaultKind, FaultPlan, FaultPoint, Trigger};
use cpdg::core::pipeline::{run_link_prediction, PipelineConfig};
use cpdg::core::wal::WalConfig;
use cpdg::core::ModelFile;
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor, MemorySnapshot};
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, SyntheticConfig};
use cpdg::obs::{Json, RunDir};
use cpdg::serve::{parse_line, Engine, EngineConfig};
use cpdg::tensor::{Matrix, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick(mut cfg: PipelineConfig) -> PipelineConfig {
    cfg.dim = 8;
    cfg.pretrain.epochs = 2;
    cfg.pretrain.batch_size = 100;
    cfg.pretrain.contrast_centers = 8;
    cfg.finetune.epochs = 1;
    cfg.finetune.batch_size = 100;
    cfg
}

/// One test drives the whole trail: metric sinks are process-global, so a
/// single test owning the run directory avoids cross-test interleaving.
#[test]
fn pipeline_leaves_a_parseable_provenance_trail() {
    let dir = std::env::temp_dir().join(format!("cpdg_obs_e2e_{}", std::process::id()));
    let ds = generate(
        &SyntheticConfig {
            n_events: 1200,
            ..SyntheticConfig::amazon_like(11)
        }
        .scaled(0.15),
    );
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    let cfg = quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(11));

    let res = {
        let run = RunDir::create(&dir).unwrap();
        let res = run_link_prediction(&split, &cfg, false);
        let mut manifest = Json::obj(vec![
            ("seed", Json::U64(11)),
            ("auc", Json::F64(res.auc as f64)),
        ]);
        manifest.push("counters", cpdg::obs::metrics::counters_json());
        manifest.push("spans", cpdg::obs::metrics::histograms_json());
        run.write_manifest(&manifest).unwrap();
        res
    };
    assert!(res.auc.is_finite());

    // run.json parses with serde_json and the hot-path counters all moved.
    let manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("run.json")).unwrap()).unwrap();
    assert_eq!(manifest["seed"], 11);
    for counter in [
        "matmul.dispatches",
        "matmul.flops",
        "sampler.batches",
        "sampler.queries",
        "memory.updates",
        "graph.index_lookups",
    ] {
        assert!(
            manifest["counters"][counter].as_u64().unwrap_or(0) > 0,
            "counter {counter} never moved: {}",
            manifest["counters"]
        );
    }
    assert!(
        manifest["spans"]["pretrain.step_us"]["count"]
            .as_u64()
            .unwrap_or(0)
            > 0,
        "{}",
        manifest["spans"]
    );

    // metrics.jsonl: every line parses; the expected per-epoch records are
    // present with loss values and counter deltas.
    let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
    let records: Vec<serde_json::Value> = metrics
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    let events = |name: &str| -> Vec<&serde_json::Value> {
        records.iter().filter(|r| r["event"] == name).collect()
    };
    let pretrain_epochs = events("pretrain_epoch");
    assert_eq!(pretrain_epochs.len(), cfg.pretrain.epochs, "{metrics}");
    for (i, e) in pretrain_epochs.iter().enumerate() {
        assert_eq!(e["epoch"].as_u64().unwrap(), i as u64);
        assert!(e["loss_total"].as_f64().unwrap().is_finite(), "{e}");
        assert!(e["d_matmul.dispatches"].as_u64().unwrap() > 0, "{e}");
    }
    assert!(!events("finetune_epoch").is_empty(), "{metrics}");
    let result = events("finetune_result");
    assert_eq!(result.len(), 1, "{metrics}");
    assert!(result[0]["auc"].as_f64().unwrap().is_finite());

    std::fs::remove_dir_all(&dir).ok();
}

/// Sharded `STATUS` aggregation, watched through a capture sink: after a
/// crash + merge-replay recovery at 4 shards, one breaker trip, and one
/// worker panic, the merged line must report per-shard breaker / queue /
/// WAL state while keeping the global fields *singular* — `breaker_trips`
/// reads the canonical replica (a lockstep bank would otherwise multiply
/// one logical trip by the shard count), `worker_panics` stays global
/// only, and per-shard event counts sum to the global one. Recovery's
/// structured log record is asserted through the additive capture sink.
#[test]
fn sharded_status_aggregates_without_double_counting() {
    const NODES: usize = 12;
    const DIM: usize = 8;
    const SHARDS: usize = 4;
    let model = {
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(17);
        let _enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
        let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", DIM);
        let states = Matrix::from_vec(NODES, DIM, vec![0.1; NODES * DIM]);
        ModelFile::new(
            cfg,
            NODES,
            store,
            vec![MemorySnapshot {
                states,
                progress: 1.0,
            }],
        )
    };
    let dir = std::env::temp_dir().join(format!("cpdg_obs_shard_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let exec = |engine: &Engine, line: &str| -> String {
        engine
            .execute(parse_line(line).expect("script line"))
            .render()
    };
    let config = EngineConfig {
        shards: SHARDS,
        ..EngineConfig::default()
    };

    // Ingest six events into per-shard WAL streams, then crash (drop — no
    // drain, no checkpoint).
    {
        let engine = Engine::from_model(&model, config.clone(), FaultHook::none());
        engine.open_wal(&dir, WalConfig::default()).unwrap();
        for i in 0..6u32 {
            let line = format!("EVENT {} {} {}.0", i % 6, (i + 1) % 6, i + 1);
            assert!(exec(&engine, &line).starts_with("OK "), "{line}");
        }
    }

    let cap = cpdg::obs::capture();
    // Recover under a plan that fails every inference: threshold 3 trips
    // the replicated breaker bank exactly once (logically).
    let plan = FaultPlan::new(29).with(
        FaultPoint::ServeInfer,
        FaultKind::Transient,
        Trigger::Every { k: 1 },
    );
    let engine = Engine::from_model(&model, config, FaultHook::install(&plan));
    engine.open_wal(&dir, WalConfig::default()).unwrap();
    assert!(
        cap.any_message_contains("sharded WAL recovery complete"),
        "recovery must log through the sinks: {:?}",
        cap.records_for("serve")
    );
    for i in 0..3u32 {
        let r = exec(&engine, &format!("EMB {i} 9.0"));
        assert!(r.starts_with("DEGRADED "), "faulted inference {i}: {r}");
    }
    engine.note_worker_panic();

    let status = exec(&engine, "STATUS");
    for key in [
        " shards=4",
        " breaker=open",
        " breaker_trips=1",
        " worker_panics=1",
        " wal=1",
        " recovered_replayed=6",
        " wal_next_index=6",
    ] {
        assert!(status.contains(key), "missing {key:?} in {status}");
    }
    for k in 0..SHARDS {
        for key in [
            format!("shard{k}.breaker=open"),
            format!("shard{k}.breaker_trips=1"),
            format!("shard{k}.queue_depth=0"),
        ] {
            assert!(status.contains(&key), "missing {key:?} in {status}");
        }
    }
    // No double counting: `worker_panics` has no per-shard variant (the
    // pool supervisor is global), and the global breaker fields read the
    // canonical replica instead of summing the lockstep bank.
    assert_eq!(
        status.matches("worker_panics=").count(),
        1,
        "worker_panics must appear exactly once: {status}"
    );
    assert!(
        !status.contains("breaker_trips=4"),
        "lockstep replicas were summed: {status}"
    );
    // Per-shard applied-event counts partition the global count.
    let field = |key: &str| -> u64 {
        let at = status
            .find(key)
            .unwrap_or_else(|| panic!("missing {key:?} in {status}"))
            + key.len();
        status[at..]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let per_shard: u64 = (0..SHARDS)
        .map(|k| field(&format!("shard{k}.events=")))
        .sum();
    assert_eq!(
        per_shard,
        field(" events="),
        "shard events must sum to the global count"
    );
    let replayed: u64 = (0..SHARDS)
        .map(|k| field(&format!("shard{k}.replayed=")))
        .sum();
    assert_eq!(replayed, 6, "all six events replayed across the shards");

    std::fs::remove_dir_all(&dir).ok();
}
