//! Cross-crate observability integration: a fixed-seed mini CPDG pipeline
//! must leave behind a parseable provenance trail — `metrics.jsonl` records
//! for every pre-train/fine-tune epoch (with counter deltas) and a
//! `run.json` manifest whose counter totals reflect the hot paths that
//! actually ran. Parsing goes through `serde_json`, deliberately a
//! different JSON implementation than the hand-rolled writer in `cpdg-obs`.

use cpdg::core::pipeline::{run_link_prediction, PipelineConfig};
use cpdg::dgnn::EncoderKind;
use cpdg::graph::split::time_transfer;
use cpdg::graph::{generate, SyntheticConfig};
use cpdg::obs::{Json, RunDir};

fn quick(mut cfg: PipelineConfig) -> PipelineConfig {
    cfg.dim = 8;
    cfg.pretrain.epochs = 2;
    cfg.pretrain.batch_size = 100;
    cfg.pretrain.contrast_centers = 8;
    cfg.finetune.epochs = 1;
    cfg.finetune.batch_size = 100;
    cfg
}

/// One test drives the whole trail: metric sinks are process-global, so a
/// single test owning the run directory avoids cross-test interleaving.
#[test]
fn pipeline_leaves_a_parseable_provenance_trail() {
    let dir = std::env::temp_dir().join(format!("cpdg_obs_e2e_{}", std::process::id()));
    let ds = generate(
        &SyntheticConfig { n_events: 1200, ..SyntheticConfig::amazon_like(11) }.scaled(0.15),
    );
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    let cfg = quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(11));

    let res = {
        let run = RunDir::create(&dir).unwrap();
        let res = run_link_prediction(&split, &cfg, false);
        let mut manifest = Json::obj(vec![
            ("seed", Json::U64(11)),
            ("auc", Json::F64(res.auc as f64)),
        ]);
        manifest.push("counters", cpdg::obs::metrics::counters_json());
        manifest.push("spans", cpdg::obs::metrics::histograms_json());
        run.write_manifest(&manifest).unwrap();
        res
    };
    assert!(res.auc.is_finite());

    // run.json parses with serde_json and the hot-path counters all moved.
    let manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("run.json")).unwrap()).unwrap();
    assert_eq!(manifest["seed"], 11);
    for counter in [
        "matmul.dispatches",
        "matmul.flops",
        "sampler.batches",
        "sampler.queries",
        "memory.updates",
        "graph.index_lookups",
    ] {
        assert!(
            manifest["counters"][counter].as_u64().unwrap_or(0) > 0,
            "counter {counter} never moved: {}",
            manifest["counters"]
        );
    }
    assert!(
        manifest["spans"]["pretrain.step_us"]["count"].as_u64().unwrap_or(0) > 0,
        "{}",
        manifest["spans"]
    );

    // metrics.jsonl: every line parses; the expected per-epoch records are
    // present with loss values and counter deltas.
    let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
    let records: Vec<serde_json::Value> =
        metrics.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
    let events = |name: &str| -> Vec<&serde_json::Value> {
        records.iter().filter(|r| r["event"] == name).collect()
    };
    let pretrain_epochs = events("pretrain_epoch");
    assert_eq!(pretrain_epochs.len(), cfg.pretrain.epochs, "{metrics}");
    for (i, e) in pretrain_epochs.iter().enumerate() {
        assert_eq!(e["epoch"].as_u64().unwrap(), i as u64);
        assert!(e["loss_total"].as_f64().unwrap().is_finite(), "{e}");
        assert!(e["d_matmul.dispatches"].as_u64().unwrap() > 0, "{e}");
    }
    assert!(!events("finetune_epoch").is_empty(), "{metrics}");
    let result = events("finetune_result");
    assert_eq!(result.len(), 1, "{metrics}");
    assert!(result[0]["auc"].as_f64().unwrap().is_finite());

    std::fs::remove_dir_all(&dir).ok();
}
