//! Cross-crate persistence and transfer-of-weights tests: parameter
//! serialisation round trips, pre-trained-weight hand-off, and memory
//! checkpoint integrity.

use cpdg::core::pretrain::{pretrain, PretrainConfig};
use cpdg::dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor};
use cpdg::graph::loader::{load_jodie_csv, write_jodie_csv};
use cpdg::graph::{generate, SyntheticConfig};
use cpdg::tensor::{optim::Adam, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny() -> cpdg::graph::SyntheticDataset {
    generate(&SyntheticConfig { n_events: 800, ..SyntheticConfig::amazon_like(0) }.scaled(0.12))
}

#[test]
fn pretrained_params_round_trip_through_json() {
    let ds = tiny();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
    let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 8);
    let mut opt = Adam::new(1e-2);
    pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph,
             &PretrainConfig { epochs: 1, batch_size: 150, ..Default::default() });

    let json = store.to_json();
    let restored = ParamStore::from_json(&json).expect("valid json");
    assert_eq!(restored.len(), store.len());
    assert_eq!(restored.scalar_count(), store.scalar_count());
    for id in store.ids() {
        let name = store.name(id);
        let rid = restored.lookup(name).expect("name preserved");
        assert_eq!(restored.value(rid), store.value(id), "{name}");
    }
}

#[test]
fn load_matching_transfers_encoder_but_not_new_head() {
    let ds = tiny();
    let mut pre_store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
    let mut enc = DgnnEncoder::new(&mut pre_store, &mut rng, "enc", ds.graph.num_nodes(), dcfg.clone());
    let head = LinkPredictor::new(&mut pre_store, &mut rng, "pretext_head", 8);
    let mut opt = Adam::new(1e-2);
    pretrain(&mut enc, &head, &mut pre_store, &mut opt, &ds.graph,
             &PretrainConfig { epochs: 1, batch_size: 150, ..Default::default() });

    // A downstream model with the same encoder names plus a fresh head.
    let mut down_store = ParamStore::new();
    let mut rng2 = StdRng::seed_from_u64(99);
    let _enc2 = DgnnEncoder::new(&mut down_store, &mut rng2, "enc", ds.graph.num_nodes(), dcfg);
    let _new_head = LinkPredictor::new(&mut down_store, &mut rng2, "downstream_head", 8);

    let copied = down_store.load_matching(&pre_store);
    assert!(copied > 0, "encoder weights must transfer");
    // Every copied name exists in both; the fresh head names do not match.
    assert!(down_store.lookup("downstream_head.0.weight").is_some());
    assert!(pre_store.lookup("downstream_head.0.weight").is_none());
}

#[test]
fn memory_checkpoints_are_ordered_and_nontrivial() {
    let ds = tiny();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
    let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 8);
    let mut opt = Adam::new(1e-2);
    let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph,
                       &PretrainConfig { epochs: 2, batch_size: 120, n_checkpoints: 6, ..Default::default() });
    assert_eq!(out.checkpoints.len(), 6);
    for w in out.checkpoints.windows(2) {
        assert!(w[0].progress <= w[1].progress);
    }
    // Checkpoints must not all be identical (memory evolves).
    let first = &out.checkpoints[0].states;
    let last = &out.checkpoints[5].states;
    assert!(first.max_abs_diff(last) > 1e-6);
    // The final checkpoint equals the encoder's final memory.
    assert_eq!(last, enc.memory.states());
}

#[test]
fn synthetic_dataset_round_trips_through_jodie_csv() {
    let ds = generate(
        &SyntheticConfig { n_events: 600, ..SyntheticConfig::wikipedia_like(3) }.scaled(0.12),
    );
    let mut buf = Vec::new();
    write_jodie_csv(&ds.graph, ds.num_users, &mut buf).expect("write");
    let loaded = load_jodie_csv(buf.as_slice()).expect("load");
    assert_eq!(loaded.graph.num_events(), ds.graph.num_events());
    let pos_before = ds.graph.labels().iter().filter(|l| l.label).count();
    let pos_after = loaded.graph.labels().iter().filter(|l| l.label).count();
    assert_eq!(pos_before, pos_after, "positive labels preserved");
    // Event times and endpoints preserved (ids may be re-compacted but the
    // synthetic generator already emits dense ids, so they match exactly).
    for (a, b) in ds.graph.events().iter().zip(loaded.graph.events()) {
        assert_eq!(a.t, b.t);
        assert_eq!(a.src, b.src);
    }
}

#[test]
fn loaded_csv_dataset_trains_end_to_end() {
    use cpdg::core::pipeline::{run_link_prediction, PipelineConfig};
    use cpdg::graph::split::time_transfer;

    let ds = generate(&SyntheticConfig { n_events: 700, ..SyntheticConfig::mooc_like(4) }.scaled(0.12));
    let mut buf = Vec::new();
    write_jodie_csv(&ds.graph, ds.num_users, &mut buf).expect("write");
    let loaded = load_jodie_csv(buf.as_slice()).expect("load");

    let split = time_transfer(&loaded.graph, 0.6).expect("split");
    let mut cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(4);
    cfg.dim = 8;
    cfg.pretrain.epochs = 1;
    cfg.finetune.epochs = 1;
    let res = run_link_prediction(&split, &cfg, false);
    assert!(res.auc.is_finite());
}
