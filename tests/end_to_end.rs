//! Cross-crate integration tests: the full pre-train → transfer →
//! fine-tune → evaluate pipelines over every transfer setting and task.

use cpdg::core::pipeline::{
    run_link_prediction, run_node_classification, unseen_nodes, PipelineConfig,
};
use cpdg::core::{EieFusion, FinetuneStrategy};
use cpdg::dgnn::EncoderKind;
use cpdg::graph::split::{field_transfer, time_field_transfer, time_transfer};
use cpdg::graph::{generate, SyntheticConfig, TransferSplit};

fn quick(mut cfg: PipelineConfig) -> PipelineConfig {
    cfg.dim = 8;
    cfg.pretrain.epochs = 1;
    cfg.pretrain.batch_size = 100;
    cfg.pretrain.contrast_centers = 8;
    cfg.finetune.epochs = 1;
    cfg.finetune.batch_size = 100;
    cfg
}

fn amazon_like(seed: u64) -> cpdg::graph::SyntheticDataset {
    generate(&SyntheticConfig { n_events: 1200, ..SyntheticConfig::amazon_like(seed) }.scaled(0.15))
}

#[test]
fn all_three_transfer_settings_produce_valid_metrics() {
    let ds = amazon_like(0);
    let splits: Vec<TransferSplit> = vec![
        time_transfer(&ds.graph, 0.6).unwrap(),
        field_transfer(&ds.graph, &[2], 0).unwrap(),
        time_field_transfer(&ds.graph, &[2], 0, 0.6).unwrap(),
    ];
    let cfg = quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(0));
    for split in &splits {
        let res = run_link_prediction(split, &cfg, false);
        assert!((0.0..=1.0).contains(&res.auc), "auc {}", res.auc);
        assert!((0.0..=1.0 + 1e-6).contains(&res.ap), "ap {}", res.ap);
        assert!(res.val_auc.is_finite());
    }
}

#[test]
fn every_encoder_backbone_completes_the_cpdg_pipeline() {
    let ds = amazon_like(1);
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    for kind in EncoderKind::all() {
        let cfg = quick(PipelineConfig::cpdg(kind).with_seed(1));
        let res = run_link_prediction(&split, &cfg, false);
        assert!(res.auc.is_finite(), "{kind:?}");
    }
}

#[test]
fn every_eie_fusion_completes() {
    let ds = amazon_like(2);
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    for fusion in EieFusion::all() {
        let mut cfg = quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(2));
        cfg.finetune.strategy = FinetuneStrategy::Eie(fusion);
        let res = run_link_prediction(&split, &cfg, false);
        assert!(res.auc.is_finite(), "{fusion:?}");
    }
}

#[test]
fn inductive_evaluation_restricts_to_unseen_nodes() {
    let ds = amazon_like(3);
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    let unseen = unseen_nodes(&split);
    // Field/time splits on synthetic data always surface some new nodes.
    assert!(!unseen.is_empty(), "expected unseen nodes in the downstream period");
    let cfg = quick(PipelineConfig::cpdg(EncoderKind::Jodie).with_seed(3));
    let res = run_link_prediction(&split, &cfg, true);
    assert!(res.auc.is_finite());
}

#[test]
fn node_classification_pipeline_on_labelled_stream() {
    let ds = generate(
        &SyntheticConfig { n_events: 1500, ..SyntheticConfig::wikipedia_like(4) }.scaled(0.2),
    );
    assert!(!ds.graph.labels().is_empty());
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    let cfg = quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(4));
    let auc = run_node_classification(&split, &cfg);
    assert!((0.0..=1.0).contains(&auc));
}

#[test]
fn pipeline_is_deterministic_under_seed() {
    let ds = amazon_like(5);
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    let cfg = quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(5));
    let a = run_link_prediction(&split, &cfg, false);
    let b = run_link_prediction(&split, &cfg, false);
    assert_eq!(a.auc, b.auc, "same seed must reproduce exactly");
    assert_eq!(a.ap, b.ap);
}

#[test]
fn different_seeds_differ() {
    let ds = amazon_like(6);
    let split = time_transfer(&ds.graph, 0.6).unwrap();
    let a = run_link_prediction(&split, &quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(1)), false);
    let b = run_link_prediction(&split, &quick(PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(2)), false);
    assert_ne!(a.auc, b.auc, "different seeds should (almost surely) differ");
}

#[test]
fn vanilla_mode_skips_contrastive_terms() {
    // Vanilla = Eq. 17 with both contrast weights zeroed: verify through
    // the pretrainer's loss breakdown.
    use cpdg::core::pretrain::{pretrain, PretrainConfig};
    use cpdg::dgnn::{DgnnConfig, DgnnEncoder, LinkPredictor};
    use cpdg::tensor::{optim::Adam, ParamStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let ds = amazon_like(7);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
    let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 8);
    let mut opt = Adam::new(1e-2);
    let mut pcfg = PretrainConfig { epochs: 1, batch_size: 150, ..Default::default() };
    pcfg.objective.use_tc = false;
    pcfg.objective.use_sc = false;
    let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &pcfg);
    assert_eq!(out.epoch_losses[0].tc, 0.0);
    assert_eq!(out.epoch_losses[0].sc, 0.0);
    assert!(out.epoch_losses[0].tlp > 0.0);
}
