#!/usr/bin/env bash
# Records the serving-latency traffic replay into BENCH_serve_load.json at
# the repo root: ~1M mixed ops (~10% EVENT / ~90% EMB+SCORE) through the
# in-process engine with request coalescing (--batch 8) and the embedding
# cache on, reporting p50/p99 latency, QPS, and cache hit rate. Run on a
# quiet machine; pass extra serve_load flags after the output path.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_serve_load.json}"
shift || true
cargo run --release -p cpdg-bench --bin serve_load -- --out "$OUT" "$@"
echo
echo "=== $OUT ==="
cat "$OUT"
