#!/usr/bin/env bash
# Records the sequential-vs-parallel speedup of the hot paths into
# BENCH_parallel.json at the repo root. Run on a quiet machine; the
# parallel numbers use every available core unless CPDG_THREADS is set.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_parallel.json}"
cargo run --release -p cpdg-bench --bin parallel_bench -- --out "$OUT"
echo
echo "=== $OUT ==="
cat "$OUT"
