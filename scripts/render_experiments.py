#!/usr/bin/env python3
"""Renders the measured-results appendix of EXPERIMENTS.md from the JSON
dumps the bench binaries leave under results/.

Usage: python3 scripts/render_experiments.py >> EXPERIMENTS.md
"""
import json
import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")

ORDER = [
    ("table5_T", "Table V — Time Transfer"),
    ("table5_F", "Table V — Field Transfer"),
    ("table5_T_F", "Table V — Time+Field Transfer"),
    ("table7", "Table VII — dynamic node classification"),
    ("table8_T", "Table VIII — encoder generalisation (Time)"),
    ("table8_F", "Table VIII — encoder generalisation (Field)"),
    ("table8_T_F", "Table VIII — encoder generalisation (Time+Field)"),
    ("table9", "Table IX — inductive study"),
    ("table10", "Table X — fine-tuning strategies"),
    ("fig5", "Figure 5 — module ablation"),
    ("fig6", "Figure 6 — β sweep"),
    ("ablation", "Extra design-choice ablations"),
    ("scaling_graph_size", "Scaling — sampler vs graph size"),
    ("scaling_eta_k", "Scaling — sampler vs (η, k)"),
    ("scaling_readout", "Scaling — readout linearity"),
    ("shape_check", "Shape check — Spearman ρ vs paper Table V"),
]


def render(slug: str, heading: str) -> str:
    path = os.path.join(RESULTS, f"{slug}.json")
    if not os.path.exists(path):
        return ""
    with open(path) as f:
        data = json.load(f)
    out = [f"\n### {heading}\n", f"*{data['title']}*\n"]
    header = data["header"]
    out.append("| " + " | ".join(header) + " |")
    out.append("|" + "---|" * len(header))
    for row in data["rows"]:
        if all(c == "--" for c in row):
            continue
        out.append("| " + " | ".join(c if c else " " for c in row) + " |")
    return "\n".join(out) + "\n"


def main() -> int:
    chunks = [render(slug, heading) for slug, heading in ORDER]
    body = "".join(c for c in chunks if c)
    if not body:
        print("no results found — run the bench binaries first", file=sys.stderr)
        return 1
    print("\n---\n\n## Measured results (auto-rendered from results/*.json)\n")
    print(body)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
