//! Self-supervised *dynamic* baselines: DDGCL and SelfRGNN (§V-B).
//!
//! Both pre-train a memory-based DGNN encoder with their own objective and
//! are then fully fine-tuned like every other method.
//!
//! **DDGCL** contrasts two nearby temporal views of the same node identity
//! with a time-dependent similarity critic and a GAN-type (logistic) loss.
//! Here the "earlier view" of node `i` at event time `t` is its memory
//! state `s_i^{t−}` (its representation as of its previous interaction) and
//! the "current view" is the fresh temporal embedding `z_i^t`; the critic
//! is bilinear with a learnable time-decay gate `ψ(Δt) = σ(−λΔt̂)`.
//!
//! **SelfRGNN** (Riemannian self-contrastive learning with time-varying
//! curvature) is simplified to its active ingredient: a *negative-free*
//! curvature-reweighted self-consistency loss
//! `L = mean_i σ(−κΔt̂_i)·‖z_i^t − s_i^{t−}‖²` with learnable κ. Being
//! negative-free, the objective can collapse (κ → ∞ zeroes the loss
//! without shaping representations) — which honestly reproduces the
//! method's weak and occasionally unstable behaviour in the paper's
//! Tables V and VII (including the NaN entry).

use cpdg_dgnn::{DgnnEncoder};
use cpdg_graph::{DynamicGraph, NodeId, Timestamp};
use cpdg_tensor::nn::init::xavier_uniform;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{Matrix, ParamId, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::static_train::rows_dot;

/// Hyper-parameters of the dynamic self-supervised pre-trainers.
#[derive(Debug, Clone)]
pub struct DynSslConfig {
    /// Events per batch.
    pub batch_size: usize,
    /// Passes over the stream.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Gradient clip.
    pub grad_clip: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for DynSslConfig {
    fn default() -> Self {
        Self { batch_size: 200, epochs: 1, lr: 2e-2, grad_clip: 5.0, seed: 0 }
    }
}

/// DDGCL's learnable pieces: bilinear critic + time-decay rate.
pub struct DdgclCritic {
    w: ParamId,
    lambda: ParamId,
}

impl DdgclCritic {
    /// Registers the critic for `dim`-wide states.
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Self {
            w: store.register(format!("{name}.w"), xavier_uniform(rng, dim, dim)),
            lambda: store.register(format!("{name}.lambda"), Matrix::from_vec(1, 1, vec![0.1])),
        }
    }
}

/// DDGCL pre-training over `graph`. Returns per-epoch mean losses.
pub fn pretrain_ddgcl(
    encoder: &mut DgnnEncoder,
    critic: &DdgclCritic,
    store: &mut ParamStore,
    opt: &mut Adam,
    graph: &DynamicGraph,
    cfg: &DynSslConfig,
) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let time_scale = encoder.config().time_scale;
    let active: Vec<NodeId> = graph.active_nodes();
    let mut out = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        encoder.reset_state();
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in graph.events().chunks(cfg.batch_size.max(1)) {
            let mut tape = Tape::new();
            let ctx = encoder.apply_pending(&mut tape, store, graph);
            let srcs: Vec<NodeId> = chunk.iter().map(|e| e.src).collect();
            let times: Vec<Timestamp> = chunk.iter().map(|e| e.t).collect();
            let z = encoder.embed_many(&mut tape, store, &ctx, graph, &srcs, &times);

            // Earlier view: the node's own memory state; negative view:
            // a random other node's state.
            let earlier = tape.constant(encoder.node_repr_values(store, &srcs));
            let others: Vec<NodeId> = srcs
                .iter()
                .map(|_| active[rng.random_range(0..active.len())])
                .collect();
            let other_view = tape.constant(encoder.node_repr_values(store, &others));

            // Time-dependent gate ψ(Δt) = σ(−λ·Δt̂).
            let dts: Vec<f32> = srcs
                .iter()
                .zip(&times)
                .map(|(&n, &t)| ((t - encoder.memory.last_update(n)) / time_scale) as f32)
                .collect();
            let dt = tape.constant(Matrix::col_vec(dts));
            let lambda = tape.param(store, critic.lambda);
            let scaled = tape.matmul(dt, lambda);
            let neg_scaled = tape.scale(scaled, -1.0);
            let gate = tape.sigmoid(neg_scaled);

            // Bilinear critic, gated.
            let w = tape.param(store, critic.w);
            let zw = tape.matmul(z, w);
            let pos_raw = rows_dot(&mut tape, zw, earlier);
            let neg_raw = rows_dot(&mut tape, zw, other_view);
            let pos = tape.mul(pos_raw, gate);
            let neg = tape.mul(neg_raw, gate);

            let loss = cpdg_tensor::loss::link_prediction_loss(&mut tape, pos, neg);
            total += f64::from(tape.value(loss).get(0, 0));
            batches += 1;
            let grads = tape.backward(loss);
            let mut pg = tape.param_grads(&grads);
            clip_global_norm(&mut pg, cfg.grad_clip);
            opt.step(store, &pg);
            encoder.commit(&tape, ctx, chunk);
        }
        out.push((total / batches.max(1) as f64) as f32);
    }
    out
}

/// SelfRGNN's learnable curvature.
pub struct SelfRgnnCurvature {
    kappa: ParamId,
}

impl SelfRgnnCurvature {
    /// Registers the curvature scalar.
    pub fn new(store: &mut ParamStore, name: &str) -> Self {
        Self { kappa: store.register(format!("{name}.kappa"), Matrix::from_vec(1, 1, vec![0.1])) }
    }
}

/// SelfRGNN pre-training over `graph`. Returns per-epoch mean losses.
pub fn pretrain_selfrgnn(
    encoder: &mut DgnnEncoder,
    curv: &SelfRgnnCurvature,
    store: &mut ParamStore,
    opt: &mut Adam,
    graph: &DynamicGraph,
    cfg: &DynSslConfig,
) -> Vec<f32> {
    let time_scale = encoder.config().time_scale;
    let mut out = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        encoder.reset_state();
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in graph.events().chunks(cfg.batch_size.max(1)) {
            let mut tape = Tape::new();
            let ctx = encoder.apply_pending(&mut tape, store, graph);
            let srcs: Vec<NodeId> = chunk.iter().map(|e| e.src).collect();
            let times: Vec<Timestamp> = chunk.iter().map(|e| e.t).collect();
            let z = encoder.embed_many(&mut tape, store, &ctx, graph, &srcs, &times);
            let earlier = tape.constant(encoder.node_repr_values(store, &srcs));

            let dts: Vec<f32> = srcs
                .iter()
                .zip(&times)
                .map(|(&n, &t)| ((t - encoder.memory.last_update(n)) / time_scale) as f32)
                .collect();
            let dt = tape.constant(Matrix::col_vec(dts));
            let kappa = tape.param(store, curv.kappa);
            let scaled = tape.matmul(dt, kappa);
            let neg_scaled = tape.scale(scaled, -1.0);
            let weight = tape.sigmoid(neg_scaled);

            let sq = tape.sq_dist_rows(z, earlier);
            let weighted = tape.mul(weight, sq);
            let loss = tape.mean_all(weighted);
            total += f64::from(tape.value(loss).get(0, 0));
            batches += 1;
            let grads = tape.backward(loss);
            let mut pg = tape.param_grads(&grads);
            clip_global_norm(&mut pg, cfg.grad_clip);
            opt.step(store, &pg);
            encoder.commit(&tape, ctx, chunk);
        }
        out.push((total / batches.max(1) as f64) as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_dgnn::{DgnnConfig, EncoderKind};
    use cpdg_graph::{generate, SyntheticConfig};

    fn setup(seed: u64) -> (ParamStore, DgnnEncoder, DynamicGraph) {
        let ds = generate(&SyntheticConfig { n_events: 600, ..SyntheticConfig::amazon_like(seed) }.scaled(0.1));
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
        let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
        (store, enc, ds.graph)
    }

    #[test]
    fn ddgcl_pretraining_descends() {
        let (mut store, mut enc, graph) = setup(0);
        let mut rng = StdRng::seed_from_u64(0);
        let critic = DdgclCritic::new(&mut store, &mut rng, "critic", 8);
        let mut opt = Adam::new(2e-2);
        let cfg = DynSslConfig { epochs: 3, batch_size: 100, ..Default::default() };
        let losses = pretrain_ddgcl(&mut enc, &critic, &mut store, &mut opt, &graph, &cfg);
        assert_eq!(losses.len(), 3);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses.last().unwrap() <= losses.first().unwrap(), "{losses:?}");
    }

    #[test]
    fn selfrgnn_pretraining_runs_finite() {
        let (mut store, mut enc, graph) = setup(1);
        let curv = SelfRgnnCurvature::new(&mut store, "curv");
        let mut opt = Adam::new(2e-2);
        let cfg = DynSslConfig { epochs: 2, batch_size: 100, ..Default::default() };
        let losses = pretrain_selfrgnn(&mut enc, &curv, &mut store, &mut opt, &graph, &cfg);
        assert!(losses.iter().all(|l| l.is_finite()), "{losses:?}");
    }

    #[test]
    fn ddgcl_updates_encoder_memory() {
        let (mut store, mut enc, graph) = setup(2);
        let mut rng = StdRng::seed_from_u64(2);
        let critic = DdgclCritic::new(&mut store, &mut rng, "critic", 8);
        let mut opt = Adam::new(1e-2);
        let cfg = DynSslConfig { epochs: 1, batch_size: 100, ..Default::default() };
        pretrain_ddgcl(&mut enc, &critic, &mut store, &mut opt, &graph, &cfg);
        assert!(enc.memory.rms() > 0.0);
    }
}
