//! Static-graph GNN substrate for the paper's five static baselines
//! (GraphSAGE, GAT, GIN, DGI, GPT-GNN — §V-B).
//!
//! These methods see the dynamic graph as a time-collapsed snapshot:
//! [`StaticGraph`] deduplicates the temporal multigraph into plain
//! adjacency, and [`StaticGnn`] is a two-layer sampled GNN over learnable
//! node features with the aggregator of the chosen method. Ignoring time is
//! precisely why the paper finds these baselines weak on dynamic tasks —
//! the substrate reproduces that honestly.

use cpdg_graph::{DynamicGraph, NodeId};
use cpdg_tensor::nn::{init, Activation, Linear, Mlp, NeighborAttention};
use cpdg_tensor::{Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::{Rng, RngExt};

/// A time-collapsed snapshot of a dynamic graph.
#[derive(Debug, Clone)]
pub struct StaticGraph {
    adj: Vec<Vec<NodeId>>,
}

impl StaticGraph {
    /// Collapses `graph`: each node's neighbour list holds distinct
    /// neighbours over all time.
    pub fn from_dynamic(graph: &DynamicGraph) -> Self {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); graph.num_nodes()];
        for (node, list) in adj.iter_mut().enumerate() {
            let mut ns: Vec<NodeId> =
                graph.neighbors_all(node as NodeId).iter().map(|e| e.neighbor).collect();
            ns.sort_unstable();
            ns.dedup();
            *list = ns;
        }
        Self { adj }
    }

    /// Number of nodes in the universe.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// All distinct neighbours of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node as usize]
    }

    /// Uniformly samples up to `n` distinct neighbours. Isolated nodes
    /// return `[node]` (self-loop fallback) so aggregation is never empty.
    pub fn sample_neighbors(&self, node: NodeId, n: usize, rng: &mut StdRng) -> Vec<NodeId> {
        let ns = &self.adj[node as usize];
        if ns.is_empty() {
            return vec![node];
        }
        if ns.len() <= n {
            return ns.clone();
        }
        // Partial Fisher–Yates over an index range.
        let mut idx: Vec<usize> = (0..ns.len()).collect();
        for i in 0..n {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..n].iter().map(|&i| ns[i]).collect()
    }
}

/// Which aggregator the two GNN layers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticKind {
    /// GraphSAGE: mean neighbour aggregation + concat + linear.
    Sage,
    /// GAT: attention over neighbours.
    Gat,
    /// GIN: sum aggregation with a learnable ε and MLP.
    Gin,
}

impl StaticKind {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            StaticKind::Sage => "GraphSAGE",
            StaticKind::Gat => "GAT",
            StaticKind::Gin => "GIN",
        }
    }
}

enum LayerModule {
    Sage(Linear),
    Gat(NeighborAttention),
    Gin { mlp: Mlp, eps: ParamId },
}

struct Layer {
    module: LayerModule,
}

impl Layer {
    fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        kind: StaticKind,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let module = match kind {
            StaticKind::Sage => {
                LayerModule::Sage(Linear::new(store, rng, name, 2 * in_dim, out_dim, true))
            }
            StaticKind::Gat => LayerModule::Gat(NeighborAttention::new(
                store, rng, name, in_dim, in_dim, out_dim, out_dim,
            )),
            StaticKind::Gin => LayerModule::Gin {
                mlp: Mlp::new(store, rng, name, &[in_dim, out_dim, out_dim], Activation::Relu),
                eps: store.register(format!("{name}.eps"), Matrix::zeros(1, 1)),
            },
        };
        Self { module }
    }

    /// Combines a `1 × in` self feature with `n × in` neighbour features.
    fn forward(&self, tape: &mut Tape, store: &ParamStore, own: Var, nbrs: Var) -> Var {
        match &self.module {
            LayerModule::Sage(lin) => {
                let mean = tape.mean_rows(nbrs);
                let cat = tape.concat_cols(own, mean);
                let h = lin.forward(tape, store, cat);
                tape.relu(h)
            }
            LayerModule::Gat(att) => {
                let h = att.forward_one(tape, store, own, nbrs);
                tape.relu(h)
            }
            LayerModule::Gin { mlp, eps } => {
                let n = tape.value(nbrs).rows();
                let mean = tape.mean_rows(nbrs);
                let sum = tape.scale(mean, n as f32);
                let e = tape.param(store, *eps);
                let gate = tape.add_scalar(e, 1.0); // 1 + ε
                let scaled_self = tape.matmul(gate, own); // (1×1)·(1×d)
                let agg = tape.add(scaled_self, sum);
                mlp.forward(tape, store, agg)
            }
        }
    }
}

/// Two-layer sampled static GNN over learnable node features.
pub struct StaticGnn {
    kind: StaticKind,
    features: ParamId,
    layer1: Layer,
    layer2: Layer,
    dim: usize,
    /// Neighbours sampled per hop.
    pub fanout: usize,
}

impl StaticGnn {
    /// Registers a new model under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        kind: StaticKind,
        num_nodes: usize,
        dim: usize,
    ) -> Self {
        let features =
            store.register(format!("{name}.features"), init::uniform(rng, num_nodes, dim, 0.1));
        let layer1 = Layer::new(store, rng, &format!("{name}.l1"), kind, dim, dim);
        let layer2 = Layer::new(store, rng, &format!("{name}.l2"), kind, dim, dim);
        Self { kind, features, layer1, layer2, dim, fanout: 6 }
    }

    /// Aggregator kind.
    pub fn kind(&self) -> StaticKind {
        self.kind
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn feat(&self, tape: &mut Tape, store: &ParamStore, nodes: &[NodeId]) -> Var {
        let table = tape.param(store, self.features);
        let idx: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();
        tape.gather_rows(table, &idx)
    }

    /// Layer-1 representation of `node` from raw features.
    fn hop1(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sg: &StaticGraph,
        node: NodeId,
        rng: &mut StdRng,
    ) -> Var {
        let own = self.feat(tape, store, &[node]);
        let nbrs = sg.sample_neighbors(node, self.fanout, rng);
        let nbr_feats = self.feat(tape, store, &nbrs);
        self.layer1.forward(tape, store, own, nbr_feats)
    }

    /// Two-layer embedding of one node (`1 × dim`).
    pub fn embed_one(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sg: &StaticGraph,
        node: NodeId,
        rng: &mut StdRng,
    ) -> Var {
        let own_h1 = self.hop1(tape, store, sg, node, rng);
        let nbrs = sg.sample_neighbors(node, self.fanout, rng);
        let nbr_h1: Vec<Var> =
            nbrs.iter().map(|&n| self.hop1(tape, store, sg, n, rng)).collect();
        let nbr_mat = tape.stack_rows(&nbr_h1);
        self.layer2.forward(tape, store, own_h1, nbr_mat)
    }

    /// Two-layer embeddings of many nodes (`m × dim`).
    pub fn embed_many(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sg: &StaticGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        assert!(!nodes.is_empty(), "embed_many: empty node set");
        let rows: Vec<Var> =
            nodes.iter().map(|&n| self.embed_one(tape, store, sg, n, rng)).collect();
        tape.stack_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_graph::graph_from_triples;
    use rand::SeedableRng;

    fn sample_graph() -> DynamicGraph {
        graph_from_triples(
            6,
            &[(0, 1, 1.0), (0, 1, 2.0), (0, 2, 3.0), (1, 3, 4.0), (2, 4, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn static_graph_deduplicates() {
        let g = sample_graph();
        let sg = StaticGraph::from_dynamic(&g);
        assert_eq!(sg.neighbors(0), &[1, 2], "repeated (0,1) edges collapse");
        assert_eq!(sg.neighbors(5), &[] as &[NodeId]);
    }

    #[test]
    fn isolated_node_samples_itself() {
        let g = sample_graph();
        let sg = StaticGraph::from_dynamic(&g);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sg.sample_neighbors(5, 3, &mut rng), vec![5]);
    }

    #[test]
    fn sampling_is_bounded_and_distinct() {
        let g = sample_graph();
        let sg = StaticGraph::from_dynamic(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = sg.sample_neighbors(0, 1, &mut rng);
            assert_eq!(s.len(), 1);
            assert!(s[0] == 1 || s[0] == 2);
        }
    }

    #[test]
    fn all_kinds_embed_and_train() {
        let g = sample_graph();
        let sg = StaticGraph::from_dynamic(&g);
        for kind in [StaticKind::Sage, StaticKind::Gat, StaticKind::Gin] {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(2);
            let gnn = StaticGnn::new(&mut store, &mut rng, "g", kind, 6, 8);
            let mut tape = Tape::new();
            let mut srng = StdRng::seed_from_u64(3);
            let z = gnn.embed_many(&mut tape, &store, &sg, &[0, 1, 5], &mut srng);
            assert_eq!(tape.value(z).shape(), (3, 8), "{kind:?}");
            assert!(tape.value(z).all_finite());
            let loss = tape.mean_all(z);
            let grads = tape.backward(loss);
            assert!(!tape.param_grads(&grads).is_empty(), "{kind:?} trainable");
        }
    }

    #[test]
    fn different_nodes_different_embeddings() {
        let g = sample_graph();
        let sg = StaticGraph::from_dynamic(&g);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let gnn = StaticGnn::new(&mut store, &mut rng, "g", StaticKind::Sage, 6, 8);
        let mut tape = Tape::new();
        let mut srng = StdRng::seed_from_u64(5);
        let z = gnn.embed_many(&mut tape, &store, &sg, &[0, 3], &mut srng);
        let v = tape.value(z);
        assert!(v.row_matrix(0).max_abs_diff(&v.row_matrix(1)) > 1e-6);
    }

    #[test]
    fn kind_names() {
        assert_eq!(StaticKind::Sage.name(), "GraphSAGE");
        assert_eq!(StaticKind::Gin.name(), "GIN");
    }
}
