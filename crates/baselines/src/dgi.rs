//! DGI (Deep Graph Infomax) pre-training — §V-B.
//!
//! Maximises mutual information between node ("patch") representations and
//! a global graph summary: positive pairs are real node embeddings vs the
//! summary, negatives are corrupted embeddings (embeddings of shuffled
//! node identities, the standard row-shuffle corruption) vs the same
//! summary, discriminated by a bilinear critic.

use crate::static_gnn::{StaticGnn, StaticGraph};
use crate::static_train::{rows_dot, StaticTrainConfig};
use cpdg_graph::NodeId;
use cpdg_tensor::nn::init::xavier_uniform;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{ParamId, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::RngExt;

/// The DGI bilinear discriminator weight.
pub struct DgiDiscriminator {
    w: ParamId,
}

impl DgiDiscriminator {
    /// Registers the discriminator for `dim`-wide embeddings.
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Self { w: store.register(format!("{name}.w"), xavier_uniform(rng, dim, dim)) }
    }
}

/// Runs DGI pre-training on `(gnn, discriminator)` for `cfg.steps` steps;
/// returns the final loss.
#[allow(clippy::too_many_arguments)]
pub fn pretrain_dgi(
    gnn: &StaticGnn,
    disc: &DgiDiscriminator,
    store: &mut ParamStore,
    opt: &mut Adam,
    sg: &StaticGraph,
    active_nodes: &[NodeId],
    cfg: &StaticTrainConfig,
    rng: &mut StdRng,
) -> f32 {
    assert!(active_nodes.len() >= 2, "pretrain_dgi: need at least two active nodes");
    let mut last = 0.0;
    for _ in 0..cfg.steps {
        let batch: Vec<NodeId> = (0..cfg.batch_size)
            .map(|_| active_nodes[rng.random_range(0..active_nodes.len())])
            .collect();
        // Corruption: a shuffled identity for every batch slot.
        let corrupt: Vec<NodeId> = (0..cfg.batch_size)
            .map(|_| active_nodes[rng.random_range(0..active_nodes.len())])
            .collect();

        let mut tape = Tape::new();
        let h = gnn.embed_many(&mut tape, store, sg, &batch, rng);
        let h_corrupt = gnn.embed_many(&mut tape, store, sg, &corrupt, rng);

        // Summary s = σ(mean(h)), broadcast to batch rows.
        let mean = tape.mean_rows(h);
        let summary = tape.sigmoid(mean);
        let srows: Vec<_> = (0..cfg.batch_size).map(|_| 0).collect();
        let s_batch = tape.gather_rows(summary, &srows);

        // Bilinear critic D(h, s) = (h·W) ⊙ s summed per row.
        let w = tape.param(store, disc.w);
        let hw = tape.matmul(h, w);
        let pos = rows_dot(&mut tape, hw, s_batch);
        let hw_c = tape.matmul(h_corrupt, w);
        let neg = rows_dot(&mut tape, hw_c, s_batch);

        let loss = cpdg_tensor::loss::link_prediction_loss(&mut tape, pos, neg);
        last = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss);
        let mut pg = tape.param_grads(&grads);
        clip_global_norm(&mut pg, cfg.grad_clip);
        opt.step(store, &pg);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_gnn::StaticKind;
    use cpdg_graph::graph_from_triples;
    use rand::SeedableRng;

    #[test]
    fn dgi_pretraining_reduces_loss() {
        let g = graph_from_triples(
            10,
            &[(0, 5, 1.0), (1, 5, 2.0), (2, 6, 3.0), (3, 7, 4.0), (4, 8, 5.0), (0, 9, 6.0)],
        )
        .unwrap();
        let sg = StaticGraph::from_dynamic(&g);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gnn = StaticGnn::new(&mut store, &mut rng, "dgi", StaticKind::Sage, 10, 8);
        let disc = DgiDiscriminator::new(&mut store, &mut rng, "disc", 8);
        let mut opt = Adam::new(2e-2);
        let nodes: Vec<NodeId> = g.active_nodes();
        let cfg = StaticTrainConfig { steps: 5, ..Default::default() };
        let first = pretrain_dgi(&gnn, &disc, &mut store, &mut opt, &sg, &nodes, &cfg, &mut rng);
        let cfg2 = StaticTrainConfig { steps: 40, ..Default::default() };
        let later = pretrain_dgi(&gnn, &disc, &mut store, &mut opt, &sg, &nodes, &cfg2, &mut rng);
        assert!(later.is_finite());
        assert!(later <= first + 0.2, "DGI loss should not explode: {first} → {later}");
    }
}
