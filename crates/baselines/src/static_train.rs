//! Training and evaluation loops shared by the static baselines.
//!
//! The paper pre-trains GraphSAGE/GAT/GIN on link prediction (§V-B), then
//! fully fine-tunes on the downstream graph. Static models ignore event
//! times entirely: positives are the interaction edges, negatives are
//! uniformly corrupted destinations.

use crate::static_gnn::{StaticGnn, StaticGraph};
use cpdg_dgnn::metrics::link_prediction_metrics;
use cpdg_dgnn::LinkPredictor;
use cpdg_graph::{DynamicGraph, NodeId};
use cpdg_tensor::loss::link_prediction_loss;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::RngExt;

/// Shared loop hyper-parameters for static baselines.
#[derive(Debug, Clone)]
pub struct StaticTrainConfig {
    /// Node pairs per step.
    pub batch_size: usize,
    /// Optimisation steps per stage (pre-train / fine-tune).
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Gradient clip.
    pub grad_clip: f32,
    /// Chronological fraction of downstream events used for fine-tuning.
    pub train_frac: f64,
}

impl Default for StaticTrainConfig {
    fn default() -> Self {
        Self { batch_size: 64, steps: 60, lr: 2e-2, grad_clip: 5.0, train_frac: 0.85 }
    }
}

/// Row-wise dot product of two `m × d` variables, producing `m × 1` — the
/// bilinear/critic primitive used by DGI and GPT-GNN style scorers.
pub fn rows_dot(tape: &mut Tape, a: Var, b: Var) -> Var {
    let prod = tape.mul(a, b);
    let d = tape.value(prod).cols();
    let ones = tape.constant(Matrix::ones(d, 1));
    tape.matmul(prod, ones)
}

/// Draws a batch of `(src, dst, corrupt_dst)` triples from the event list.
pub fn sample_edge_batch(
    events: &[cpdg_graph::Interaction],
    dst_pool: &[NodeId],
    n: usize,
    rng: &mut StdRng,
) -> (Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    let mut srcs = Vec::with_capacity(n);
    let mut dsts = Vec::with_capacity(n);
    let mut negs = Vec::with_capacity(n);
    for _ in 0..n {
        let e = &events[rng.random_range(0..events.len())];
        srcs.push(e.src);
        dsts.push(e.dst);
        negs.push(dst_pool[rng.random_range(0..dst_pool.len())]);
    }
    (srcs, dsts, negs)
}

/// Distinct destination nodes of an event list (negative pool).
pub fn dst_pool(graph: &DynamicGraph) -> Vec<NodeId> {
    let mut pool: Vec<NodeId> = graph.events().iter().map(|e| e.dst).collect();
    pool.sort_unstable();
    pool.dedup();
    pool
}

/// Trains `(gnn, head)` on link prediction over the given `events` for
/// `cfg.steps` steps (negatives drawn from `pool`); returns the
/// final-step loss.
#[allow(clippy::too_many_arguments)]
pub fn train_static_link_prediction(
    gnn: &StaticGnn,
    head: &LinkPredictor,
    store: &mut ParamStore,
    opt: &mut Adam,
    sg: &StaticGraph,
    events: &[cpdg_graph::Interaction],
    pool: &[NodeId],
    cfg: &StaticTrainConfig,
    rng: &mut StdRng,
) -> f32 {
    assert!(!events.is_empty() && !pool.is_empty(), "train_static_link_prediction: empty input");
    let mut last = 0.0;
    for _ in 0..cfg.steps {
        let (srcs, dsts, negs) =
            sample_edge_batch(events, pool, cfg.batch_size, rng);
        let mut tape = Tape::new();
        let z_src = gnn.embed_many(&mut tape, store, sg, &srcs, rng);
        let z_dst = gnn.embed_many(&mut tape, store, sg, &dsts, rng);
        let z_neg = gnn.embed_many(&mut tape, store, sg, &negs, rng);
        let pos = head.score(&mut tape, store, z_src, z_dst);
        let neg = head.score(&mut tape, store, z_src, z_neg);
        let loss = link_prediction_loss(&mut tape, pos, neg);
        last = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss);
        let mut pg = tape.param_grads(&grads);
        clip_global_norm(&mut pg, cfg.grad_clip);
        opt.step(store, &pg);
    }
    last
}

/// Scores the chronological test tail of `graph` (events with index ≥
/// `score_from`) against sampled negatives; returns `(AUC, AP)`.
pub fn eval_static_link_prediction(
    gnn: &StaticGnn,
    head: &LinkPredictor,
    store: &ParamStore,
    sg: &StaticGraph,
    graph: &DynamicGraph,
    score_from: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let pool = dst_pool(graph);
    let mut pos_scores = Vec::new();
    let mut neg_scores = Vec::new();
    for chunk in graph.events()[score_from..].chunks(128) {
        let srcs: Vec<NodeId> = chunk.iter().map(|e| e.src).collect();
        let dsts: Vec<NodeId> = chunk.iter().map(|e| e.dst).collect();
        let negs: Vec<NodeId> =
            chunk.iter().map(|_| pool[rng.random_range(0..pool.len())]).collect();
        let mut tape = Tape::new();
        let z_src = gnn.embed_many(&mut tape, store, sg, &srcs, rng);
        let z_dst = gnn.embed_many(&mut tape, store, sg, &dsts, rng);
        let z_neg = gnn.embed_many(&mut tape, store, sg, &negs, rng);
        let pos = head.score(&mut tape, store, z_src, z_dst);
        let neg = head.score(&mut tape, store, z_src, z_neg);
        pos_scores.extend(tape.value(pos).data());
        neg_scores.extend(tape.value(neg).data());
    }
    link_prediction_metrics(&pos_scores, &neg_scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_gnn::StaticKind;
    use cpdg_graph::DynamicGraphBuilder;
    use rand::SeedableRng;

    fn planted_graph(seed: u64) -> DynamicGraph {
        // Even users ↔ even items, odd ↔ odd: learnable without time.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DynamicGraphBuilder::new(24);
        for e in 0..800usize {
            let u = rng.random_range(0..12);
            let item = 12 + 2 * rng.random_range(0..6usize).min(5) + (u % 2);
            b.add_interaction(u as NodeId, item.min(23) as NodeId, e as f64, 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn rows_dot_matches_manual() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let d = rows_dot(&mut tape, a, b);
        assert_eq!(tape.value(d), &Matrix::from_rows(&[&[17.0], &[53.0]]));
    }

    #[test]
    fn static_training_learns_planted_rule() {
        let g = planted_graph(0);
        let sg = StaticGraph::from_dynamic(&g);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gnn = StaticGnn::new(&mut store, &mut rng, "sage", StaticKind::Sage, 24, 16);
        let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
        let mut opt = Adam::new(2e-2);
        let cfg = StaticTrainConfig { steps: 120, ..Default::default() };
        let pool = dst_pool(&g);
        train_static_link_prediction(
            &gnn, &head, &mut store, &mut opt, &sg, g.events(), &pool, &cfg, &mut rng,
        );
        let (auc, _) =
            eval_static_link_prediction(&gnn, &head, &store, &sg, &g, 700, &mut rng);
        assert!(auc > 0.6, "static SAGE failed planted rule: AUC {auc}");
    }

    #[test]
    fn dst_pool_is_item_side() {
        let g = planted_graph(1);
        let pool = dst_pool(&g);
        assert!(pool.iter().all(|&d| d >= 12));
    }

    #[test]
    fn sample_edge_batch_shapes() {
        let g = planted_graph(2);
        let pool = dst_pool(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let (s, d, n) = sample_edge_batch(g.events(), &pool, 10, &mut rng);
        assert_eq!((s.len(), d.len(), n.len()), (10, 10, 10));
    }
}
