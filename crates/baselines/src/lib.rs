//! # cpdg-baselines
//!
//! The ten comparison methods of the CPDG paper's evaluation (§V-B):
//! static task-supervised (GraphSAGE, GAT, GIN), static self-supervised
//! (DGI, GPT-GNN), and dynamic self-supervised (DDGCL, SelfRGNN) — the
//! dynamic task-supervised baselines (DyRep, JODIE, TGN) are the vanilla
//! pre-training mode of `cpdg_core::pipeline`, since they share the DGNN
//! substrate.
//!
//! Simplifications relative to the original methods are documented on each
//! module and in the workspace DESIGN.md.

#![warn(missing_docs)]

pub mod dgi;
pub mod dynamic_ssl;
pub mod gptgnn;
pub mod runner;
pub mod static_gnn;
pub mod static_train;

pub use dynamic_ssl::DynSslConfig;
pub use runner::{Baseline, BaselineRunConfig};
pub use static_gnn::{StaticGnn, StaticGraph, StaticKind};
pub use static_train::StaticTrainConfig;
