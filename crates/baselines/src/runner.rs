//! Uniform runner for the seven non-trivial baselines of Table V, so the
//! bench harness can sweep methods with one call. (The task-supervised
//! dynamic baselines DyRep/JODIE/TGN and CPDG itself run through
//! `cpdg_core::pipeline` — they share the DGNN substrate directly.)

use crate::dgi::{pretrain_dgi, DgiDiscriminator};
use crate::dynamic_ssl::{
    pretrain_ddgcl, pretrain_selfrgnn, DdgclCritic, DynSslConfig, SelfRgnnCurvature,
};
use crate::gptgnn::pretrain_gptgnn;
use crate::static_gnn::{StaticGnn, StaticGraph, StaticKind};
use crate::static_train::{
    dst_pool, eval_static_link_prediction, train_static_link_prediction, StaticTrainConfig,
};
use cpdg_core::finetune::{
    finetune_link_prediction, finetune_node_classification, FinetuneConfig,
};
use cpdg_core::pipeline::auto_time_scale;
use cpdg_dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor};
use cpdg_graph::TransferSplit;
use cpdg_tensor::optim::Adam;
use cpdg_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The baselines this runner covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// GraphSAGE (task-supervised static).
    GraphSage,
    /// GAT (task-supervised static).
    Gat,
    /// GIN (task-supervised static).
    Gin,
    /// DGI (self-supervised static).
    Dgi,
    /// GPT-GNN (self-supervised static, generative).
    GptGnn,
    /// DDGCL (self-supervised dynamic).
    Ddgcl,
    /// SelfRGNN (self-supervised dynamic).
    SelfRgnn,
}

impl Baseline {
    /// Display name used in experiment tables (matches the paper).
    pub fn name(self) -> &'static str {
        match self {
            Baseline::GraphSage => "GraphSAGE",
            Baseline::Gat => "GAT",
            Baseline::Gin => "GIN",
            Baseline::Dgi => "DGI",
            Baseline::GptGnn => "GPT-GNN",
            Baseline::Ddgcl => "DDGCL",
            Baseline::SelfRgnn => "SelfRGNN",
        }
    }

    /// All seven, in the paper's Table V order.
    pub fn all() -> [Baseline; 7] {
        [
            Baseline::GraphSage,
            Baseline::Gin,
            Baseline::Gat,
            Baseline::Dgi,
            Baseline::GptGnn,
            Baseline::Ddgcl,
            Baseline::SelfRgnn,
        ]
    }

    /// True for the two dynamic self-supervised methods (the only
    /// baselines of this runner that appear in the node-classification
    /// table).
    pub fn is_dynamic(self) -> bool {
        matches!(self, Baseline::Ddgcl | Baseline::SelfRgnn)
    }
}

/// Shared run configuration.
#[derive(Debug, Clone)]
pub struct BaselineRunConfig {
    /// Embedding width.
    pub dim: usize,
    /// Static-model stage settings (pre-train and fine-tune use the same
    /// step budget).
    pub static_cfg: StaticTrainConfig,
    /// Dynamic-SSL pre-training settings.
    pub dyn_cfg: DynSslConfig,
    /// Downstream fine-tuning for dynamic methods.
    pub finetune: FinetuneConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for BaselineRunConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            static_cfg: StaticTrainConfig::default(),
            dyn_cfg: DynSslConfig::default(),
            finetune: FinetuneConfig::default(),
            seed: 0,
        }
    }
}

impl Baseline {
    /// Pre-trains on `split.pretrain`, fine-tunes on `split.downstream`,
    /// and returns downstream test `(AUC, AP)`.
    pub fn run_link_prediction(self, split: &TransferSplit, cfg: &BaselineRunConfig) -> (f64, f64) {
        match self {
            Baseline::Ddgcl | Baseline::SelfRgnn => self.run_dynamic(split, cfg, false).0,
            _ => self.run_static(split, cfg),
        }
    }

    /// Node-classification AUC for the dynamic self-supervised baselines;
    /// `None` for static methods (not part of the paper's Table VII).
    pub fn run_node_classification(
        self,
        split: &TransferSplit,
        cfg: &BaselineRunConfig,
    ) -> Option<f64> {
        self.is_dynamic().then(|| self.run_dynamic(split, cfg, true).1)
    }

    fn run_static(self, split: &TransferSplit, cfg: &BaselineRunConfig) -> (f64, f64) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let num_nodes = split.pretrain.num_nodes();
        let kind = match self {
            Baseline::GraphSage | Baseline::Dgi | Baseline::GptGnn => StaticKind::Sage,
            Baseline::Gat => StaticKind::Gat,
            Baseline::Gin => StaticKind::Gin,
        // Dynamic methods never reach here.
            Baseline::Ddgcl | Baseline::SelfRgnn => unreachable!("dynamic baseline"),
        };
        let gnn = StaticGnn::new(&mut store, &mut rng, "gnn", kind, num_nodes, cfg.dim);
        let head = LinkPredictor::new(&mut store, &mut rng, "head", cfg.dim);
        let mut opt = Adam::new(cfg.static_cfg.lr);

        // --- pre-training stage -------------------------------------
        let sg_pre = StaticGraph::from_dynamic(&split.pretrain);
        match self {
            Baseline::Dgi => {
                let disc = DgiDiscriminator::new(&mut store, &mut rng, "disc", cfg.dim);
                let nodes = split.pretrain.active_nodes();
                pretrain_dgi(
                    &gnn, &disc, &mut store, &mut opt, &sg_pre, &nodes, &cfg.static_cfg, &mut rng,
                );
            }
            Baseline::GptGnn => {
                pretrain_gptgnn(
                    &gnn, &mut store, &mut opt, &sg_pre, &split.pretrain, &cfg.static_cfg, &mut rng,
                );
            }
            _ => {
                let pool = dst_pool(&split.pretrain);
                train_static_link_prediction(
                    &gnn, &head, &mut store, &mut opt, &sg_pre,
                    split.pretrain.events(), &pool, &cfg.static_cfg, &mut rng,
                );
            }
        }

        // --- fine-tuning on the downstream train portion -------------
        let down = &split.downstream;
        let n = down.num_events();
        let train_end = ((n as f64 * cfg.static_cfg.train_frac) as usize).clamp(1, n - 1);
        // The snapshot used for both fine-tuning and evaluation only
        // contains training-period edges — no test leakage.
        let train_graph = cpdg_graph::split::subgraph_where(down, |e| e.idx < train_end)
            .expect("non-empty train portion");
        let sg_train = StaticGraph::from_dynamic(&train_graph);
        let pool = dst_pool(down);
        train_static_link_prediction(
            &gnn, &head, &mut store, &mut opt, &sg_train,
            &down.events()[..train_end], &pool, &cfg.static_cfg, &mut rng,
        );
        eval_static_link_prediction(&gnn, &head, &store, &sg_train, down, train_end, &mut rng)
    }

    /// Runs a dynamic-SSL baseline; returns `((auc, ap), node_auc)` with
    /// the unused half computed only when requested.
    fn run_dynamic(
        self,
        split: &TransferSplit,
        cfg: &BaselineRunConfig,
        classify: bool,
    ) -> ((f64, f64), f64) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let time_scale = auto_time_scale(&split.pretrain);
        let dcfg = DgnnConfig::preset(EncoderKind::Tgn, cfg.dim, time_scale);
        let mut enc =
            DgnnEncoder::new(&mut store, &mut rng, "enc", split.pretrain.num_nodes(), dcfg);
        let mut opt = Adam::new(cfg.dyn_cfg.lr);
        match self {
            Baseline::Ddgcl => {
                let critic = DdgclCritic::new(&mut store, &mut rng, "critic", cfg.dim);
                pretrain_ddgcl(&mut enc, &critic, &mut store, &mut opt, &split.pretrain, &cfg.dyn_cfg);
            }
            Baseline::SelfRgnn => {
                let curv = SelfRgnnCurvature::new(&mut store, "curv");
                pretrain_selfrgnn(&mut enc, &curv, &mut store, &mut opt, &split.pretrain, &cfg.dyn_cfg);
            }
            _ => unreachable!("static baseline"),
        }
        if classify {
            let auc = finetune_node_classification(
                &mut enc, &mut store, &split.downstream, &[], &cfg.finetune,
            );
            ((0.5, 0.5), auc)
        } else {
            let res = finetune_link_prediction(
                &mut enc, &mut store, &split.downstream, &[], &cfg.finetune, None,
            );
            ((res.auc, res.ap), 0.5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_graph::split::time_transfer;
    use cpdg_graph::{generate, SyntheticConfig};

    fn quick_cfg() -> BaselineRunConfig {
        BaselineRunConfig {
            dim: 8,
            static_cfg: StaticTrainConfig { steps: 10, batch_size: 32, ..Default::default() },
            dyn_cfg: DynSslConfig { epochs: 1, batch_size: 100, ..Default::default() },
            finetune: FinetuneConfig { epochs: 1, batch_size: 100, ..Default::default() },
            seed: 0,
        }
    }

    fn tiny_split(seed: u64) -> TransferSplit {
        let ds = generate(
            &SyntheticConfig { n_events: 700, ..SyntheticConfig::amazon_like(seed) }.scaled(0.1),
        );
        time_transfer(&ds.graph, 0.6).unwrap()
    }

    #[test]
    fn every_baseline_runs_link_prediction() {
        let split = tiny_split(0);
        let cfg = quick_cfg();
        for b in Baseline::all() {
            let (auc, ap) = b.run_link_prediction(&split, &cfg);
            assert!(auc.is_finite() && (0.0..=1.0).contains(&auc), "{b:?} auc {auc}");
            assert!(ap.is_finite(), "{b:?} ap {ap}");
        }
    }

    #[test]
    fn node_classification_only_for_dynamic() {
        let ds = generate(
            &SyntheticConfig { n_events: 800, ..SyntheticConfig::wikipedia_like(1) }.scaled(0.12),
        );
        let split = time_transfer(&ds.graph, 0.6).unwrap();
        let cfg = quick_cfg();
        assert!(Baseline::GraphSage.run_node_classification(&split, &cfg).is_none());
        let auc = Baseline::Ddgcl.run_node_classification(&split, &cfg).unwrap();
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Baseline::all().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["GraphSAGE", "GIN", "GAT", "DGI", "GPT-GNN", "DDGCL", "SelfRGNN"]);
    }
}
