//! GPT-GNN generative pre-training — §V-B.
//!
//! GPT-GNN pre-trains with masked node-attribute generation and edge
//! generation. The paper's datasets are ID-only (no node attributes), so —
//! as in the paper's own setting — the active ingredient is the *edge
//! generation* task: reconstruct a node's held-out edges from its
//! embedding, scored by dot product against candidate targets.

use crate::static_gnn::{StaticGnn, StaticGraph};
use crate::static_train::{dst_pool, rows_dot, sample_edge_batch, StaticTrainConfig};
use cpdg_graph::DynamicGraph;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{ParamStore, Tape};
use rand::rngs::StdRng;

/// Runs GPT-GNN edge-generation pre-training for `cfg.steps` steps;
/// returns the final loss.
pub fn pretrain_gptgnn(
    gnn: &StaticGnn,
    store: &mut ParamStore,
    opt: &mut Adam,
    sg: &StaticGraph,
    graph: &DynamicGraph,
    cfg: &StaticTrainConfig,
    rng: &mut StdRng,
) -> f32 {
    let pool = dst_pool(graph);
    let mut last = 0.0;
    for _ in 0..cfg.steps {
        let (srcs, dsts, negs) = sample_edge_batch(graph.events(), &pool, cfg.batch_size, rng);
        let mut tape = Tape::new();
        let z_src = gnn.embed_many(&mut tape, store, sg, &srcs, rng);
        let z_dst = gnn.embed_many(&mut tape, store, sg, &dsts, rng);
        let z_neg = gnn.embed_many(&mut tape, store, sg, &negs, rng);
        // Edge generation: does src's embedding generate dst (vs corrupt)?
        let pos = rows_dot(&mut tape, z_src, z_dst);
        let neg = rows_dot(&mut tape, z_src, z_neg);
        let loss = cpdg_tensor::loss::link_prediction_loss(&mut tape, pos, neg);
        last = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss);
        let mut pg = tape.param_grads(&grads);
        clip_global_norm(&mut pg, cfg.grad_clip);
        opt.step(store, &pg);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_gnn::StaticKind;
    use cpdg_graph::graph_from_triples;
    use rand::SeedableRng;

    #[test]
    fn gptgnn_pretraining_runs_and_descends() {
        let g = graph_from_triples(
            12,
            &[(0, 6, 1.0), (1, 7, 2.0), (2, 8, 3.0), (3, 9, 4.0), (0, 6, 5.0), (1, 7, 6.0)],
        )
        .unwrap();
        let sg = StaticGraph::from_dynamic(&g);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gnn = StaticGnn::new(&mut store, &mut rng, "gpt", StaticKind::Gat, 12, 8);
        let mut opt = Adam::new(2e-2);
        let cfg = StaticTrainConfig { steps: 10, ..Default::default() };
        let first = pretrain_gptgnn(&gnn, &mut store, &mut opt, &sg, &g, &cfg, &mut rng);
        let cfg2 = StaticTrainConfig { steps: 60, ..Default::default() };
        let later = pretrain_gptgnn(&gnn, &mut store, &mut opt, &sg, &g, &cfg2, &mut rng);
        assert!(later.is_finite() && first.is_finite());
        assert!(later < first, "edge-generation loss should drop: {first} → {later}");
    }
}
