//! First-order optimisers over a [`ParamStore`].

use crate::matrix::Matrix;
use crate::param::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Clips gradients by global L2 norm, returning the pre-clip norm.
pub fn clip_global_norm(grads: &mut [(ParamId, Matrix)], max_norm: f32) -> f32 {
    let total: f32 = grads
        .iter()
        .map(|(_, g)| g.data().iter().map(|&x| x * x).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let s = max_norm / total;
        for (_, g) in grads.iter_mut() {
            g.scale_inplace(s);
        }
    }
    total
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// A new SGD optimiser.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one descent step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            let p = store.value_mut(*id);
            for (w, &gv) in p.data_mut().iter_mut().zip(g.data().iter()) {
                *w -= self.lr * gv;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional decoupled weight
/// decay. Per-parameter moment state is allocated lazily on first touch, so
/// one optimiser can serve a store that grows (e.g. when a downstream head
/// is added at fine-tuning time).
///
/// Serialisation is canonical: moment state is written as a list sorted by
/// parameter index (a `HashMap` would serialise in random order), so saved
/// training checkpoints are byte-stable and restore exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "AdamSerde", into = "AdamSerde")]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay; 0 disables.
    pub weight_decay: f32,
    state: HashMap<ParamId, AdamState>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u64,
}

#[derive(Serialize, Deserialize)]
struct AdamSerde {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    state: Vec<(usize, AdamState)>,
}

impl From<Adam> for AdamSerde {
    fn from(a: Adam) -> Self {
        let mut state: Vec<(usize, AdamState)> =
            a.state.into_iter().map(|(id, s)| (id.index(), s)).collect();
        state.sort_by_key(|(i, _)| *i);
        Self {
            lr: a.lr,
            beta1: a.beta1,
            beta2: a.beta2,
            eps: a.eps,
            weight_decay: a.weight_decay,
            state,
        }
    }
}

impl From<AdamSerde> for Adam {
    fn from(s: AdamSerde) -> Self {
        Self {
            lr: s.lr,
            beta1: s.beta1,
            beta2: s.beta2,
            eps: s.eps,
            weight_decay: s.weight_decay,
            state: s.state.into_iter().map(|(i, st)| (ParamId(i), st)).collect(),
        }
    }
}

impl Adam {
    /// Adam with the standard (0.9, 0.999, 1e-8) moments and no decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, state: HashMap::new() }
    }

    /// Builder-style weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one Adam step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            let shape = g.shape();
            let st = self.state.entry(*id).or_insert_with(|| AdamState {
                m: Matrix::zeros(shape.0, shape.1),
                v: Matrix::zeros(shape.0, shape.1),
                t: 0,
            });
            st.t += 1;
            let bc1 = 1.0 - self.beta1.powi(st.t as i32);
            let bc2 = 1.0 - self.beta2.powi(st.t as i32);
            let p = store.value_mut(*id);
            for i in 0..g.len() {
                let gv = g.data()[i];
                let m = &mut st.m.data_mut()[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * gv;
                let v = &mut st.v.data_mut()[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * gv * gv;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                let w = &mut p.data_mut()[i];
                *w -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *w);
            }
        }
    }

    /// Resets all moment state (used when reusing one optimiser across
    /// independent training stages).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises f(w) = (w − 3)² with the given step closure; returns w.
    fn minimise(mut step: impl FnMut(&mut ParamStore, Vec<(ParamId, Matrix)>), iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..iters {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let target = tape.constant(Matrix::from_vec(1, 1, vec![3.0]));
            let diff = tape.sub(wv, target);
            let sq = tape.mul(diff, diff);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            let pg = tape.param_grads(&grads);
            step(&mut store, pg);
        }
        store.value(w).get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = minimise(|s, g| opt.step(s, &g), 100);
        assert!((w - 3.0).abs() < 1e-3, "sgd converged to {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = minimise(|s, g| opt.step(s, &g), 300);
        assert!((w - 3.0).abs() < 1e-2, "adam converged to {w}");
    }

    #[test]
    fn adam_weight_decay_shrinks_unused_weights() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Adam::new(0.01).with_weight_decay(0.5);
        // Zero gradient: only decay acts.
        for _ in 0..10 {
            opt.step(&mut store, &[(w, Matrix::zeros(1, 1))]);
        }
        assert!(store.value(w).get(0, 0) < 1.0);
    }

    #[test]
    fn adam_state_round_trips_through_json() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![0.0]));
        let mut opt = Adam::new(0.1).with_weight_decay(0.01);
        for _ in 0..5 {
            opt.step(&mut store, &[(w, Matrix::ones(1, 1))]);
        }
        let json = serde_json::to_string(&opt).unwrap();
        let mut back: Adam = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lr, opt.lr);
        assert_eq!(back.weight_decay, opt.weight_decay);
        // One more identical step from both copies lands on identical weights:
        // the moment state survived the round trip bit-for-bit.
        let mut store2 = store.clone();
        opt.step(&mut store, &[(w, Matrix::ones(1, 1))]);
        back.step(&mut store2, &[(w, Matrix::ones(1, 1))]);
        assert_eq!(store.value(w), store2.value(w));
    }

    #[test]
    fn clip_global_norm_scales_down() {
        let id = ParamId(0);
        let mut grads = vec![(id, Matrix::from_vec(1, 2, vec![3.0, 4.0]))];
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = grads[0].1.data().iter().map(|&x| x * x).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_global_norm_no_op_under_threshold() {
        let id = ParamId(0);
        let mut grads = vec![(id, Matrix::from_vec(1, 2, vec![0.3, 0.4]))];
        clip_global_norm(&mut grads, 1.0);
        assert_eq!(grads[0].1, Matrix::from_vec(1, 2, vec![0.3, 0.4]));
    }
}
