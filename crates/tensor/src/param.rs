//! Named trainable-parameter registry.
//!
//! Modules (`Linear`, `GruCell`, …) allocate their weights here and keep only
//! the returned [`ParamId`]s. A forward pass *mounts* parameters onto a
//! [`crate::tape::Tape`]; after `backward`, the optimiser harvests gradients
//! by id. Keeping values outside the tape means a tape is cheap to build and
//! throw away every mini-batch while parameters persist.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Opaque handle to one trainable parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Matrix,
}

/// Registry of named trainable parameters.
///
/// Serialisation is canonical: only the entry list (in registration order)
/// is written; the name index is rebuilt on load. This keeps saved model
/// files byte-stable across runs (a `HashMap` would serialise in random
/// order).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "ParamStoreSerde", into = "ParamStoreSerde")]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
    by_name: HashMap<String, ParamId>,
}

#[derive(Serialize, Deserialize)]
struct ParamStoreSerde {
    entries: Vec<ParamEntry>,
}

impl From<ParamStoreSerde> for ParamStore {
    fn from(s: ParamStoreSerde) -> Self {
        let by_name = s
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.clone(), ParamId(i)))
            .collect();
        Self { entries: s.entries, by_name }
    }
}

impl From<ParamStore> for ParamStoreSerde {
    fn from(s: ParamStore) -> Self {
        Self { entries: s.entries }
    }
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter.
    ///
    /// # Panics
    /// Panics if `name` is already registered — parameter names double as
    /// serialisation keys and must be unique.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "ParamStore::register: duplicate parameter name {name:?}"
        );
        let id = ParamId(self.entries.len());
        self.by_name.insert(name.clone(), id);
        self.entries.push(ParamEntry { name, value });
        id
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Mutable value (used by optimisers and loaders).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].value
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Looks a parameter up by name.
    pub fn lookup(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Total scalar parameter count (the "number of parameters" of a model).
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Serialises all parameters to JSON (name → matrix).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self).expect("ParamStore serialisation cannot fail")
    }

    /// Restores a store from [`ParamStore::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Copies values from `other` for every parameter whose name exists in
    /// both stores, returning how many were copied. Shapes must match for
    /// copied names. This is the "initialise downstream model from
    /// pre-trained weights" primitive used by fine-tuning.
    pub fn load_matching(&mut self, other: &ParamStore) -> usize {
        let mut copied = 0;
        for entry in &mut self.entries {
            if let Some(src_id) = other.by_name.get(&entry.name) {
                let src = &other.entries[src_id.0].value;
                assert_eq!(
                    entry.value.shape(),
                    src.shape(),
                    "load_matching: shape mismatch for {:?}",
                    entry.name
                );
                entry.value = src.clone();
                copied += 1;
            }
        }
        copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::ones(2, 3));
        assert_eq!(store.lookup("w"), Some(id));
        assert_eq!(store.lookup("nope"), None);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.value(id).shape(), (2, 3));
        assert_eq!(store.len(), 1);
        assert_eq!(store.scalar_count(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::ones(1, 1));
        store.register("w", Matrix::ones(1, 1));
    }

    #[test]
    fn json_round_trip() {
        let mut store = ParamStore::new();
        store.register("a", Matrix::from_rows(&[&[1.0, 2.0]]));
        store.register("b", Matrix::from_rows(&[&[3.0], &[4.0]]));
        let json = store.to_json();
        let back = ParamStore::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        let a = back.lookup("a").unwrap();
        assert_eq!(back.value(a), &Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn load_matching_copies_by_name() {
        let mut pretrained = ParamStore::new();
        pretrained.register("enc.w", Matrix::full(1, 2, 7.0));
        pretrained.register("head.w", Matrix::full(1, 1, 9.0));

        let mut downstream = ParamStore::new();
        let w = downstream.register("enc.w", Matrix::zeros(1, 2));
        downstream.register("new_head.w", Matrix::zeros(1, 1));

        let copied = downstream.load_matching(&pretrained);
        assert_eq!(copied, 1);
        assert_eq!(downstream.value(w), &Matrix::full(1, 2, 7.0));
    }

    #[test]
    fn serialisation_is_canonical() {
        let mut store = ParamStore::new();
        for i in 0..20 {
            store.register(format!("p{i}"), Matrix::full(1, 1, i as f32));
        }
        let a = store.to_json();
        let b = store.clone().to_json();
        assert_eq!(a, b, "same store must serialise identically");
        // And a load→save round trip is byte-stable too.
        let reloaded = ParamStore::from_json(&a).unwrap();
        assert_eq!(reloaded.to_json(), a);
        assert_eq!(reloaded.lookup("p7"), store.lookup("p7"));
    }

    #[test]
    fn ids_iterate_in_registration_order() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 1));
        let b = store.register("b", Matrix::zeros(1, 1));
        let ids: Vec<_> = store.ids().collect();
        assert_eq!(ids, vec![a, b]);
    }
}
