//! Arena-based reverse-mode autodiff tape.
//!
//! A [`Tape`] records one forward pass; variables are indices into the
//! arena ([`Var`]), so tape construction is allocation-light and the reverse
//! pass is a single backwards sweep over a `Vec` — no reference counting, no
//! interior mutability. A fresh tape is built for every mini-batch and
//! dropped afterwards; parameters persist in a [`ParamStore`] and are
//! *mounted* onto the tape with [`Tape::param`].
//!
//! ```
//! use cpdg_tensor::{Matrix, ParamStore, Tape};
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", Matrix::from_rows(&[&[0.5], &[-0.25]]));
//!
//! let mut tape = Tape::new();
//! let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let wv = tape.param(&store, w);
//! let y = tape.matmul(x, wv);           // 1x1
//! let loss = tape.mean_all(y);
//! let grads = tape.backward(loss);
//! assert!(grads.get(wv).is_some());
//! ```

use crate::matrix::Matrix;
use crate::ops::{sigmoid, softplus, Op};
use crate::param::{ParamId, ParamStore};
use std::collections::HashMap;

/// Handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Gradients produced by [`Tape::backward`]. Indexed by [`Var`]; variables
/// the loss does not depend on have no entry.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `var`, if the loss depends on it.
    pub fn get(&self, var: Var) -> Option<&Matrix> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }
}

/// One recorded forward pass.
#[derive(Debug, Default)]
pub struct Tape {
    values: Vec<Matrix>,
    ops: Vec<Op>,
    /// ParamId → mounted Var, so mounting the same parameter twice reuses
    /// one node and its gradient accumulates correctly.
    mounts: HashMap<ParamId, Var>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Forward value of a variable.
    pub fn value(&self, var: Var) -> &Matrix {
        &self.values[var.0]
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(value.all_finite() || !cfg!(debug_assertions), "non-finite forward value");
        let var = Var(self.values.len());
        self.values.push(value);
        self.ops.push(op);
        var
    }

    /// Records a constant (no gradient is propagated past it).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Mounts a trainable parameter. Mounting the same id twice returns the
    /// same variable.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&var) = self.mounts.get(&id) {
            return var;
        }
        let var = self.push(store.value(id).clone(), Op::Leaf);
        self.mounts.insert(id, var);
        var
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].matmul(&self.values[b.0]);
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// `a[m,n] + b[1,n]`, broadcasting `b` over rows (bias add).
    pub fn add_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(vb.rows(), 1, "add_broadcast_row: rhs must be 1×n");
        assert_eq!(va.cols(), vb.cols(), "add_broadcast_row: width mismatch");
        let mut v = va.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            for (x, &y) in row.iter_mut().zip(vb.row(0).iter()) {
                *x += y;
            }
        }
        self.push(v, Op::AddBroadcastRow(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.values[a.0].map(|x| x * s);
        self.push(v, Op::Scale(a, s))
    }

    /// Elementwise scalar addition.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.values[a.0].map(|x| x + s);
        self.push(v, Op::AddScalar(a, s))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(f32::cos);
        self.push(v, Op::Cos(a))
    }

    /// Elementwise square root (inputs are clamped at zero).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| x.max(0.0).sqrt());
        self.push(v, Op::Sqrt(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let va = &self.values[a.0];
        let mut v = va.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// `[a ‖ b]` column concatenation (same row counts).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].hcat(&self.values[b.0]);
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Gathers rows of `a` by index (indices may repeat).
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let v = self.values[a.0].gather_rows(indices);
        self.push(v, Op::GatherRows(a, indices.to_vec()))
    }

    /// Stacks `1×n` row vectors into an `m×n` matrix.
    pub fn stack_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "stack_rows: empty input");
        let rows: Vec<&Matrix> = parts.iter().map(|p| &self.values[p.0]).collect();
        for r in &rows {
            assert_eq!(r.rows(), 1, "stack_rows: every part must be 1×n");
        }
        let v = Matrix::vstack(&rows);
        self.push(v, Op::StackRows(parts.to_vec()))
    }

    /// Column-wise mean producing a `1×n` row vector.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.values[a.0].mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    /// Mean of all elements (`1×1`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let m = self.values[a.0].mean();
        self.push(Matrix::from_vec(1, 1, vec![m]), Op::MeanAll(a))
    }

    /// Sum of all elements (`1×1`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.values[a.0].sum();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SumAll(a))
    }

    /// Row-wise squared Euclidean distance between same-shaped matrices,
    /// producing `m×1`.
    pub fn sq_dist_rows(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(va.shape(), vb.shape(), "sq_dist_rows: shape mismatch");
        let mut v = Matrix::zeros(va.rows(), 1);
        for r in 0..va.rows() {
            let d: f32 = va
                .row(r)
                .iter()
                .zip(vb.row(r).iter())
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum();
            v.set(r, 0, d);
        }
        self.push(v, Op::SqDistRows(a, b))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.values[a.0].transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Elementwise natural exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(f32::exp);
        self.push(v, Op::Exp(a))
    }

    /// Elementwise natural logarithm (inputs are clamped at a tiny floor so
    /// the forward and backward stay finite).
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| x.max(crate::ops::LN_EPS).ln());
        self.push(v, Op::Ln(a))
    }

    /// Column-wise maximum producing `1×n` (max-pool readout).
    pub fn max_rows(&mut self, a: Var) -> Var {
        let va = &self.values[a.0];
        assert!(va.rows() >= 1, "max_rows: need at least one row");
        let mut v = Matrix::from_vec(1, va.cols(), va.row(0).to_vec());
        for r in 1..va.rows() {
            for c in 0..va.cols() {
                if va.get(r, c) > v.get(0, c) {
                    v.set(0, c, va.get(r, c));
                }
            }
        }
        self.push(v, Op::MaxRows(a))
    }

    /// `a[m,n] ∘ b[1,n]`, broadcasting `b` over rows (per-channel gain).
    pub fn mul_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(vb.rows(), 1, "mul_broadcast_row: rhs must be 1×n");
        assert_eq!(va.cols(), vb.cols(), "mul_broadcast_row: width mismatch");
        let mut v = va.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            for (x, &y) in row.iter_mut().zip(vb.row(0).iter()) {
                *x *= y;
            }
        }
        self.push(v, Op::MulBroadcastRow(a, b))
    }

    /// Row-wise standardisation `(x − μ_row)/sqrt(σ²_row + eps)` — the core
    /// of layer normalisation.
    pub fn normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        let va = &self.values[a.0];
        let n = va.cols().max(1) as f32;
        let mut v = va.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let mu: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|&x| (x - mu) * (x - mu)).sum::<f32>() / n;
            let sigma = (var + eps).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mu) / sigma;
            }
        }
        self.push(v, Op::NormalizeRows(a, eps))
    }

    /// Mean binary cross-entropy with logits against constant `targets`
    /// (same shape as the logits), computed in the numerically stable form
    /// `max(x,0) − x·y + log(1+e^{−|x|})`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Matrix) -> Var {
        let x = &self.values[logits.0];
        assert_eq!(x.shape(), targets.shape(), "bce_with_logits: shape mismatch");
        let n = x.len().max(1) as f32;
        let total: f32 = x
            .data()
            .iter()
            .zip(targets.data().iter())
            .map(|(&xi, &yi)| xi.max(0.0) - xi * yi + softplus(-xi.abs()))
            .sum();
        self.push(
            Matrix::from_vec(1, 1, vec![total / n]),
            Op::BceWithLogits { logits, targets },
        )
    }

    /// Euclidean (L2) distance between corresponding rows: `sqrt(sq_dist)`.
    pub fn euclidean_rows(&mut self, a: Var, b: Var) -> Var {
        let sq = self.sq_dist_rows(a, b);
        // Small epsilon keeps the sqrt backward finite at zero distance.
        let eps = self.add_scalar(sq, 1e-8);
        self.sqrt(eps)
    }

    /// Runs the reverse pass from `loss` (must be `1×1`) and returns all
    /// gradients. The tape itself is unchanged and can be queried afterwards.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.values[loss.0].shape(),
            (1, 1),
            "backward: loss must be a 1×1 scalar"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.values.len()];
        grads[loss.0] = Some(Matrix::ones(1, 1));
        for i in (0..self.values.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            self.ops[i].backward(&self.values, &self.values[i], &g, &mut grads);
            grads[i] = Some(g);
        }
        Gradients { grads }
    }

    /// Collects `(ParamId, gradient)` pairs for every mounted parameter the
    /// loss depends on.
    pub fn param_grads(&self, grads: &Gradients) -> Vec<(ParamId, Matrix)> {
        let mut out: Vec<(ParamId, Matrix)> = self
            .mounts
            .iter()
            .filter_map(|(&id, &var)| grads.get(var).map(|g| (id, g.clone())))
            .collect();
        // Deterministic order for reproducible optimiser behaviour.
        out.sort_by_key(|(id, _)| id.index());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(tape: &mut Tape, x: f32) -> Var {
        tape.constant(Matrix::from_vec(1, 1, vec![x]))
    }

    #[test]
    fn matmul_grad_hand_checked() {
        // loss = sum(A·B) with A = [[1,2]], B = [[3],[4]] → loss = 11
        // dA = [[3,4]] (row of Bᵀ), dB = [[1],[2]].
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[3.0], &[4.0]]));
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        assert_eq!(tape.value(loss).get(0, 0), 11.0);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap(), &Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(grads.get(b).unwrap(), &Matrix::from_rows(&[&[1.0], &[2.0]]));
    }

    #[test]
    fn sigmoid_grad_at_zero_is_quarter() {
        let mut tape = Tape::new();
        let x = scalar(&mut tape, 0.0);
        let y = tape.sigmoid(x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert!((grads.get(x).unwrap().get(0, 0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn mul_product_rule() {
        let mut tape = Tape::new();
        let x = scalar(&mut tape, 3.0);
        let y = scalar(&mut tape, 5.0);
        let z = tape.mul(x, y);
        let loss = tape.sum_all(z);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().get(0, 0), 5.0);
        assert_eq!(grads.get(y).unwrap().get(0, 0), 3.0);
    }

    #[test]
    fn reused_variable_accumulates_gradient() {
        // loss = x·x (elementwise on 1×1) → dloss/dx = 2x.
        let mut tape = Tape::new();
        let x = scalar(&mut tape, 4.0);
        let z = tape.mul(x, x);
        let loss = tape.sum_all(z);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().get(0, 0), 8.0);
    }

    #[test]
    fn param_mount_dedup() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![2.0]));
        let mut tape = Tape::new();
        let w1 = tape.param(&store, w);
        let w2 = tape.param(&store, w);
        assert_eq!(w1, w2);
        // loss = w * w → grad 2w = 4.
        let z = tape.mul(w1, w2);
        let loss = tape.sum_all(z);
        let grads = tape.backward(loss);
        let pg = tape.param_grads(&grads);
        assert_eq!(pg.len(), 1);
        assert_eq!(pg[0].1.get(0, 0), 4.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_sums_to_zero() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = tape.softmax_rows(x);
        let row_sum: f32 = tape.value(y).row(0).iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-6);
        // Pick out only the first component: loss = softmax(x)[0].
        let mask = tape.constant(Matrix::from_rows(&[&[1.0, 0.0, 0.0]]));
        let picked = tape.mul(y, mask);
        let loss = tape.sum_all(picked);
        let grads = tape.backward(loss);
        let g = grads.get(x).unwrap();
        let total: f32 = g.row(0).iter().sum();
        assert!(total.abs() < 1e-6, "softmax jacobian rows sum to zero, got {total}");
    }

    #[test]
    fn gather_rows_scatter_adds() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let g = tape.gather_rows(x, &[0, 0, 2]);
        let loss = tape.sum_all(g);
        let grads = tape.backward(loss);
        // Row 0 gathered twice → grad 2; row 1 never → 0; row 2 once → 1.
        assert_eq!(grads.get(x).unwrap(), &Matrix::from_rows(&[&[2.0], &[0.0], &[1.0]]));
    }

    #[test]
    fn stack_rows_routes_gradients() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::row_vec(vec![1.0, 2.0]));
        let b = tape.constant(Matrix::row_vec(vec![3.0, 4.0]));
        let s = tape.stack_rows(&[a, b]);
        assert_eq!(tape.value(s).shape(), (2, 2));
        let w = tape.constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 10.0]]));
        let ws = tape.mul(s, w);
        let loss = tape.sum_all(ws);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap(), &Matrix::row_vec(vec![1.0, 0.0]));
        assert_eq!(grads.get(b).unwrap(), &Matrix::row_vec(vec![0.0, 10.0]));
    }

    #[test]
    fn bce_with_logits_matches_closed_form() {
        // x = 0, y = 1 → loss = ln 2; grad = (σ(0) − 1) = −0.5.
        let mut tape = Tape::new();
        let x = scalar(&mut tape, 0.0);
        let loss = tape.bce_with_logits(x, Matrix::from_vec(1, 1, vec![1.0]));
        assert!((tape.value(loss).get(0, 0) - std::f32::consts::LN_2).abs() < 1e-6);
        let grads = tape.backward(loss);
        assert!((grads.get(x).unwrap().get(0, 0) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn euclidean_rows_forward() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 1.0]]));
        let d = tape.euclidean_rows(a, b);
        assert!((tape.value(d).get(0, 0) - 5.0).abs() < 1e-3);
        assert!(tape.value(d).get(1, 0) < 1e-3);
        // Zero distance must still have a finite gradient.
        let loss = tape.sum_all(d);
        let grads = tape.backward(loss);
        assert!(grads.get(a).unwrap().all_finite());
    }

    #[test]
    fn constants_do_not_block_unrelated_grads() {
        let mut tape = Tape::new();
        let x = scalar(&mut tape, 2.0);
        let _unused = scalar(&mut tape, 99.0);
        let y = tape.mul(x, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(_unused), None);
        assert_eq!(grads.get(x).unwrap().get(0, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1×1 scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(2, 2));
        tape.backward(x);
    }

    #[test]
    fn transpose_grad() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let t = tape.transpose(x);
        assert_eq!(tape.value(t).shape(), (3, 1));
        let w = tape.constant(Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let p = tape.mul(t, w);
        let loss = tape.sum_all(p);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap(), &Matrix::from_rows(&[&[1.0, 10.0, 100.0]]));
    }
}
