//! Differentiable operations: the op set recorded on the tape and the
//! backward (vector-Jacobian product) rule for each.
//!
//! Forward evaluation lives in [`crate::tape::Tape`]'s constructor methods;
//! this module owns the op metadata and the reverse pass. The split keeps the
//! backward rules — the part most likely to harbour silent bugs — in one
//! place where the finite-difference tests in `tests` can cover them
//! exhaustively.

use crate::matrix::Matrix;
use crate::tape::Var;

/// Guard against division blow-ups in `sqrt` backward.
const SQRT_EPS: f32 = 1e-12;
/// Clamp floor for `ln` inputs.
pub(crate) const LN_EPS: f32 = 1e-12;

/// One recorded operation. Variants hold the parent [`Var`]s plus any
/// non-differentiable payload (indices, constants, targets).
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input: a constant or a mounted parameter. No parents.
    Leaf,
    /// `a · b`.
    MatMul(Var, Var),
    /// `a + b`, same shape.
    Add(Var, Var),
    /// `a[m,n] + b[1,n]` with `b` broadcast over rows.
    AddBroadcastRow(Var, Var),
    /// `a - b`, same shape.
    Sub(Var, Var),
    /// `a ∘ b` elementwise.
    Mul(Var, Var),
    /// `s · a`.
    Scale(Var, f32),
    /// `a + s` elementwise (the scalar is kept for Debug output).
    AddScalar(Var, #[allow(dead_code)] f32),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// Elementwise cosine (time encodings).
    Cos(Var),
    /// Elementwise square root.
    Sqrt(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// `[a ‖ b]` column concatenation.
    ConcatCols(Var, Var),
    /// Row gather (indices may repeat); backward is scatter-add.
    GatherRows(Var, Vec<usize>),
    /// Stack `1×n` rows into an `m×n` matrix.
    StackRows(Vec<Var>),
    /// Column-wise mean producing `1×n`.
    MeanRows(Var),
    /// Mean of all elements producing `1×1`.
    MeanAll(Var),
    /// Sum of all elements producing `1×1`.
    SumAll(Var),
    /// Row-wise squared Euclidean distance producing `m×1`.
    SqDistRows(Var, Var),
    /// Matrix transpose.
    Transpose(Var),
    /// Elementwise natural exponential.
    Exp(Var),
    /// Elementwise natural logarithm (inputs clamped at `LN_EPS`).
    Ln(Var),
    /// Column-wise maximum producing `1×n`; backward routes to the argmax
    /// row of each column (first occurrence on ties).
    MaxRows(Var),
    /// `a[m,n] ∘ b[1,n]` with `b` broadcast over rows.
    MulBroadcastRow(Var, Var),
    /// Row-wise standardisation `(x − μ_row) / sqrt(σ²_row + eps)`.
    NormalizeRows(Var, f32),
    /// Mean binary cross-entropy with logits against constant targets.
    BceWithLogits { logits: Var, targets: Matrix },
}

/// Accumulates `delta` into the gradient slot for `var`, allocating on first
/// touch. `shape` must be the value shape of `var`.
fn acc(grads: &mut [Option<Matrix>], var: Var, delta: Matrix) {
    match &mut grads[var.index()] {
        Some(g) => g.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

impl Op {
    /// Propagates `out_grad` (gradient of the loss w.r.t. this node's value)
    /// into the parents' gradient slots.
    pub(crate) fn backward(
        &self,
        values: &[Matrix],
        out_value: &Matrix,
        out_grad: &Matrix,
        grads: &mut [Option<Matrix>],
    ) {
        match self {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let va = &values[a.index()];
                let vb = &values[b.index()];
                acc(grads, *a, out_grad.matmul(&vb.transpose()));
                acc(grads, *b, va.transpose().matmul(out_grad));
            }
            Op::Add(a, b) => {
                acc(grads, *a, out_grad.clone());
                acc(grads, *b, out_grad.clone());
            }
            Op::AddBroadcastRow(a, b) => {
                acc(grads, *a, out_grad.clone());
                // db = column sums of out_grad, shaped 1×n.
                let mut db = Matrix::zeros(1, out_grad.cols());
                for r in 0..out_grad.rows() {
                    for c in 0..out_grad.cols() {
                        db.data_mut()[c] += out_grad.get(r, c);
                    }
                }
                acc(grads, *b, db);
            }
            Op::Sub(a, b) => {
                acc(grads, *a, out_grad.clone());
                acc(grads, *b, out_grad.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let va = &values[a.index()];
                let vb = &values[b.index()];
                acc(grads, *a, out_grad.zip(vb, |g, y| g * y));
                acc(grads, *b, out_grad.zip(va, |g, x| g * x));
            }
            Op::Scale(a, s) => {
                let s = *s;
                acc(grads, *a, out_grad.map(|g| g * s));
            }
            Op::AddScalar(a, _) => {
                acc(grads, *a, out_grad.clone());
            }
            Op::Sigmoid(a) => {
                acc(grads, *a, out_grad.zip(out_value, |g, y| g * y * (1.0 - y)));
            }
            Op::Tanh(a) => {
                acc(grads, *a, out_grad.zip(out_value, |g, y| g * (1.0 - y * y)));
            }
            Op::Relu(a) => {
                let va = &values[a.index()];
                acc(grads, *a, out_grad.zip(va, |g, x| if x > 0.0 { g } else { 0.0 }));
            }
            Op::Cos(a) => {
                let va = &values[a.index()];
                acc(grads, *a, out_grad.zip(va, |g, x| -g * x.sin()));
            }
            Op::Sqrt(a) => {
                acc(grads, *a, out_grad.zip(out_value, |g, y| g * 0.5 / y.max(SQRT_EPS)));
            }
            Op::SoftmaxRows(a) => {
                // Per row: da = y ∘ (g - ⟨g, y⟩).
                let mut da = Matrix::zeros(out_value.rows(), out_value.cols());
                for r in 0..out_value.rows() {
                    let y = out_value.row(r);
                    let g = out_grad.row(r);
                    let dot: f32 = y.iter().zip(g.iter()).map(|(&yi, &gi)| yi * gi).sum();
                    let dst = da.row_mut(r);
                    for c in 0..y.len() {
                        dst[c] = y[c] * (g[c] - dot);
                    }
                }
                acc(grads, *a, da);
            }
            Op::ConcatCols(a, b) => {
                let ca = values[a.index()].cols();
                let cb = values[b.index()].cols();
                let rows = out_grad.rows();
                let mut da = Matrix::zeros(rows, ca);
                let mut db = Matrix::zeros(rows, cb);
                for r in 0..rows {
                    let g = out_grad.row(r);
                    da.row_mut(r).copy_from_slice(&g[..ca]);
                    db.row_mut(r).copy_from_slice(&g[ca..]);
                }
                acc(grads, *a, da);
                acc(grads, *b, db);
            }
            Op::GatherRows(a, indices) => {
                let va = &values[a.index()];
                let mut da = Matrix::zeros(va.rows(), va.cols());
                for (out_r, &src_r) in indices.iter().enumerate() {
                    let g = out_grad.row(out_r);
                    let dst = da.row_mut(src_r);
                    for c in 0..g.len() {
                        dst[c] += g[c];
                    }
                }
                acc(grads, *a, da);
            }
            Op::StackRows(parts) => {
                for (r, part) in parts.iter().enumerate() {
                    acc(grads, *part, Matrix::from_vec(1, out_grad.cols(), out_grad.row(r).to_vec()));
                }
            }
            Op::MeanRows(a) => {
                let va = &values[a.index()];
                let m = va.rows().max(1) as f32;
                let mut da = Matrix::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    let dst = da.row_mut(r);
                    for c in 0..va.cols() {
                        dst[c] = out_grad.get(0, c) / m;
                    }
                }
                acc(grads, *a, da);
            }
            Op::MeanAll(a) => {
                let va = &values[a.index()];
                let n = va.len().max(1) as f32;
                let g = out_grad.get(0, 0) / n;
                acc(grads, *a, Matrix::full(va.rows(), va.cols(), g));
            }
            Op::SumAll(a) => {
                let va = &values[a.index()];
                let g = out_grad.get(0, 0);
                acc(grads, *a, Matrix::full(va.rows(), va.cols(), g));
            }
            Op::SqDistRows(a, b) => {
                let va = &values[a.index()];
                let vb = &values[b.index()];
                let mut da = Matrix::zeros(va.rows(), va.cols());
                let mut db = Matrix::zeros(vb.rows(), vb.cols());
                for r in 0..va.rows() {
                    let g = out_grad.get(r, 0);
                    let ra = va.row(r);
                    let rb = vb.row(r);
                    let dra = da.row_mut(r);
                    for c in 0..ra.len() {
                        dra[c] = 2.0 * g * (ra[c] - rb[c]);
                    }
                    let drb = db.row_mut(r);
                    for c in 0..ra.len() {
                        drb[c] = -2.0 * g * (ra[c] - rb[c]);
                    }
                }
                acc(grads, *a, da);
                acc(grads, *b, db);
            }
            Op::Transpose(a) => {
                acc(grads, *a, out_grad.transpose());
            }
            Op::Exp(a) => {
                acc(grads, *a, out_grad.zip(out_value, |g, y| g * y));
            }
            Op::Ln(a) => {
                let va = &values[a.index()];
                acc(grads, *a, out_grad.zip(va, |g, x| g / x.max(LN_EPS)));
            }
            Op::MaxRows(a) => {
                let va = &values[a.index()];
                let mut da = Matrix::zeros(va.rows(), va.cols());
                for c in 0..va.cols() {
                    let mut best_r = 0;
                    for r in 1..va.rows() {
                        if va.get(r, c) > va.get(best_r, c) {
                            best_r = r;
                        }
                    }
                    da.set(best_r, c, out_grad.get(0, c));
                }
                acc(grads, *a, da);
            }
            Op::MulBroadcastRow(a, b) => {
                let va = &values[a.index()];
                let vb = &values[b.index()];
                // da = g ∘ b broadcast over rows.
                let mut da = Matrix::zeros(va.rows(), va.cols());
                let mut db = Matrix::zeros(1, vb.cols());
                for r in 0..va.rows() {
                    for c in 0..va.cols() {
                        let g = out_grad.get(r, c);
                        da.set(r, c, g * vb.get(0, c));
                        db.data_mut()[c] += g * va.get(r, c);
                    }
                }
                acc(grads, *a, da);
                acc(grads, *b, db);
            }
            Op::NormalizeRows(a, eps) => {
                // With y = (x − μ)/σ per row:
                // dx = (1/σ)·(g − mean(g) − y·mean(g ∘ y)).
                let va = &values[a.index()];
                let n = va.cols().max(1) as f32;
                let mut da = Matrix::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    let x = va.row(r);
                    let y = out_value.row(r);
                    let g = out_grad.row(r);
                    let mu: f32 = x.iter().sum::<f32>() / n;
                    let var: f32 = x.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / n;
                    let sigma = (var + eps).sqrt();
                    let g_mean: f32 = g.iter().sum::<f32>() / n;
                    let gy_mean: f32 =
                        g.iter().zip(y.iter()).map(|(&gi, &yi)| gi * yi).sum::<f32>() / n;
                    let dst = da.row_mut(r);
                    for c in 0..x.len() {
                        dst[c] = (g[c] - g_mean - y[c] * gy_mean) / sigma;
                    }
                }
                acc(grads, *a, da);
            }
            Op::BceWithLogits { logits, targets } => {
                let x = &values[logits.index()];
                let n = x.len().max(1) as f32;
                let g = out_grad.get(0, 0) / n;
                // d/dx mean BCE = (σ(x) - y) / n.
                let dx = x.zip(targets, |xi, yi| g * (sigmoid(xi) - yi));
                acc(grads, *logits, dx);
            }
        }
    }

    /// Parent variables of this op (used for liveness / debugging).
    #[allow(dead_code)]
    pub(crate) fn parents(&self) -> Vec<Var> {
        match self {
            Op::Leaf => vec![],
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::AddBroadcastRow(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::ConcatCols(a, b)
            | Op::MulBroadcastRow(a, b)
            | Op::SqDistRows(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Relu(a)
            | Op::Cos(a)
            | Op::Sqrt(a)
            | Op::SoftmaxRows(a)
            | Op::GatherRows(a, _)
            | Op::MeanRows(a)
            | Op::MeanAll(a)
            | Op::SumAll(a)
            | Op::Transpose(a)
            | Op::Exp(a)
            | Op::Ln(a)
            | Op::MaxRows(a)
            | Op::NormalizeRows(a, _) => vec![*a],
            Op::StackRows(parts) => parts.clone(),
            Op::BceWithLogits { logits, .. } => vec![*logits],
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log(1 + e^x)`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        for &x in &[-50.0, -3.0, -0.5, 0.5, 3.0, 50.0] {
            let s = sigmoid(x);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "sigmoid({x}) = {s}");
            assert!((sigmoid(-x) - (1.0 - s)).abs() < 1e-6);
        }
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for &x in &[-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let naive = (1.0 + x.exp()).ln();
            assert!((softplus(x) - naive).abs() < 1e-5);
        }
        // And stays finite where the naive form overflows.
        assert!(softplus(200.0).is_finite());
        assert!((softplus(200.0) - 200.0).abs() < 1e-3);
    }
}
