//! # cpdg-tensor
//!
//! A small, fully self-contained deep-learning substrate: dense `f32`
//! matrices, an arena-based reverse-mode autodiff tape, the neural modules
//! needed by dynamic graph neural networks (linear/MLP/GRU/RNN/attention/
//! time-encoding), losses, and optimisers.
//!
//! It exists because the CPDG reproduction (ICDE 2024) needs contrastive
//! training of DGNN encoders, and no mature Rust GNN training stack exists;
//! everything here is CPU-only, deterministic under seeds, and verified by
//! finite-difference gradient checks.
//!
//! ## Quick tour
//!
//! ```
//! use cpdg_tensor::{Matrix, ParamStore, Tape};
//! use cpdg_tensor::nn::{Mlp, Activation};
//! use cpdg_tensor::optim::Adam;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(42);
//! let mlp = Mlp::new(&mut store, &mut rng, "net", &[2, 8, 1], Activation::Relu);
//! let mut opt = Adam::new(1e-2);
//!
//! for _ in 0..50 {
//!     let mut tape = Tape::new();
//!     let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//!     let y = mlp.forward(&mut tape, &store, x);
//!     let loss = tape.bce_with_logits(y, Matrix::from_rows(&[&[1.0], &[0.0]]));
//!     let grads = tape.backward(loss);
//!     let pg = tape.param_grads(&grads);
//!     opt.step(&mut store, &pg);
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::disallowed_macros)]

pub mod loss;
pub mod matrix;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod param;
pub mod tape;
pub mod threading;

pub use matrix::Matrix;
pub use param::{ParamId, ParamStore};
pub use tape::{Gradients, Tape, Var};
