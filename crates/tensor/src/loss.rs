//! Loss functions used by CPDG pre-training.
//!
//! * Triplet margin loss with Euclidean distance — paper Eqs. (11) and (14).
//! * Binary cross-entropy with logits — paper Eq. (16) (the fused op lives on
//!   the tape; a convenience wrapper is re-exported here).

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Triplet margin loss (paper Eqs. 11/14):
///
/// `mean_i max(‖a_i − p_i‖₂ − ‖a_i − n_i‖₂ + margin, 0)`
///
/// over corresponding rows of `anchor`, `positive`, `negative`
/// (all `m × d`). Returns a `1×1` scalar variable.
pub fn triplet_margin(
    tape: &mut Tape,
    anchor: Var,
    positive: Var,
    negative: Var,
    margin: f32,
) -> Var {
    let d_pos = tape.euclidean_rows(anchor, positive);
    let d_neg = tape.euclidean_rows(anchor, negative);
    let diff = tape.sub(d_pos, d_neg);
    let shifted = tape.add_scalar(diff, margin);
    let hinged = tape.relu(shifted);
    tape.mean_all(hinged)
}

/// Mean BCE-with-logits against constant targets. Thin wrapper over
/// [`Tape::bce_with_logits`] so loss call-sites read uniformly.
pub fn bce_with_logits(tape: &mut Tape, logits: Var, targets: Matrix) -> Var {
    tape.bce_with_logits(logits, targets)
}

/// Link-prediction BCE over a batch of positive and negative logits
/// (paper Eq. 16: positives labelled 1, sampled non-edges labelled 0).
pub fn link_prediction_loss(tape: &mut Tape, pos_logits: Var, neg_logits: Var) -> Var {
    let n_pos = tape.value(pos_logits).rows();
    let n_neg = tape.value(neg_logits).rows();
    assert_eq!(tape.value(pos_logits).cols(), 1, "pos logits must be m×1");
    assert_eq!(tape.value(neg_logits).cols(), 1, "neg logits must be m×1");
    let lp = tape.bce_with_logits(pos_logits, Matrix::ones(n_pos, 1));
    let ln = tape.bce_with_logits(neg_logits, Matrix::zeros(n_neg, 1));
    tape.add(lp, ln)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_zero_when_well_separated() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[0.0, 0.0]]));
        let p = tape.constant(Matrix::from_rows(&[&[0.1, 0.0]]));
        let n = tape.constant(Matrix::from_rows(&[&[10.0, 0.0]]));
        let loss = triplet_margin(&mut tape, a, p, n, 1.0);
        assert!(tape.value(loss).get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn triplet_positive_when_violated() {
        // d_pos = 2, d_neg = 1, margin = 0.5 → loss = 1.5.
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[0.0]]));
        let p = tape.constant(Matrix::from_rows(&[&[2.0]]));
        let n = tape.constant(Matrix::from_rows(&[&[1.0]]));
        let loss = triplet_margin(&mut tape, a, p, n, 0.5);
        assert!((tape.value(loss).get(0, 0) - 1.5).abs() < 1e-4);
    }

    #[test]
    fn triplet_averages_over_batch() {
        // Row 0 violates by 1.0, row 1 satisfies → mean 0.5.
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[0.0], &[0.0]]));
        let p = tape.constant(Matrix::from_rows(&[&[1.0], &[0.0]]));
        let n = tape.constant(Matrix::from_rows(&[&[0.0], &[5.0]]));
        let loss = triplet_margin(&mut tape, a, p, n, 0.0);
        assert!((tape.value(loss).get(0, 0) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn triplet_gradient_pulls_anchor_toward_positive() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[0.0, 0.0]]));
        let p = tape.constant(Matrix::from_rows(&[&[1.0, 0.0]]));
        let n = tape.constant(Matrix::from_rows(&[&[-1.0, 0.0]]));
        let loss = triplet_margin(&mut tape, a, p, n, 2.0);
        let grads = tape.backward(loss);
        let ga = grads.get(a).unwrap();
        // Moving the anchor in +x (toward the positive, away from the
        // negative) must decrease the loss → gradient x-component < 0.
        assert!(ga.get(0, 0) < 0.0, "grad was {:?}", ga);
    }

    #[test]
    fn link_prediction_loss_is_ln2_times_two_at_zero_logits() {
        let mut tape = Tape::new();
        let pos = tape.constant(Matrix::zeros(4, 1));
        let neg = tape.constant(Matrix::zeros(4, 1));
        let loss = link_prediction_loss(&mut tape, pos, neg);
        let expect = 2.0 * std::f32::consts::LN_2;
        assert!((tape.value(loss).get(0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn link_prediction_loss_decreases_with_correct_logits() {
        let mut tape = Tape::new();
        let pos_good = tape.constant(Matrix::full(4, 1, 5.0));
        let neg_good = tape.constant(Matrix::full(4, 1, -5.0));
        let good = link_prediction_loss(&mut tape, pos_good, neg_good);
        let pos_bad = tape.constant(Matrix::full(4, 1, -5.0));
        let neg_bad = tape.constant(Matrix::full(4, 1, 5.0));
        let bad = link_prediction_loss(&mut tape, pos_bad, neg_bad);
        assert!(tape.value(good).get(0, 0) < tape.value(bad).get(0, 0));
    }
}
