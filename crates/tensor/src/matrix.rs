//! Dense row-major `f32` matrices.
//!
//! This is the storage layer underneath the autodiff tape: plain values with
//! no gradient tracking. All shapes in the CPDG stack are 2-D (a vector is a
//! `1×n` or `n×1` matrix), which keeps the op set small and fully testable.
//!
//! The matmul kernel uses the `i-k-j` loop order so the innermost loop walks
//! both `b` and `out` contiguously — the single most important layout
//! decision for a CPU-bound training stack. Large products are additionally
//! cache-blocked and split by row-blocks across scoped worker threads (see
//! [`Matrix::matmul_with_threads`]); because every output element still
//! accumulates over `k` in strictly ascending order, the parallel result is
//! bit-identical to the sequential one at any thread count.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum `m·k·n` multiply-add volume before the threaded path engages;
/// below this, thread spawn/join overhead dominates any win.
const PAR_FLOP_THRESHOLD: usize = 1 << 17;

/// Row-tile height of the cache-blocked kernel (rows of `a` kept hot).
const MM_ROW_TILE: usize = 32;

/// Depth-tile width of the cache-blocked kernel (rows of `b` kept hot).
const MM_K_TILE: usize = 64;

/// Minimum output rows worth handing to one worker thread.
const MIN_ROWS_PER_THREAD: usize = 8;

/// Cache-blocked `i-k-j` kernel computing output rows
/// `[row0, row0 + out_chunk.len() / n)` of `a · b` into `out_chunk`
/// (which must arrive zeroed). Accumulation over `k` is strictly ascending
/// for every output element, so the blocked, unblocked, and row-split
/// variants all produce bit-identical results.
fn matmul_block(a: &[f32], b: &[f32], out_chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 || k == 0 {
        return;
    }
    let rows = out_chunk.len() / n;
    let mut i0 = 0;
    while i0 < rows {
        let i1 = (i0 + MM_ROW_TILE).min(rows);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + MM_K_TILE).min(k);
            for i in i0..i1 {
                let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
                let out_row = &mut out_chunk[i * n..(i + 1) * n];
                for (kk, &av) in a_row.iter().enumerate().take(k1).skip(k0) {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += av * bv;
                    }
                }
            }
            k0 = k1;
        }
        i0 = i1;
    }
}

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (test convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        assert!(r > 0, "Matrix::from_rows: need at least one row");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vec(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(1, n, data)
    }

    /// A `n × 1` column vector.
    pub fn col_vec(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(n, 1, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a fresh `1 × cols` matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::from_vec(1, self.cols, self.row(r).to_vec())
    }

    /// Overwrites row `r` with the contents of `src` (a slice of `cols` values).
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: width mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Matrix product `self · rhs`, using the process-wide worker count
    /// from [`crate::threading::current_threads`] for large products.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with_threads(rhs, crate::threading::current_threads())
    }

    /// Matrix product `self · rhs` with an explicit worker-thread count.
    ///
    /// Small products (`m·k·n` below an internal threshold) and
    /// `threads <= 1` run the sequential cache-blocked kernel; larger ones
    /// split the output rows into contiguous blocks, one scoped worker per
    /// block. Each output element accumulates over the inner dimension in
    /// ascending order in every variant, so the result is bit-identical
    /// regardless of `threads` — this is the determinism contract the
    /// `parallel_determinism` test suite enforces.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul_with_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} · {}x{} has mismatched inner dims",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        cpdg_obs::counter!("matmul.dispatches").inc();
        cpdg_obs::counter!("matmul.flops").add(2 * (m * k * n) as u64);
        let mut out = Matrix::zeros(m, n);
        // Never spawn more workers than there are useful row blocks.
        let threads = threads.min(m.div_ceil(MIN_ROWS_PER_THREAD)).max(1);
        if threads <= 1 || m * k * n < PAR_FLOP_THRESHOLD {
            matmul_block(&self.data, &rhs.data, &mut out.data, 0, k, n);
            return out;
        }
        let rows_per = m.div_ceil(threads);
        let (a, b) = (&self.data, &rhs.data);
        std::thread::scope(|scope| {
            for (block, chunk) in out.data.chunks_mut(rows_per * n).enumerate() {
                scope.spawn(move || matmul_block(a, b, chunk, block * rows_per, k, n));
            }
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a fresh matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combine with another matrix of the same shape.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += rhs` elementwise.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// `self -= rhs` elementwise.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }

    /// `self *= s` elementwise.
    pub fn scale_inplace(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty matrices).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Column-wise mean, producing a `1 × cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        let inv = 1.0 / self.rows as f32;
        out.scale_inplace(inv);
        out
    }

    /// Column-wise maximum, producing a `1 × cols` row vector. Empty
    /// matrices yield zeros (mirrors [`Matrix::mean_rows`]).
    pub fn max_rows(&self) -> Matrix {
        if self.rows == 0 {
            return Matrix::zeros(1, self.cols);
        }
        let mut out = Matrix::from_vec(1, self.cols, self.row(0).to_vec());
        for r in 1..self.rows {
            for c in 0..self.cols {
                if self.data[r * self.cols + c] > out.data[c] {
                    out.data[c] = self.data[r * self.cols + c];
                }
            }
        }
        out
    }

    /// Vertically stacks `mats` (all must share `cols`).
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack: empty input");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontally concatenates two matrices with the same number of rows.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat: row mismatch");
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(rhs.row(r));
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Gathers the listed rows into a fresh matrix (rows may repeat).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "gather_rows: row {} out of {}", i, self.rows);
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_hand_checked() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let id = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_rect_shapes() {
        let a = Matrix::ones(3, 5);
        let b = Matrix::ones(5, 2);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.data().iter().all(|&x| (x - 5.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "mismatched inner dims")]
    fn matmul_bad_dims_panics() {
        Matrix::ones(2, 3).matmul(&Matrix::ones(2, 3));
    }

    /// Naive triple-loop reference in the same `k`-ascending accumulation
    /// order as the production kernel (bitwise comparable).
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows, a.cols, b.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    let av = a.data[i * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    acc += av * b.data[kk * n + j];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Deterministic pseudo-random fill without pulling in an RNG dep.
    fn lcg_matrix(rows: usize, cols: usize, mut state: u64) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_threaded_bitwise_matches_sequential() {
        // Shapes straddling the parallel threshold, including ragged row
        // splits (m not divisible by the thread count).
        for &(m, k, n) in &[(1, 1, 1), (7, 5, 3), (33, 17, 9), (64, 64, 64), (130, 70, 50)] {
            let a = lcg_matrix(m, k, 1);
            let b = lcg_matrix(k, n, 2);
            let seq = a.matmul_with_threads(&b, 1);
            assert_eq!(seq, matmul_reference(&a, &b), "{m}x{k}x{n} vs reference");
            for threads in [2, 3, 8] {
                let par = a.matmul_with_threads(&b, threads);
                assert_eq!(seq, par, "{m}x{k}x{n} with {threads} threads");
            }
        }
    }

    #[test]
    fn matmul_threaded_handles_degenerate_shapes() {
        for &(m, k, n) in &[(0, 4, 4), (4, 0, 4), (4, 4, 0), (0, 0, 0)] {
            let a = Matrix::zeros(m, k);
            let b = Matrix::zeros(k, n);
            for threads in [1, 4] {
                let c = a.matmul_with_threads(&b, threads);
                assert_eq!(c.shape(), (m, n));
                assert!(c.data().iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn mean_rows_is_column_mean() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 6.0]]);
        let m = a.mean_rows();
        assert_eq!(m, Matrix::row_vec(vec![2.0, 4.0]));
    }

    #[test]
    fn max_rows_is_column_max() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[5.0, 2.0]]);
        assert_eq!(a.max_rows(), Matrix::row_vec(vec![5.0, 9.0]));
        assert_eq!(Matrix::zeros(0, 2).max_rows(), Matrix::zeros(1, 2));
    }

    #[test]
    fn mean_rows_empty_is_zero() {
        let a = Matrix::zeros(0, 3);
        assert_eq!(a.mean_rows(), Matrix::zeros(1, 3));
    }

    #[test]
    fn hcat_widths_add() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.hcat(&b);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn vstack_heights_add() {
        let a = Matrix::row_vec(vec![1.0, 2.0]);
        let b = Matrix::row_vec(vec![3.0, 4.0]);
        let c = Matrix::vstack(&[&a, &b]);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn gather_rows_with_repeats() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0, 3.0], &[1.0, 1.0], &[3.0, 3.0]]));
    }

    #[test]
    fn sums_and_norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::row_vec(vec![1.0, -2.0]);
        assert_eq!(a.map(f32::abs), Matrix::row_vec(vec![1.0, 2.0]));
        let b = Matrix::row_vec(vec![10.0, 20.0]);
        assert_eq!(a.zip(&b, |x, y| x + y), Matrix::row_vec(vec![11.0, 18.0]));
    }

    #[test]
    fn add_sub_assign() {
        let mut a = Matrix::row_vec(vec![1.0, 2.0]);
        a.add_assign(&Matrix::row_vec(vec![3.0, 4.0]));
        assert_eq!(a, Matrix::row_vec(vec![4.0, 6.0]));
        a.sub_assign(&Matrix::row_vec(vec![1.0, 1.0]));
        assert_eq!(a, Matrix::row_vec(vec![3.0, 5.0]));
    }

    #[test]
    fn set_row_overwrites() {
        let mut a = Matrix::zeros(2, 2);
        a.set_row(1, &[7.0, 8.0]);
        assert_eq!(a.row(0), &[0.0, 0.0]);
        assert_eq!(a.row(1), &[7.0, 8.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::ones(1, 2);
        assert!(a.all_finite());
        a.set(0, 0, f32::NAN);
        assert!(!a.all_finite());
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[&[1.5, -2.5], &[0.0, 3.0]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
