//! Vanilla (Elman) RNN cell — the `Mem(·)` memory updater used by JODIE and
//! DyRep (paper Table III).

use crate::nn::init::xavier_uniform;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::Matrix;
use rand::Rng;

/// `h' = tanh(x·W + h·U + b)`.
#[derive(Debug, Clone)]
pub struct RnnCell {
    w: ParamId,
    u: ParamId,
    b: ParamId,
    in_dim: usize,
    hidden_dim: usize,
}

impl RnnCell {
    /// Registers a new cell under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        Self {
            w: store.register(format!("{name}.w"), xavier_uniform(rng, in_dim, hidden_dim)),
            u: store.register(format!("{name}.u"), xavier_uniform(rng, hidden_dim, hidden_dim)),
            b: store.register(format!("{name}.b"), Matrix::zeros(1, hidden_dim)),
            in_dim,
            hidden_dim,
        }
    }

    /// One step: returns the next hidden state (`m × hidden_dim`).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        assert_eq!(tape.value(x).cols(), self.in_dim, "RnnCell: input width mismatch");
        assert_eq!(tape.value(h).cols(), self.hidden_dim, "RnnCell: hidden width mismatch");
        let w = tape.param(store, self.w);
        let u = tape.param(store, self.u);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        let hu = tape.matmul(h, u);
        let s = tape.add(xw, hu);
        let pre = tape.add_broadcast_row(s, b);
        tape.tanh(pre)
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_bound() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cell = RnnCell::new(&mut store, &mut rng, "rnn", 4, 3);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(2, 4, 100.0));
        let h = tape.constant(Matrix::zeros(2, 3));
        let h2 = cell.forward(&mut tape, &store, x, h);
        assert_eq!(tape.value(h2).shape(), (2, 3));
        assert!(tape.value(h2).data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn three_params_receive_gradient() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = RnnCell::new(&mut store, &mut rng, "rnn", 2, 2);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(1, 2));
        let h = tape.constant(Matrix::full(1, 2, 0.3));
        let h2 = cell.forward(&mut tape, &store, x, h);
        let loss = tape.mean_all(h2);
        let grads = tape.backward(loss);
        assert_eq!(tape.param_grads(&grads).len(), 3);
    }

    #[test]
    fn recurrence_composes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = RnnCell::new(&mut store, &mut rng, "rnn", 2, 2);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(1, 2));
        let mut h = tape.constant(Matrix::zeros(1, 2));
        for _ in 0..5 {
            h = cell.forward(&mut tape, &store, x, h);
        }
        assert!(tape.value(h).all_finite());
    }
}
