//! Learnable harmonic time encoding `φ(Δt) = cos(Δt·ω + b)` (paper Eq. 2,
//! following the generic time encoding of TGAT [10]).
//!
//! Frequencies are initialised log-spaced (`ω_i = 10^{−9i/d}`), the standard
//! TGAT scheme: the encoder starts with channels that resolve time scales
//! from "immediate" to "very old" and tunes them during training.

use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::Matrix;

/// Learnable time encoder mapping a column of time deltas (`m×1`) to
/// `m × dim` features.
#[derive(Debug, Clone)]
pub struct TimeEncoder {
    omega: ParamId,
    phase: ParamId,
    dim: usize,
}

impl TimeEncoder {
    /// Registers a new encoder under `name`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let mut omega = Matrix::zeros(1, dim);
        for (i, w) in omega.data_mut().iter_mut().enumerate() {
            *w = 10f32.powf(-9.0 * i as f32 / dim.max(1) as f32);
        }
        Self {
            omega: store.register(format!("{name}.omega"), omega),
            phase: store.register(format!("{name}.phase"), Matrix::zeros(1, dim)),
            dim,
        }
    }

    /// Encodes `dt` (`m×1`, seconds or any consistent unit) to `m × dim`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, dt: Var) -> Var {
        assert_eq!(tape.value(dt).cols(), 1, "TimeEncoder: dt must be m×1");
        let omega = tape.param(store, self.omega);
        let phase = tape.param(store, self.phase);
        let scaled = tape.matmul(dt, omega); // outer product: m×dim
        let shifted = tape.add_broadcast_row(scaled, phase);
        tape.cos(shifted)
    }

    /// Convenience: encodes a plain slice of deltas without building the
    /// input matrix by hand.
    pub fn encode_slice(&self, tape: &mut Tape, store: &ParamStore, dts: &[f32]) -> Var {
        let dt = tape.constant(Matrix::col_vec(dts.to_vec()));
        self.forward(tape, store, dt)
    }

    /// Output width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delta_encodes_to_ones() {
        // cos(0·ω + 0) = 1 in every channel.
        let mut store = ParamStore::new();
        let enc = TimeEncoder::new(&mut store, "te", 8);
        let mut tape = Tape::new();
        let out = enc.encode_slice(&mut tape, &store, &[0.0, 0.0]);
        assert_eq!(tape.value(out).shape(), (2, 8));
        assert!(tape.value(out).data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn output_bounded_and_distinct_for_distinct_deltas() {
        let mut store = ParamStore::new();
        let enc = TimeEncoder::new(&mut store, "te", 16);
        let mut tape = Tape::new();
        let out = enc.encode_slice(&mut tape, &store, &[1.0, 1000.0]);
        let v = tape.value(out);
        assert!(v.data().iter().all(|&x| x.abs() <= 1.0));
        assert!(v.row_matrix(0).max_abs_diff(&v.row_matrix(1)) > 1e-3);
    }

    #[test]
    fn frequencies_are_trainable() {
        let mut store = ParamStore::new();
        let enc = TimeEncoder::new(&mut store, "te", 4);
        let mut tape = Tape::new();
        let out = enc.encode_slice(&mut tape, &store, &[2.5]);
        let loss = tape.mean_all(out);
        let grads = tape.backward(loss);
        assert_eq!(tape.param_grads(&grads).len(), 2, "omega and phase both trainable");
    }
}
