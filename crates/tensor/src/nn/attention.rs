//! Scaled dot-product attention over a set of neighbour feature rows.
//!
//! This single primitive serves three roles in the CPDG stack:
//! * the TGN temporal-attention embedding `f(·)` (paper Eq. 1, Table III);
//! * the DyRep attention message function `Msg(·)` (Table III);
//! * the EIE-attn checkpoint fusion `f_EI(·)` (Eq. 18).
//!
//! Neighbour sets in dynamic graphs are small and ragged, so the forward
//! operates per centre node (`1×d` query against `n×d` keys/values) and
//! callers stack the resulting rows with [`Tape::stack_rows`].

use crate::nn::linear::Linear;
use crate::param::ParamStore;
use crate::tape::{Tape, Var};
use rand::Rng;

/// Single-head attention with learned query/key/value/output projections.
#[derive(Debug, Clone)]
pub struct NeighborAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    attn_dim: usize,
    out_dim: usize,
}

impl NeighborAttention {
    /// Registers a new module under `name`.
    ///
    /// * `q_dim` — width of the query (centre node) features,
    /// * `kv_dim` — width of each neighbour feature row,
    /// * `attn_dim` — internal projection width,
    /// * `out_dim` — output width.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        q_dim: usize,
        kv_dim: usize,
        attn_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self {
            wq: Linear::new(store, rng, &format!("{name}.wq"), q_dim, attn_dim, false),
            wk: Linear::new(store, rng, &format!("{name}.wk"), kv_dim, attn_dim, false),
            wv: Linear::new(store, rng, &format!("{name}.wv"), kv_dim, attn_dim, false),
            wo: Linear::new(store, rng, &format!("{name}.wo"), attn_dim, out_dim, true),
            attn_dim,
            out_dim,
        }
    }

    /// Attends `query` (`1 × q_dim`) over `neighbors` (`n × kv_dim`, n ≥ 1),
    /// returning `1 × out_dim`.
    ///
    /// Callers with possibly-empty neighbour sets should include the centre
    /// node itself in the set (the TGN convention), which also gives
    /// isolated nodes a well-defined embedding.
    pub fn forward_one(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        query: Var,
        neighbors: Var,
    ) -> Var {
        assert_eq!(tape.value(query).rows(), 1, "forward_one: query must be 1×q_dim");
        assert!(
            tape.value(neighbors).rows() >= 1,
            "forward_one: need at least one neighbour row (include the centre node itself)"
        );
        let q = self.wq.forward(tape, store, query); // 1×a
        let k = self.wk.forward(tape, store, neighbors); // n×a
        let v = self.wv.forward(tape, store, neighbors); // n×a
        let kt = tape.transpose(k); // a×n
        let scores = tape.matmul(q, kt); // 1×n
        let scaled = tape.scale(scores, 1.0 / (self.attn_dim as f32).sqrt());
        let weights = tape.softmax_rows(scaled); // 1×n
        let mixed = tape.matmul(weights, v); // 1×a
        self.wo.forward(tape, store, mixed) // 1×out
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn module(seed: u64) -> (ParamStore, NeighborAttention) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let att = NeighborAttention::new(&mut store, &mut rng, "att", 4, 4, 8, 4);
        (store, att)
    }

    #[test]
    fn output_shape() {
        let (store, att) = module(0);
        let mut tape = Tape::new();
        let q = tape.constant(Matrix::ones(1, 4));
        let kv = tape.constant(Matrix::ones(5, 4));
        let out = att.forward_one(&mut tape, &store, q, kv);
        assert_eq!(tape.value(out).shape(), (1, 4));
    }

    #[test]
    fn single_neighbor_equals_its_value_projection() {
        // With one neighbour, softmax weight is exactly 1, so the output is
        // wo(wv(neighbor)) regardless of the query.
        let (store, att) = module(1);
        let mut tape = Tape::new();
        let q1 = tape.constant(Matrix::full(1, 4, 0.3));
        let q2 = tape.constant(Matrix::full(1, 4, -2.0));
        let kv = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let o1 = att.forward_one(&mut tape, &store, q1, kv);
        let o2 = att.forward_one(&mut tape, &store, q2, kv);
        assert!(tape.value(o1).max_abs_diff(tape.value(o2)) < 1e-6);
    }

    #[test]
    fn permuting_neighbors_is_invariant() {
        let (store, att) = module(2);
        let mut tape = Tape::new();
        let q = tape.constant(Matrix::from_rows(&[&[0.5, -0.5, 0.2, 0.9]]));
        let kv_a = tape.constant(Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]));
        let kv_b = tape.constant(Matrix::from_rows(&[
            &[0.0, 0.0, 1.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
        ]));
        let oa = att.forward_one(&mut tape, &store, q, kv_a);
        let ob = att.forward_one(&mut tape, &store, q, kv_b);
        assert!(tape.value(oa).max_abs_diff(tape.value(ob)) < 1e-5);
    }

    #[test]
    fn all_projections_trainable() {
        let (store, att) = module(3);
        let mut tape = Tape::new();
        let q = tape.constant(Matrix::ones(1, 4));
        let kv = tape.constant(Matrix::ones(3, 4));
        let out = att.forward_one(&mut tape, &store, q, kv);
        let loss = tape.mean_all(out);
        let grads = tape.backward(loss);
        // wq, wk, wv (no bias) + wo weight + wo bias = 5 tensors.
        assert_eq!(tape.param_grads(&grads).len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one neighbour")]
    fn rejects_empty_neighbor_set() {
        let (store, att) = module(4);
        let mut tape = Tape::new();
        let q = tape.constant(Matrix::ones(1, 4));
        let kv = tape.constant(Matrix::zeros(0, 4));
        att.forward_one(&mut tape, &store, q, kv);
    }
}
