//! LSTM cell — the third `Mem(·)` memory-updater option the paper lists
//! (§III-B: "a time series function, such as RNN, LSTM and GRU").

use crate::nn::init::xavier_uniform;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::Matrix;
use rand::Rng;

/// One LSTM cell. Given input `x (m×in)`, hidden `h (m×d)`, cell `c (m×d)`:
///
/// ```text
/// i  = σ(x·Wi + h·Ui + bi)      input gate
/// f  = σ(x·Wf + h·Uf + bf)      forget gate
/// o  = σ(x·Wo + h·Uo + bo)      output gate
/// g  = tanh(x·Wg + h·Ug + bg)   candidate
/// c' = f∘c + i∘g
/// h' = o∘tanh(c')
/// ```
///
/// The forget-gate bias is initialised to 1 (the standard trick that keeps
/// early memories alive).
#[derive(Debug, Clone)]
pub struct LstmCell {
    w: [ParamId; 4],
    u: [ParamId; 4],
    b: [ParamId; 4],
    in_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// Registers a new cell under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        fn gate<R: Rng + ?Sized>(
            store: &mut ParamStore,
            rng: &mut R,
            name: &str,
            g: &str,
            in_dim: usize,
            hidden_dim: usize,
            bias_init: f32,
        ) -> (ParamId, ParamId, ParamId) {
            (
                store.register(format!("{name}.w_{g}"), xavier_uniform(rng, in_dim, hidden_dim)),
                store.register(format!("{name}.u_{g}"), xavier_uniform(rng, hidden_dim, hidden_dim)),
                store.register(format!("{name}.b_{g}"), Matrix::full(1, hidden_dim, bias_init)),
            )
        }
        let (wi, ui, bi) = gate(store, rng, name, "i", in_dim, hidden_dim, 0.0);
        let (wf, uf, bf) = gate(store, rng, name, "f", in_dim, hidden_dim, 1.0);
        let (wo, uo, bo) = gate(store, rng, name, "o", in_dim, hidden_dim, 0.0);
        let (wg, ug, bg) = gate(store, rng, name, "g", in_dim, hidden_dim, 0.0);
        Self {
            w: [wi, wf, wo, wg],
            u: [ui, uf, uo, ug],
            b: [bi, bf, bo, bg],
            in_dim,
            hidden_dim,
        }
    }

    /// One step: returns `(h', c')`, each `m × hidden_dim`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        h: Var,
        c: Var,
    ) -> (Var, Var) {
        assert_eq!(tape.value(x).cols(), self.in_dim, "LstmCell: input width mismatch");
        assert_eq!(tape.value(h).cols(), self.hidden_dim, "LstmCell: hidden width mismatch");
        assert_eq!(tape.value(c).cols(), self.hidden_dim, "LstmCell: cell width mismatch");

        let pre = |tape: &mut Tape, i: usize| {
            let w = tape.param(store, self.w[i]);
            let u = tape.param(store, self.u[i]);
            let b = tape.param(store, self.b[i]);
            let xw = tape.matmul(x, w);
            let hu = tape.matmul(h, u);
            let s = tape.add(xw, hu);
            tape.add_broadcast_row(s, b)
        };
        let i_pre = pre(tape, 0);
        let i = tape.sigmoid(i_pre);
        let f_pre = pre(tape, 1);
        let f = tape.sigmoid(f_pre);
        let o_pre = pre(tape, 2);
        let o = tape.sigmoid(o_pre);
        let g_pre = pre(tape, 3);
        let g = tape.tanh(g_pre);

        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_new = tape.add(fc, ig);
        let tc = tape.tanh(c_new);
        let h_new = tape.mul(o, tc);
        (h_new, c_new)
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cell(seed: u64) -> (ParamStore, LstmCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = LstmCell::new(&mut store, &mut rng, "lstm", 3, 4);
        (store, c)
    }

    #[test]
    fn shapes_and_bounds() {
        let (store, cell) = cell(0);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(2, 3, 5.0));
        let h = tape.constant(Matrix::zeros(2, 4));
        let c = tape.constant(Matrix::zeros(2, 4));
        let (h2, c2) = cell.forward(&mut tape, &store, x, h, c);
        assert_eq!(tape.value(h2).shape(), (2, 4));
        assert_eq!(tape.value(c2).shape(), (2, 4));
        // |h| ≤ 1 always (o·tanh(c')); from zero cell state |c'| ≤ 1 too.
        assert!(tape.value(h2).data().iter().all(|&v| v.abs() <= 1.0));
        assert!(tape.value(c2).data().iter().all(|&v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let (store, _) = cell(1);
        let bf = store.lookup("lstm.b_f").unwrap();
        assert!(store.value(bf).data().iter().all(|&v| v == 1.0));
        let bi = store.lookup("lstm.b_i").unwrap();
        assert!(store.value(bi).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn twelve_tensors_receive_gradient() {
        let (store, cell) = cell(2);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(2, 3));
        let h = tape.constant(Matrix::full(2, 4, 0.2));
        let c = tape.constant(Matrix::full(2, 4, -0.1));
        let (h2, _) = cell.forward(&mut tape, &store, x, h, c);
        let loss = tape.mean_all(h2);
        let grads = tape.backward(loss);
        assert_eq!(tape.param_grads(&grads).len(), 12, "4 gates × (W,U,b)");
    }

    #[test]
    fn cell_state_carries_information() {
        let (store, cell) = cell(3);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(1, 3));
        let h = tape.constant(Matrix::zeros(1, 4));
        let c_a = tape.constant(Matrix::full(1, 4, 0.9));
        let c_b = tape.constant(Matrix::full(1, 4, -0.9));
        let (ha, _) = cell.forward(&mut tape, &store, x, h, c_a);
        let (hb, _) = cell.forward(&mut tape, &store, x, h, c_b);
        assert!(tape.value(ha).max_abs_diff(tape.value(hb)) > 1e-4);
    }
}
