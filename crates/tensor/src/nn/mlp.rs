//! Multi-layer perceptron with a configurable activation.

use crate::nn::linear::Linear;
use crate::param::ParamStore;
use crate::tape::{Tape, Var};
use rand::Rng;

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Rectified linear unit (default).
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation (affine stack).
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// An MLP: `dims = [in, h1, …, out]` with `activation` between layers and no
/// activation after the last layer (callers add their own heads).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Registers a new MLP under `name`; layers are `{name}.0`, `{name}.1`, …
    ///
    /// # Panics
    /// Panics when fewer than two dims are given.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        dims: &[usize],
        activation: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp::new: need at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.{i}"), w[0], w[1], true))
            .collect();
        Self { layers, activation }
    }

    /// Forward pass over `m × in` input.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, store, x);
            if i != last {
                x = self.activation.apply(tape, x);
            }
        }
        x
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_through_stack() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[4, 8, 3], Activation::Relu);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(5, 4));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
    }

    #[test]
    fn single_layer_is_affine() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut store, &mut rng, "aff", &[2, 2], Activation::Relu);
        // One layer → no activation applied, outputs may be negative.
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[-10.0, -10.0]]));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (1, 2));
    }

    #[test]
    fn all_params_trainable() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&mut store, &mut rng, "t", &[3, 5, 1], Activation::Tanh);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(2, 3));
        let y = mlp.forward(&mut tape, &store, x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        // 2 layers × (weight + bias) = 4 gradient entries.
        assert_eq!(tape.param_grads(&grads).len(), 4);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn rejects_empty_dims() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        Mlp::new(&mut store, &mut rng, "bad", &[3], Activation::Relu);
    }
}
