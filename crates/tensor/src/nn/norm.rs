//! Layer normalisation: `y = γ ∘ (x − μ_row)/σ_row + β` with learnable
//! per-channel gain and bias.

use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::Matrix;

/// A layer-norm module over `dim`-wide rows.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers a new module under `name` (γ = 1, β = 0).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        Self {
            gamma: store.register(format!("{name}.gamma"), Matrix::ones(1, dim)),
            beta: store.register(format!("{name}.beta"), Matrix::zeros(1, dim)),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalises each row of `x` (`m × dim`).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        assert_eq!(tape.value(x).cols(), self.dim, "LayerNorm: width mismatch");
        let normed = tape.normalize_rows(x, self.eps);
        let g = tape.param(store, self.gamma);
        let b = tape.param(store, self.beta);
        let scaled = tape.mul_broadcast_row(normed, g);
        tape.add_broadcast_row(scaled, b)
    }

    /// Channel width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_layernorm_standardises_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[10.0, 10.0, 30.0, 30.0]]));
        let y = ln.forward(&mut tape, &store, x);
        let v = tape.value(y);
        for r in 0..2 {
            let mean: f32 = v.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = v.row(r).iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_are_trainable() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[0.5, -0.5, 2.0]]));
        let y = ln.forward(&mut tape, &store, x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        assert_eq!(tape.param_grads(&grads).len(), 2);
    }

    #[test]
    fn scale_invariance_of_input() {
        // LayerNorm output is invariant to a per-row affine rescale of x.
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[10.0, 20.0, 30.0]]));
        let ya = ln.forward(&mut tape, &store, a);
        let yb = ln.forward(&mut tape, &store, b);
        assert!(tape.value(ya).max_abs_diff(tape.value(yb)) < 1e-4);
    }
}
