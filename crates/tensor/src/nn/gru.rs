//! Gated recurrent unit cell — the `Mem(·)` memory updater used by TGN
//! (paper Table III) and by the EIE-GRU fine-tuning fusion (Eq. 18).

use crate::nn::init::xavier_uniform;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::Matrix;
use rand::Rng;

/// One GRU cell. Given input `x (m×in)` and hidden state `h (m×d)`:
///
/// ```text
/// z  = σ(x·Wz + h·Uz + bz)          update gate
/// r  = σ(x·Wr + h·Ur + br)          reset gate
/// n  = tanh(x·Wn + (r∘h)·Un + bn)   candidate
/// h' = (1−z)∘n + z∘h
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    w: [ParamId; 3],
    u: [ParamId; 3],
    b: [ParamId; 3],
    in_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers a new cell under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        fn gate<R: Rng + ?Sized>(
            store: &mut ParamStore,
            rng: &mut R,
            name: &str,
            g: &str,
            in_dim: usize,
            hidden_dim: usize,
        ) -> (ParamId, ParamId, ParamId) {
            (
                store.register(format!("{name}.w_{g}"), xavier_uniform(rng, in_dim, hidden_dim)),
                store.register(format!("{name}.u_{g}"), xavier_uniform(rng, hidden_dim, hidden_dim)),
                store.register(format!("{name}.b_{g}"), Matrix::zeros(1, hidden_dim)),
            )
        }
        let (wz, uz, bz) = gate(store, rng, name, "z", in_dim, hidden_dim);
        let (wr, ur, br) = gate(store, rng, name, "r", in_dim, hidden_dim);
        let (wn, un, bn) = gate(store, rng, name, "n", in_dim, hidden_dim);
        Self { w: [wz, wr, wn], u: [uz, ur, un], b: [bz, br, bn], in_dim, hidden_dim }
    }

    /// One step: returns the next hidden state (`m × hidden_dim`).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        assert_eq!(tape.value(x).cols(), self.in_dim, "GruCell: input width mismatch");
        assert_eq!(tape.value(h).cols(), self.hidden_dim, "GruCell: hidden width mismatch");
        assert_eq!(tape.value(x).rows(), tape.value(h).rows(), "GruCell: batch mismatch");

        let gate_pre = |tape: &mut Tape, i: usize, hx: Var| {
            let w = tape.param(store, self.w[i]);
            let u = tape.param(store, self.u[i]);
            let b = tape.param(store, self.b[i]);
            let xw = tape.matmul(x, w);
            let hu = tape.matmul(hx, u);
            let s = tape.add(xw, hu);
            tape.add_broadcast_row(s, b)
        };

        let z_pre = gate_pre(tape, 0, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = gate_pre(tape, 1, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let n_pre = gate_pre(tape, 2, rh);
        let n = tape.tanh(n_pre);

        // h' = (1−z)∘n + z∘h = n − z∘n + z∘h
        let zn = tape.mul(z, n);
        let zh = tape.mul(z, h);
        let n_minus_zn = tape.sub(n, zn);
        tape.add(n_minus_zn, zh)
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cell(seed: u64, in_dim: usize, d: usize) -> (ParamStore, GruCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(&mut store, &mut rng, "gru", in_dim, d);
        (store, cell)
    }

    #[test]
    fn output_shape() {
        let (store, cell) = cell(0, 4, 6);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(3, 4));
        let h = tape.constant(Matrix::zeros(3, 6));
        let h2 = cell.forward(&mut tape, &store, x, h);
        assert_eq!(tape.value(h2).shape(), (3, 6));
        assert!(tape.value(h2).all_finite());
    }

    #[test]
    fn output_bounded_by_tanh_gate_mix() {
        // From zero hidden state, |h'| ≤ 1: h' is a convex mix of tanh(..) and 0.
        let (store, cell) = cell(1, 3, 5);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(2, 3, 10.0));
        let h = tape.constant(Matrix::zeros(2, 5));
        let h2 = cell.forward(&mut tape, &store, x, h);
        assert!(tape.value(h2).data().iter().all(|&v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn state_changes_with_input() {
        let (store, cell) = cell(2, 2, 4);
        let mut tape = Tape::new();
        let h = tape.constant(Matrix::zeros(1, 4));
        let x1 = tape.constant(Matrix::row_vec(vec![1.0, 0.0]));
        let x2 = tape.constant(Matrix::row_vec(vec![0.0, 1.0]));
        let h1 = cell.forward(&mut tape, &store, x1, h);
        let h2 = cell.forward(&mut tape, &store, x2, h);
        assert!(tape.value(h1).max_abs_diff(tape.value(h2)) > 1e-4);
    }

    #[test]
    fn all_nine_weight_tensors_get_gradient() {
        let (store, cell) = cell(3, 2, 3);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(2, 2));
        let h = tape.constant(Matrix::full(2, 3, 0.5));
        let h2 = cell.forward(&mut tape, &store, x, h);
        let loss = tape.mean_all(h2);
        let grads = tape.backward(loss);
        // 3 gates × (W, U, b) = 9 parameters.
        assert_eq!(tape.param_grads(&grads).len(), 9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (s1, c1) = cell(9, 3, 3);
        let (s2, c2) = cell(9, 3, 3);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let x1 = t1.constant(Matrix::ones(1, 3));
        let h1 = t1.constant(Matrix::zeros(1, 3));
        let x2 = t2.constant(Matrix::ones(1, 3));
        let h2 = t2.constant(Matrix::zeros(1, 3));
        let o1 = c1.forward(&mut t1, &s1, x1, h1);
        let o2 = c2.forward(&mut t2, &s2, x2, h2);
        assert_eq!(t1.value(o1), t2.value(o2));
    }
}
