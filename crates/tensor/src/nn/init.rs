//! Weight initialisation. The paper (§V-C) initialises all weight matrices
//! with Xavier initialisation; memory states start at zero.

use crate::matrix::Matrix;
use rand::{Rng, RngExt};

/// Xavier/Glorot uniform initialisation: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))` for a `fan_in × fan_out` matrix.
pub fn xavier_uniform(rng: &mut (impl Rng + ?Sized), fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    for v in m.data_mut() {
        *v = rng.random_range(-a..a);
    }
    m
}

/// Uniform initialisation in `(-bound, bound)`.
pub fn uniform(rng: &mut (impl Rng + ?Sized), rows: usize, cols: usize, bound: f32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.random_range(-bound..bound);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 64, 32);
        let a = (6.0 / 96.0f32).sqrt();
        assert_eq!(m.shape(), (64, 32));
        assert!(m.data().iter().all(|&x| x.abs() <= a));
        // Not all zero and roughly centred.
        assert!(m.frobenius_norm() > 0.0);
        assert!(m.mean().abs() < 0.05);
    }

    #[test]
    fn xavier_is_seed_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(3), 8, 8);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(3), 8, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(&mut rng, 10, 10, 0.1);
        assert!(m.data().iter().all(|&x| x.abs() <= 0.1));
    }
}
