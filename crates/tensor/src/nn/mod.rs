//! Neural-network building blocks on top of the autodiff tape.

pub mod attention;
pub mod gru;
pub mod init;
pub mod linear;
pub mod lstm;
pub mod mlp;
pub mod norm;
pub mod rnn;
pub mod time;

pub use attention::NeighborAttention;
pub use gru::GruCell;
pub use linear::Linear;
pub use lstm::LstmCell;
pub use mlp::{Activation, Mlp};
pub use norm::LayerNorm;
pub use rnn::RnnCell;
pub use time::TimeEncoder;
