//! Affine layer `y = x·W + b`.

use crate::nn::init::xavier_uniform;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::Matrix;
use rand::Rng;

/// A fully-connected layer. Weights live in a [`ParamStore`]; the struct
/// itself only holds handles, so it is `Copy`-cheap to clone and share.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new `in_dim → out_dim` layer under `name` (parameters are
    /// `{name}.weight` / `{name}.bias`).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let weight = store.register(format!("{name}.weight"), xavier_uniform(rng, in_dim, out_dim));
        let bias = bias.then(|| store.register(format!("{name}.bias"), Matrix::zeros(1, out_dim)));
        Self { weight, bias, in_dim, out_dim }
    }

    /// Applies the layer to `x` (`m × in_dim`), producing `m × out_dim`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        assert_eq!(
            tape.value(x).cols(),
            self.in_dim,
            "Linear::forward: expected input width {}, got {}",
            self.in_dim,
            tape.value(x).cols()
        );
        let w = tape.param(store, self.weight);
        let y = tape.matmul(x, w);
        match self.bias {
            Some(b) => {
                let bv = tape.param(store, b);
                tape.add_broadcast_row(y, bv)
            }
            None => y,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter handle.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, "l", 3, 2, true);
        // Overwrite with known values.
        *store.value_mut(layer.weight) = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = store.lookup("l.bias").unwrap();
        *store.value_mut(b) = Matrix::row_vec(vec![10.0, 20.0]);

        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y), &Matrix::from_rows(&[&[14.0, 25.0]]));
    }

    #[test]
    fn no_bias_variant() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, "nb", 2, 2, false);
        assert!(store.lookup("nb.bias").is_none());
        assert_eq!(store.len(), 1);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(4, 2));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (4, 2));
    }

    #[test]
    fn gradient_flows_to_weight_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, "g", 2, 2, true);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(3, 2));
        let y = layer.forward(&mut tape, &store, x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        let pg = tape.param_grads(&grads);
        assert_eq!(pg.len(), 2, "both weight and bias receive gradient");
    }

    #[test]
    #[should_panic(expected = "expected input width")]
    fn rejects_wrong_width() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, "w", 3, 2, true);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::ones(1, 4));
        layer.forward(&mut tape, &store, x);
    }
}
