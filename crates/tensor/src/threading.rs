//! Global worker-thread configuration for the parallel hot paths.
//!
//! The CPDG stack has exactly one threading knob: a process-wide worker
//! count consulted by the blocked matmul in [`crate::matrix`] and by the
//! batched sampler in the core crate. The resolution order is
//!
//! 1. an explicit [`set_threads`] call (the CLI's `--threads` flag),
//! 2. the `CPDG_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`] (capped at 16).
//!
//! The knob only controls *how much* hardware is used, never *what* is
//! computed: every parallel kernel in the workspace is written so its
//! output is bit-identical at any thread count (see DESIGN.md, "Parallel
//! execution").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit override installed via [`set_threads`] (0 = unset).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved default: `CPDG_THREADS` env var, else hardware.
static DEFAULT: OnceLock<usize> = OnceLock::new();

/// Upper bound on auto-detected parallelism; explicit settings may exceed it.
const MAX_AUTO_THREADS: usize = 16;

/// Parses a `CPDG_THREADS` value: `Ok(n)` for a positive integer,
/// `Err(why)` for anything else (empty, non-numeric, zero, …).
fn parse_threads_env(raw: &str) -> Result<usize, &'static str> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1"),
        Ok(n) => Ok(n),
        Err(_) => Err("not a positive integer"),
    }
}

fn hardware_default() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_AUTO_THREADS)
}

/// Rejection path for a bad `CPDG_THREADS` value: warns through the
/// observability layer (naming the rejected value and the fallback) and
/// returns the hardware default. Reached only from inside the `DEFAULT`
/// memoisation, so the warning fires at most once per process.
fn reject_threads_env(raw: &str, why: &'static str) -> usize {
    let fallback = hardware_default();
    cpdg_obs::warn!(
        "tensor.threading",
        "ignoring invalid CPDG_THREADS value";
        value = raw,
        reason = why,
        fallback = fallback,
    );
    fallback
}

fn env_or_hardware_default() -> usize {
    match std::env::var("CPDG_THREADS") {
        Ok(raw) => match parse_threads_env(&raw) {
            Ok(n) => n,
            Err(why) => reject_threads_env(&raw, why),
        },
        Err(_) => hardware_default(),
    }
}

/// The worker-thread count currently in effect (always ≥ 1).
pub fn current_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    *DEFAULT.get_or_init(env_or_hardware_default)
}

/// Installs an explicit worker-thread count, overriding `CPDG_THREADS` and
/// hardware detection. `n` is clamped to at least 1.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// Clears any [`set_threads`] override, restoring the env/hardware default.
pub fn reset_threads() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parser_accepts_positive_integers() {
        assert_eq!(parse_threads_env("4"), Ok(4));
        assert_eq!(parse_threads_env(" 12 "), Ok(12));
    }

    #[test]
    fn env_parser_rejects_garbage_zero_and_negatives() {
        assert!(parse_threads_env("0").is_err());
        assert!(parse_threads_env("-3").is_err());
        assert!(parse_threads_env("many").is_err());
        assert!(parse_threads_env("").is_err());
        assert!(parse_threads_env("4.5").is_err());
    }

    #[test]
    fn invalid_env_value_warns_through_obs() {
        // Drive the rejection path directly rather than via the env var:
        // DEFAULT may already be memoised when this test runs, and other
        // tests read CPDG_THREADS concurrently.
        let cap = cpdg_obs::capture();
        let why = parse_threads_env("not-a-number").unwrap_err();
        let n = reject_threads_env("not-a-number", why);
        assert!(n >= 1);
        let records = cap.records_for("tensor.threading");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].level, cpdg_obs::Level::Warn);
        assert_eq!(
            records[0].field("value"),
            Some(&cpdg_obs::Value::Str("not-a-number".into()))
        );
        assert!(records[0].field("fallback").is_some());
    }

    #[test]
    fn override_round_trip() {
        // Single test touching the global override to avoid cross-test races.
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0); // clamped to 1
        assert_eq!(current_threads(), 1);
        reset_threads();
        assert!(current_threads() >= 1);
    }
}
