//! Global worker-thread configuration for the parallel hot paths.
//!
//! The CPDG stack has exactly one threading knob: a process-wide worker
//! count consulted by the blocked matmul in [`crate::matrix`] and by the
//! batched sampler in the core crate. The resolution order is
//!
//! 1. an explicit [`set_threads`] call (the CLI's `--threads` flag),
//! 2. the `CPDG_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`] (capped at 16).
//!
//! The knob only controls *how much* hardware is used, never *what* is
//! computed: every parallel kernel in the workspace is written so its
//! output is bit-identical at any thread count (see DESIGN.md, "Parallel
//! execution").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit override installed via [`set_threads`] (0 = unset).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved default: `CPDG_THREADS` env var, else hardware.
static DEFAULT: OnceLock<usize> = OnceLock::new();

/// Upper bound on auto-detected parallelism; explicit settings may exceed it.
const MAX_AUTO_THREADS: usize = 16;

fn env_or_hardware_default() -> usize {
    if let Ok(s) = std::env::var("CPDG_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_AUTO_THREADS)
}

/// The worker-thread count currently in effect (always ≥ 1).
pub fn current_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    *DEFAULT.get_or_init(env_or_hardware_default)
}

/// Installs an explicit worker-thread count, overriding `CPDG_THREADS` and
/// hardware detection. `n` is clamped to at least 1.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// Clears any [`set_threads`] override, restoring the env/hardware default.
pub fn reset_threads() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_round_trip() {
        // Single test touching the global override to avoid cross-test races.
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0); // clamped to 1
        assert_eq!(current_threads(), 1);
        reset_threads();
        assert!(current_threads() >= 1);
    }
}
