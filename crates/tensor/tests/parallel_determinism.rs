//! Bit-exactness of the threaded blocked matmul.
//!
//! The parallel kernel splits output rows across workers but keeps the
//! per-element reduction order (ascending k) identical to the sequential
//! kernel, so results must be *bitwise* equal — not merely close — at any
//! thread count. These tests pin that contract with `matmul_with_threads`
//! directly (no global thread knob, so they are race-free under the
//! parallel test runner).

use cpdg_tensor::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix (splitmix-style LCG), including
/// exact zeros to exercise the kernel's sparsity skip.
fn lcg_matrix(rows: usize, cols: usize, mut state: u64) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 33) as f32 / (1u64 << 31) as f32; // [0, 1)
            if u < 0.1 {
                0.0
            } else {
                u - 0.5
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_bitwise_eq(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: flat index {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_shapes_are_thread_count_invariant(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a = lcg_matrix(m, k, seed.wrapping_mul(3).wrapping_add(1));
        let b = lcg_matrix(k, n, seed.wrapping_mul(7).wrapping_add(2));
        let reference = a.matmul_with_threads(&b, 1);
        for threads in [2, 3, 8] {
            let par = a.matmul_with_threads(&b, threads);
            assert_bitwise_eq(&par, &reference, &format!("{m}x{k}·{k}x{n} @ {threads}t"));
        }
    }
}

#[test]
fn large_square_matmul_is_thread_count_invariant() {
    // 256³ = 16.7 MFLOP — far above the parallel threshold, many row
    // blocks per worker, blocks not evenly divisible by the tile sizes.
    let a = lcg_matrix(256, 256, 11);
    let b = lcg_matrix(256, 256, 23);
    let reference = a.matmul_with_threads(&b, 1);
    for threads in [2, 5, 8, 16] {
        let par = a.matmul_with_threads(&b, threads);
        assert_bitwise_eq(&par, &reference, &format!("256³ @ {threads}t"));
    }
}

#[test]
fn ragged_tall_and_wide_shapes_are_thread_count_invariant() {
    // Shapes chosen so row blocks straddle tile boundaries (MM_ROW_TILE=32,
    // MM_K_TILE=64) and the last worker gets a short remainder chunk.
    for &(m, k, n) in &[(130usize, 70usize, 50usize), (33, 129, 65), (257, 3, 97), (9, 512, 9)] {
        let a = lcg_matrix(m, k, (m * 1000 + k) as u64);
        let b = lcg_matrix(k, n, (k * 1000 + n) as u64);
        let reference = a.matmul_with_threads(&b, 1);
        for threads in [2, 7, 16] {
            let par = a.matmul_with_threads(&b, threads);
            assert_bitwise_eq(&par, &reference, &format!("{m}x{k}·{k}x{n} @ {threads}t"));
        }
    }
}

#[test]
fn thread_count_exceeding_rows_degrades_gracefully() {
    // More threads than rows: the kernel must clamp, not spawn empty
    // workers or panic, and stay bit-identical.
    let a = lcg_matrix(3, 300, 5);
    let b = lcg_matrix(300, 300, 6);
    let reference = a.matmul_with_threads(&b, 1);
    let par = a.matmul_with_threads(&b, 64);
    assert_bitwise_eq(&par, &reference, "3x300·300x300 @ 64t");
}

#[test]
fn global_knob_override_round_trips_through_matmul() {
    // The public `matmul` routes through the global thread knob; exercise
    // the override path end-to-end against the explicit-thread kernel.
    cpdg_tensor::threading::set_threads(4);
    let a = lcg_matrix(96, 96, 41);
    let b = lcg_matrix(96, 96, 42);
    let via_knob = a.matmul(&b);
    cpdg_tensor::threading::reset_threads();
    let reference = a.matmul_with_threads(&b, 1);
    assert_bitwise_eq(&via_knob, &reference, "global knob @ 4t");
}
