//! Algebraic property tests for the dense matrix kernels — the foundations
//! every gradient in the stack rests on.

use cpdg_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associativity(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-2, "f32 associativity within tolerance");
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(4, 2),
    ) {
        let sum = b.zip(&c, |x, y| x + y);
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-2);
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn hcat_then_split_identity(a in arb_matrix(3, 2), b in arb_matrix(3, 3)) {
        let cat = a.hcat(&b);
        prop_assert_eq!(cat.shape(), (3, 5));
        for r in 0..3 {
            prop_assert_eq!(&cat.row(r)[..2], a.row(r));
            prop_assert_eq!(&cat.row(r)[2..], b.row(r));
        }
    }

    #[test]
    fn gather_rows_then_mean_matches_manual(a in arb_matrix(5, 3)) {
        let g = a.gather_rows(&[0, 2, 4]);
        let mean = g.mean_rows();
        for c in 0..3 {
            let manual = (a.get(0, c) + a.get(2, c) + a.get(4, c)) / 3.0;
            prop_assert!((mean.get(0, c) - manual).abs() < 1e-5);
        }
    }

    #[test]
    fn max_rows_dominates_mean_rows(a in arb_matrix(4, 3)) {
        let mx = a.max_rows();
        let mn = a.mean_rows();
        for c in 0..3 {
            prop_assert!(mx.get(0, c) >= mn.get(0, c) - 1e-6);
        }
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in arb_matrix(3, 3), b in arb_matrix(3, 3)) {
        let sum = a.zip(&b, |x, y| x + y);
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-3);
    }

    #[test]
    fn vstack_preserves_rows(a in arb_matrix(2, 3), b in arb_matrix(3, 3)) {
        let v = Matrix::vstack(&[&a, &b]);
        prop_assert_eq!(v.shape(), (5, 3));
        prop_assert_eq!(v.row(0), a.row(0));
        prop_assert_eq!(v.row(4), b.row(2));
    }

    #[test]
    fn serde_round_trip_exact(a in arb_matrix(3, 4)) {
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(a, back);
    }
}
