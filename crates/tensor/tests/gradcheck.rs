//! Finite-difference verification of every backward rule.
//!
//! For each op (and for the composite NN modules) we build a scalar loss
//! from a perturbable input, compare the autodiff gradient against central
//! differences, and require agreement within f32-appropriate tolerances.

use cpdg_tensor::nn::{Activation, GruCell, Mlp, NeighborAttention, RnnCell, TimeEncoder};
use cpdg_tensor::{loss, Matrix, ParamStore, Tape, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Central-difference step. f32 arithmetic means we want a fairly large h.
const H: f32 = 1e-2;
/// Accepted absolute + relative error between autodiff and numeric grads.
const TOL_ABS: f32 = 2e-2;
const TOL_REL: f32 = 5e-2;

/// Checks autodiff gradient of `f` at `x0` against central differences.
/// `f` must rebuild the whole computation from a fresh tape each call.
fn gradcheck(x0: &Matrix, f: impl Fn(&mut Tape, Var) -> Var) {
    // Autodiff gradient.
    let mut tape = Tape::new();
    let x = tape.constant(x0.clone());
    let l = f(&mut tape, x);
    assert_eq!(tape.value(l).shape(), (1, 1), "gradcheck: loss must be scalar");
    let grads = tape.backward(l);
    let auto = grads.get(x).cloned().unwrap_or_else(|| Matrix::zeros(x0.rows(), x0.cols()));

    // Numeric gradient, element by element.
    let eval = |m: &Matrix| -> f32 {
        let mut t = Tape::new();
        let v = t.constant(m.clone());
        let l = f(&mut t, v);
        t.value(l).get(0, 0)
    };
    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += H;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= H;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * H);
        let a = auto.data()[i];
        let err = (a - numeric).abs();
        let scale = a.abs().max(numeric.abs()).max(1.0);
        assert!(
            err <= TOL_ABS + TOL_REL * scale,
            "gradcheck mismatch at flat index {i}: autodiff={a}, numeric={numeric}"
        );
    }
}

fn smooth_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul_grad(x in smooth_matrix(3, 4)) {
        let w = Matrix::from_vec(4, 2, (0..8).map(|i| 0.1 * i as f32 - 0.3).collect());
        gradcheck(&x, |t, v| {
            let wv = t.constant(w.clone());
            let y = t.matmul(v, wv);
            t.mean_all(y)
        });
    }

    #[test]
    fn sigmoid_tanh_relu_chain_grad(x in smooth_matrix(2, 3)) {
        gradcheck(&x, |t, v| {
            let s = t.sigmoid(v);
            let h = t.tanh(s);
            // relu kinks at 0; shift away from it so central differences
            // stay valid.
            let shifted = t.add_scalar(h, 2.0);
            let r = t.relu(shifted);
            t.mean_all(r)
        });
    }

    #[test]
    fn softmax_grad(x in smooth_matrix(2, 4)) {
        let mask = Matrix::from_vec(2, 4, vec![1.0, 0.0, 2.0, 0.0, 0.0, 1.0, 0.0, 3.0]);
        gradcheck(&x, |t, v| {
            let s = t.softmax_rows(v);
            let m = t.constant(mask.clone());
            let p = t.mul(s, m);
            t.sum_all(p)
        });
    }

    #[test]
    fn cos_grad(x in smooth_matrix(2, 2)) {
        gradcheck(&x, |t, v| {
            let c = t.cos(v);
            t.mean_all(c)
        });
    }

    #[test]
    fn mul_add_sub_scale_grad(x in smooth_matrix(2, 3)) {
        gradcheck(&x, |t, v| {
            let a = t.scale(v, 1.7);
            let b = t.add(a, v);
            let c = t.mul(b, v);
            let d = t.sub(c, v);
            let e = t.add_scalar(d, 0.3);
            t.sum_all(e)
        });
    }

    #[test]
    fn concat_and_gather_grad(x in smooth_matrix(3, 2)) {
        gradcheck(&x, |t, v| {
            let g = t.gather_rows(v, &[0, 2, 2, 1]);
            let c = t.concat_cols(g, g);
            t.mean_all(c)
        });
    }

    #[test]
    fn mean_rows_and_broadcast_grad(x in smooth_matrix(3, 3)) {
        gradcheck(&x, |t, v| {
            let mu = t.mean_rows(v);
            let y = t.add_broadcast_row(v, mu);
            t.sum_all(y)
        });
    }

    #[test]
    fn euclidean_distance_grad(x in smooth_matrix(3, 4)) {
        // Fixed second operand far away so sqrt stays smooth.
        let other = Matrix::full(3, 4, 3.0);
        gradcheck(&x, |t, v| {
            let o = t.constant(other.clone());
            let d = t.euclidean_rows(v, o);
            t.mean_all(d)
        });
    }

    #[test]
    fn bce_with_logits_grad(x in smooth_matrix(4, 1)) {
        let targets = Matrix::from_vec(4, 1, vec![1.0, 0.0, 1.0, 0.0]);
        gradcheck(&x, |t, v| t.bce_with_logits(v, targets.clone()));
    }

    #[test]
    fn exp_ln_grad(x in smooth_matrix(2, 3)) {
        gradcheck(&x, |t, v| {
            let e = t.exp(v);
            // shift well above the ln clamp so central differences are valid
            let shifted = t.add_scalar(e, 0.5);
            let l = t.ln(shifted);
            t.mean_all(l)
        });
    }

    #[test]
    fn mul_broadcast_row_grad(x in smooth_matrix(3, 4)) {
        let gain = Matrix::row_vec(vec![0.5, -1.0, 2.0, 0.25]);
        gradcheck(&x, |t, v| {
            let g = t.constant(gain.clone());
            let y = t.mul_broadcast_row(v, g);
            t.sum_all(y)
        });
    }

    #[test]
    fn normalize_rows_grad(x in smooth_matrix(2, 4)) {
        // Rows with some spread so sigma is well away from 0.
        let mut x = x;
        x.data_mut()[0] += 3.0;
        x.data_mut()[7] -= 3.0;
        let mask = Matrix::from_vec(2, 4, vec![1.0, 0.0, 2.0, -1.0, 0.5, 1.5, 0.0, 1.0]);
        gradcheck(&x, |t, v| {
            let n = t.normalize_rows(v, 1e-5);
            let m = t.constant(mask.clone());
            let p = t.mul(n, m);
            t.sum_all(p)
        });
    }

    #[test]
    fn transpose_stack_grad(x in smooth_matrix(1, 3)) {
        gradcheck(&x, |t, v| {
            let s = t.stack_rows(&[v, v]);
            let tr = t.transpose(s);
            let p = t.matmul(s, tr);
            t.mean_all(p)
        });
    }

    #[test]
    fn sqrt_grad(x in smooth_matrix(2, 3)) {
        // sqrt clamps negatives to 0 in forward; shift the input well above
        // 0 so both the clamp and the 1/(2√x) blow-up stay out of reach.
        gradcheck(&x, |t, v| {
            let shifted = t.add_scalar(v, 2.5);
            let s = t.sqrt(shifted);
            t.mean_all(s)
        });
    }

    #[test]
    fn sq_dist_rows_grad(x in smooth_matrix(3, 4)) {
        // Squared distance is a polynomial — smooth everywhere, including
        // at zero distance (unlike euclidean_rows).
        let other = Matrix::full(3, 4, 0.8);
        gradcheck(&x, |t, v| {
            let o = t.constant(other.clone());
            let d = t.sq_dist_rows(v, o);
            t.mean_all(d)
        });
    }

    #[test]
    fn link_prediction_loss_grad(x in smooth_matrix(4, 1)) {
        // Perturb the positive logits; fixed negatives keep the BCE halves
        // coupled only through the final add.
        let neg = Matrix::from_vec(3, 1, vec![-0.5, 0.3, 1.2]);
        gradcheck(&x, |t, v| {
            let n = t.constant(neg.clone());
            loss::link_prediction_loss(t, v, n)
        });
    }

    #[test]
    fn triplet_margin_grad(x in smooth_matrix(2, 3)) {
        // Positive/negative chosen so the hinge is strictly active
        // (loss > 0) and distances stay away from 0, keeping f smooth.
        let pos = Matrix::full(2, 3, 4.0);
        let neg = Matrix::full(2, 3, -4.0);
        gradcheck(&x, |t, v| {
            let p = t.constant(pos.clone());
            let n = t.constant(neg.clone());
            loss::triplet_margin(t, v, p, n, 50.0)
        });
    }
}

#[test]
fn threaded_matmul_grad() {
    // 8×64 · 64×256 = 131 072 flops — at or above the parallel threshold,
    // so on multi-core hosts both the forward and the backward (transposed)
    // matmuls run through the threaded blocked kernel. Gradients must still
    // match central differences; bit-equality with the sequential kernel is
    // covered separately in parallel_determinism.rs.
    let mut rng_state = 0x5EEDu64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let x0 = Matrix::from_vec(8, 64, (0..8 * 64).map(|_| next()).collect());
    let w = Matrix::from_vec(64, 256, (0..64 * 256).map(|_| next() * 0.2).collect());
    gradcheck(&x0, |t, v| {
        let wv = t.constant(w.clone());
        let y = t.matmul(v, wv);
        t.mean_all(y)
    });
}

#[test]
fn max_rows_grad_routes_to_argmax() {
    // Distinct entries so the argmax is stable under the FD perturbation.
    let x0 = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0]]);
    gradcheck(&x0, |t, v| {
        let m = t.max_rows(v);
        t.sum_all(m)
    });
}

#[test]
fn lstm_cell_grad() {
    use cpdg_tensor::nn::LstmCell;
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(21);
    let cell = LstmCell::new(&mut store, &mut rng, "l", 3, 4);
    let x0 = Matrix::from_vec(2, 3, vec![0.4, -0.2, 0.7, 0.1, 0.5, -0.6]);
    gradcheck(&x0, |t, v| {
        let h = t.constant(Matrix::full(2, 4, 0.2));
        let c = t.constant(Matrix::full(2, 4, -0.3));
        let (h2, c2) = cell.forward(t, &store, v, h, c);
        let s = t.add(h2, c2);
        t.mean_all(s)
    });
}

#[test]
fn layernorm_grad() {
    use cpdg_tensor::nn::LayerNorm;
    let mut store = ParamStore::new();
    let ln = LayerNorm::new(&mut store, "ln", 4);
    let x0 = Matrix::from_vec(2, 4, vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.2, 2.5, -0.7]);
    gradcheck(&x0, |t, v| {
        let y = ln.forward(t, &store, v);
        let mask = t.constant(Matrix::from_vec(2, 4, vec![1.0, 0.5, -1.0, 2.0, 0.0, 1.0, 1.0, -0.5]));
        let p = t.mul(y, mask);
        t.sum_all(p)
    });
}

#[test]
fn gru_cell_grad_wrt_input_and_state() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(11);
    let cell = GruCell::new(&mut store, &mut rng, "g", 3, 4);
    let x0 = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.8, -0.6, 0.1, 0.4]);
    gradcheck(&x0, |t, v| {
        let h = t.constant(Matrix::full(2, 4, 0.25));
        let h2 = cell.forward(t, &store, v, h);
        t.mean_all(h2)
    });
    let h0 = Matrix::from_vec(2, 4, vec![0.1; 8]);
    gradcheck(&h0, |t, v| {
        let x = t.constant(Matrix::full(2, 3, 0.3));
        let h2 = cell.forward(t, &store, x, v);
        t.mean_all(h2)
    });
}

#[test]
fn rnn_cell_grad() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let cell = RnnCell::new(&mut store, &mut rng, "r", 2, 3);
    let x0 = Matrix::from_vec(2, 2, vec![0.4, -0.7, 0.2, 0.9]);
    gradcheck(&x0, |t, v| {
        let h = t.constant(Matrix::full(2, 3, -0.1));
        let h2 = cell.forward(t, &store, v, h);
        t.mean_all(h2)
    });
}

#[test]
fn mlp_grad() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let mlp = Mlp::new(&mut store, &mut rng, "m", &[3, 5, 1], Activation::Tanh);
    let x0 = Matrix::from_vec(2, 3, vec![0.3, -0.4, 0.5, 0.7, -0.1, 0.2]);
    gradcheck(&x0, |t, v| {
        let y = mlp.forward(t, &store, v);
        t.mean_all(y)
    });
}

#[test]
fn attention_grad_wrt_neighbors() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(8);
    let att = NeighborAttention::new(&mut store, &mut rng, "a", 3, 3, 4, 3);
    let kv0 = Matrix::from_vec(3, 3, vec![0.5, -0.1, 0.2, 0.3, 0.8, -0.4, -0.2, 0.1, 0.6]);
    gradcheck(&kv0, |t, v| {
        let q = t.constant(Matrix::row_vec(vec![0.2, -0.3, 0.5]));
        let o = att.forward_one(t, &store, q, v);
        t.mean_all(o)
    });
}

#[test]
fn time_encoder_grad_wrt_dt() {
    let mut store = ParamStore::new();
    let enc = TimeEncoder::new(&mut store, "te", 6);
    let dt0 = Matrix::col_vec(vec![0.5, 1.5, 2.5]);
    gradcheck(&dt0, |t, v| {
        let e = enc.forward(t, &store, v);
        t.mean_all(e)
    });
}

#[test]
fn param_gradients_match_numeric() {
    // End-to-end: perturb a *parameter* in the store and compare the
    // harvested param gradient against finite differences on the stored
    // value — this exercises the mount/harvest path.
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::from_vec(2, 2, vec![0.3, -0.2, 0.5, 0.1]));

    let run = |store: &ParamStore| -> f32 {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let wv = tape.param(store, w);
        let y = tape.matmul(x, wv);
        let s = tape.sigmoid(y);
        let l = tape.mean_all(s);
        tape.value(l).get(0, 0)
    };

    let mut tape = Tape::new();
    let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
    let wv = tape.param(&store, w);
    let y = tape.matmul(x, wv);
    let s = tape.sigmoid(y);
    let l = tape.mean_all(s);
    let grads = tape.backward(l);
    let pg = tape.param_grads(&grads);
    assert_eq!(pg.len(), 1);
    let auto = &pg[0].1;

    for i in 0..4 {
        let orig = store.value(w).data()[i];
        store.value_mut(w).data_mut()[i] = orig + H;
        let plus = run(&store);
        store.value_mut(w).data_mut()[i] = orig - H;
        let minus = run(&store);
        store.value_mut(w).data_mut()[i] = orig;
        let numeric = (plus - minus) / (2.0 * H);
        assert!(
            (auto.data()[i] - numeric).abs() < TOL_ABS,
            "param grad {i}: auto={} numeric={}",
            auto.data()[i],
            numeric
        );
    }
}
