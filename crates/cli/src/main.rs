//! `cpdg` — command-line interface for the CPDG reproduction.
//!
//! ```text
//! cpdg generate  --preset amazon --scale 0.5 --seed 0 --out data.csv
//! cpdg stats     --data data.csv
//! cpdg pretrain  --data data.csv --encoder tgn --dim 32 --epochs 5 --out model.json
//! cpdg pretrain  --data data.csv --out model.json --ckpt-dir ckpts --ckpt-every 50
//! cpdg pretrain  --data data.csv --out model.json --resume ckpts
//! cpdg finetune  --data data.csv --model model.json --strategy eie-gru --epochs 3
//! cpdg serve     --model model.json --port 7654 --memory-out state.json
//! cpdg query     --addr 127.0.0.1:7654 --send "SCORE 0 42"
//! ```
//!
//! Data files are JODIE-format CSVs (`user_id,item_id,timestamp,
//! state_label,features…`) — the format the paper's Wikipedia/MOOC/Reddit
//! datasets ship in.
//!
//! Failures map to distinct exit codes (see [`CpdgError::exit_code`]), so
//! shell drivers can tell a corrupt model file from a diverged run from a
//! resumable interruption.
//!
//! Observability: `--log-level`/`--log-format` configure the stderr
//! diagnostic stream, and `--run-dir <dir>` records provenance artefacts
//! (`run.json` manifest + `metrics.jsonl` per-epoch records) for
//! `pretrain` and `finetune` runs.

// The CLI's job is printing to the console; the workspace-wide
// disallowed-macros lint applies to library crates only.
#![allow(clippy::disallowed_macros)]

mod args;

use args::Args;
use cpdg_core::chaos::{load_jodie_chaos, FaultHook, FaultPlan, RetryPolicy};
use cpdg_core::checkpoint::CheckpointConfig;
use cpdg_core::error::{CpdgError, CpdgResult};
use cpdg_core::finetune::{finetune_link_prediction, FinetuneConfig, FinetuneStrategy};
use cpdg_core::model_io::ModelFile;
use cpdg_core::pipeline::auto_time_scale;
use cpdg_core::pretrain::{pretrain_resumable, PretrainConfig, PretrainRuntime};
use cpdg_core::{EieFusion, FS_STORAGE};
use cpdg_dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor};
use cpdg_graph::loader::{write_jodie_csv, LoadMode, LoadOptions};
use cpdg_graph::{generate, GraphStats, SyntheticConfig};
use cpdg_obs::Json;
use cpdg_tensor::optim::Adam;
use cpdg_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
cpdg — Contrastive Pre-Training for Dynamic Graph Neural Networks

USAGE:
  cpdg generate --preset <amazon|gowalla|meituan|wikipedia|mooc|reddit>
                [--scale X] [--seed N] --out <file.csv>
  cpdg stats    --data <file.csv>
  cpdg pretrain --data <file.csv> [--encoder tgn|jodie|dyrep] [--dim N]
                [--epochs N] [--beta X] [--seed N] [--vanilla] [--threads N]
                [--ckpt-dir <dir>] [--ckpt-every N] [--keep N]
                [--resume <dir>] [--chaos-plan <plan.json>] --out <model.json>
  cpdg finetune --data <file.csv> --model <model.json>
                [--strategy full|eie-mean|eie-attn|eie-gru] [--epochs N]
                [--seed N] [--threads N]
  cpdg serve    --model <model.json> [--port N] [--workers N] [--queue N]
                [--shards N] [--batch N] [--cache on|off]
                [--deadline-ms N] [--breaker-k N]
                [--breaker-probe N] [--wal-dir <dir>]
                [--fsync always|os|every-N] [--wal-segment-bytes N]
                [--memory-in <state.json>] [--memory-out <state.json>]
                [--continual --epoch-dir <dir>] [--train-window X]
                [--train-stride X] [--train-cadence-ms N] [--train-gate X]
                [--train-min-events N] [--train-probation N]
                [--ingest <script>] [--chaos-plan <plan.json>] [--seed N]
                [--replicas N] [--scrub-interval <ms>]
  cpdg query    (--addr <host:port> | --port N)
                [--send \"<request line>\" | --status]
  cpdg scrub    <dir> [<dir> …] [--replicas N] [--chaos-plan <plan.json>]

Serving: `serve` loads a pre-trained model and answers a line protocol
(EVENT src dst t [field] / EMB node [t] / SCORE src dst [t] /
RELOAD path / STATS / STATUS / PING) on 127.0.0.1; --port 0 (default)
picks a free port, printed as `listening on …`. Requests beyond --queue
are shed with `ERR overloaded`; --deadline-ms bounds each inference
(a zero budget is rejected at admission); after --breaker-k
consecutive inference failures a circuit breaker serves degraded static
embeddings until a probe (every --breaker-probe requests) succeeds.
SIGTERM/SIGINT drains gracefully: admitted requests finish, then
--memory-out persists the DGNN memory (CRC-sealed, crash-safe).
--ingest <script> applies a request file in-process instead of serving
TCP — the reference path the end-to-end smoke test compares against.
`query` connects, sends --send (or each stdin line), and prints replies;
--status sends STATUS and prints the server's key=value health line.

Crash recovery: with --wal-dir, every EVENT is appended to a CRC-framed
write-ahead log *before* it mutates memory, and startup replays the log
(plus the newest checkpoint) so a process killed at any instant — even
kill -9 — restarts bit-identical to an uninterrupted run. --fsync picks
the durability/throughput trade: `always` (default) syncs per append,
`every-N` batches syncs, `os` leaves flushing to the page cache. A clean
drain writes a checkpoint and truncates replayed segments.
--wal-segment-bytes caps each log segment (default 1 MiB); a full
segment is sealed — CRC-footered and replicated — and a fresh one
started.

Continual pre-training: --continual (requires --wal-dir and
--epoch-dir; refused with --ingest, exit 2) runs a supervised trainer
beside serving. It slices the acknowledged stream into overlapping
windows (--train-window span, --train-stride step), runs cross-window
contrastive updates in a private parameter store, and every
--train-cadence-ms emits a CRC-sealed candidate epoch under
--epoch-dir. A candidate serves only after the validation gate passes
(finite parameters; held-out loss within --train-gate x the serving
epoch's) and the versioned hot-swap succeeds; rejected candidates move
to <epoch-dir>/quarantine/ and are counted in STATUS (trainer.*).
A promotion that trips the breaker within --train-probation cycles is
rolled back automatically. The sealed pointer <epoch-dir>/promoted.cpdg
is rewritten atomically on every promotion, so a process killed at any
instant — even kill -9 mid-promotion — restarts serving the last
promoted epoch (a corrupt pointer is warned about and the --model base
epoch serves instead). Trainer crashes never touch serving: panics are
caught, counted, and retried with deterministic backoff.

Self-healing artifacts: every sealed artifact (WAL checkpoints, epoch
files, the promoted pointer) is published as --replicas N copies
(default 2; 1 disables) — <name> plus <name>.r1, …, each an atomic
fsynced write — and sealed WAL segments gain the same copies at
rotation. Any read that finds a corrupt copy falls through to the next
and rewrites the bad one from a good one; only when every copy is bad
does a typed refusal (exit 4, naming the artifact) surface. A WAL
segment with no sound copy is quarantined and recovery reports the gap
(records are never silently skipped). --scrub-interval <ms> (default 0
= off) runs a supervised background scrubber that re-verifies every
artifact's CRC on a byte-budgeted cadence and repairs rot before the
next crash needs the copy; STATUS reports scrub.* counters. `cpdg
scrub <dir> …` runs the same sweep offline, printing a report and
exiting 4 if any artifact has no sound copy left.

Coalescing & caching: --batch N (default 1) lets each worker drain up
to N contiguous queued queries and run them as one fused forward pass;
--cache on (default off) replays repeat queries from a temporal
embedding cache invalidated per-node by EVENTs and wholesale by
RELOAD/recovery. Both are latency knobs only: replies are bit-identical
to --batch 1 --cache off at any shard count (STATUS reports batches,
cache_hits, cache_misses, cache_invalidations, cache_entries).

Sharding: --shards N (default 1) partitions WAL streams, breaker
replicas, and admission queues by node id; each shard's log lives under
<wal-dir>/wal.shard<k>/ with globally-sequenced records that recovery
merge-replays in ingestion order. Replies are bit-identical at any
shard count; a checkpoint written under one --shards value is refused
(typed error) under another — restart with the same count.

Signals: `pretrain` also traps SIGTERM/SIGINT — it publishes a final
checkpoint (with --ckpt-dir) and exits with code 8 so schedulers can tell
a clean preemption from a crash; resume with --resume.

Data loading (stats / pretrain / finetune):
  --strict-load     fail on the first malformed CSV row (default)
  --lenient-load    quarantine malformed rows instead of failing; the report
                    (count, line numbers, reasons) lands in run.json
  --max-events N    refuse data files with more than N interaction events
  --max-nodes N     refuse data files whose node universe exceeds N

Fault injection (pretrain / finetune):
  --chaos-plan <f>  read a JSON fault plan and inject deterministic faults at
                    the named points (storage.write, ckpt.save, loader.row, …).
                    Transient faults are retried with exponential backoff;
                    permanent ones surface as typed errors. See DESIGN.md.

Common options (every command):
  --log-level <error|warn|info|debug|trace>  stderr diagnostic verbosity
                                             (default info)
  --log-format <text|json>                   stderr diagnostic rendering
  --run-dir <dir>   write provenance artefacts into <dir>: run.json
                    (config, seed, threads, dataset stats, wall-clock,
                    counter totals) and metrics.jsonl (one record per
                    pre-train / fine-tune epoch)

Parallelism: hot paths (blocked matmul, batched subgraph sampling) fan out
across worker threads. The pool size defaults to the machine's available
parallelism, capped at 16; override with --threads N or the CPDG_THREADS
environment variable. Results are bit-identical at any thread count.

Crash safety: with --ckpt-dir, pre-training snapshots its full state every
--ckpt-every batches (keeping the --keep newest files plus a `latest`
pointer); --resume <dir> continues from the newest valid checkpoint there,
skipping corrupt ones. Rebuild with the same --encoder/--dim/--seed as the
original run.
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Console sink + optional run directory; the `RunDir` handle stays
    // alive for the whole command so metric events land in metrics.jsonl.
    let run_dir = match init_observability(&args) {
        Ok(rd) => rd,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(e.exit_code());
        }
    };
    // `scrub` takes directory operands; every other subcommand refuses
    // positionals explicitly (they were always a mistake).
    let result = match args.command.as_deref() {
        Some("scrub") => cmd_scrub(&args),
        _ => match args.no_positionals() {
            Err(e) => Err(CpdgError::Invalid(e)),
            Ok(()) => match args.command.as_deref() {
                Some("generate") => cmd_generate(&args),
                Some("stats") => cmd_stats(&args),
                Some("pretrain") => cmd_pretrain(&args, run_dir.as_ref()),
                Some("finetune") => cmd_finetune(&args, run_dir.as_ref()),
                Some("serve") => cmd_serve(&args),
                Some("query") => cmd_query(&args),
                Some(other) => Err(CpdgError::Invalid(format!("unknown command {other:?}"))),
                None => Err(CpdgError::Invalid("no command given".to_string())),
            },
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CpdgError::Invalid(_)) {
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

/// Installs the stderr console sink from `--log-level`/`--log-format` and
/// opens `--run-dir` (creating it) when given.
fn init_observability(args: &Args) -> CpdgResult<Option<cpdg_obs::RunDir>> {
    let level: cpdg_obs::Level = args
        .get_or("log-level", "info")
        .parse()
        .map_err(CpdgError::Invalid)?;
    let format: cpdg_obs::LogFormat = args
        .get_or("log-format", "text")
        .parse()
        .map_err(CpdgError::Invalid)?;
    cpdg_obs::init(level, format);
    match args.get("run-dir") {
        None => Ok(None),
        Some(d) => cpdg_obs::RunDir::create(Path::new(d))
            .map(Some)
            .map_err(|e| CpdgError::io(d, e)),
    }
}

/// The shared skeleton of a `run.json` manifest: tool identity, command,
/// lifecycle status, seed, worker-thread count, config, and dataset stats.
fn run_manifest(command: &str, status: &str, seed: u64, config: Json, dataset: Json) -> Json {
    Json::obj(vec![
        ("tool", Json::from("cpdg")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("command", Json::from(command)),
        ("status", Json::from(status)),
        ("seed", Json::U64(seed)),
        (
            "threads",
            Json::U64(cpdg_tensor::threading::current_threads() as u64),
        ),
        ("config", config),
        ("dataset", dataset),
    ])
}

/// Dataset provenance block for `run.json`, including the ingestion
/// quarantine summary when lenient loading set any rows aside.
fn dataset_json(path: &str, loaded: &cpdg_graph::loader::LoadedGraph) -> Json {
    let s = GraphStats::compute(&loaded.graph);
    let mut d = Json::obj(vec![
        ("path", Json::from(path)),
        ("users", Json::U64(loaded.num_users as u64)),
        ("items", Json::U64(loaded.num_items as u64)),
        ("active_nodes", Json::U64(s.active_nodes as u64)),
        ("events", Json::U64(s.edges as u64)),
        ("t_min", Json::F64(s.t_min)),
        ("t_max", Json::F64(s.t_max)),
        ("quarantined", Json::U64(loaded.quarantine.total as u64)),
    ]);
    if !loaded.quarantine.is_empty() {
        let rows = loaded
            .quarantine
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("line", Json::U64(r.line as u64)),
                    ("reason", Json::from(r.reason.as_str())),
                ])
            })
            .collect();
        d.push(
            "quarantine_truncated",
            Json::Bool(loaded.quarantine.truncated()),
        );
        d.push("quarantined_rows", Json::Arr(rows));
    }
    d
}

/// Final-manifest decorations shared by pretrain and finetune: wall-clock
/// plus the process-wide counter and span-histogram totals.
fn finish_manifest(m: &mut Json, started: std::time::Instant) {
    m.push(
        "wall_clock_secs",
        Json::F64(started.elapsed().as_secs_f64()),
    );
    m.push("counters", cpdg_obs::metrics::counters_json());
    m.push("spans", cpdg_obs::metrics::histograms_json());
}

fn cmd_generate(args: &Args) -> CpdgResult<()> {
    let preset = args.get_or("preset", "amazon");
    let seed: u64 = args.get_num("seed", 0)?;
    let scale: f64 = args.get_num("scale", 1.0)?;
    let out = args.require("out")?;
    let cfg = match preset {
        "amazon" => SyntheticConfig::amazon_like(seed),
        "gowalla" => SyntheticConfig::gowalla_like(seed),
        "meituan" => SyntheticConfig::meituan_like(seed),
        "wikipedia" => SyntheticConfig::wikipedia_like(seed),
        "mooc" => SyntheticConfig::mooc_like(seed),
        "reddit" => SyntheticConfig::reddit_like(seed),
        other => return Err(CpdgError::Invalid(format!("unknown preset {other:?}"))),
    }
    .scaled(scale);
    let ds = generate(&cfg);
    let file = File::create(out).map_err(|e| CpdgError::io(out, e))?;
    write_jodie_csv(&ds.graph, ds.num_users, file).map_err(|e| CpdgError::io(out, e))?;
    println!(
        "wrote {} events ({} users, {} items, {} labels) to {out}",
        ds.graph.num_events(),
        ds.num_users,
        ds.num_items,
        ds.graph.labels().len()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> CpdgResult<()> {
    let data = args.require("data")?;
    let loaded = load_data(data, &load_options(args)?, &FaultHook::none())?;
    let s = GraphStats::compute(&loaded.graph);
    println!("file           : {data}");
    println!(
        "users / items  : {} / {}",
        loaded.num_users, loaded.num_items
    );
    println!("active nodes   : {}", s.active_nodes);
    println!("events         : {}", s.edges);
    println!("density        : {:.6}%", s.density * 100.0);
    println!(
        "time span      : {:.0} ({:.0} … {:.0})",
        s.timespan(),
        s.t_min,
        s.t_max
    );
    println!("mean degree    : {:.2}", s.mean_degree);
    println!(
        "labels         : {} ({:.2}% positive)",
        loaded.graph.labels().len(),
        s.label_positive_rate * 100.0
    );
    if !loaded.quarantine.is_empty() {
        println!(
            "quarantined    : {} malformed row(s) set aside",
            loaded.quarantine.total
        );
    }
    Ok(())
}

fn parse_encoder(name: &str) -> CpdgResult<EncoderKind> {
    match name {
        "tgn" => Ok(EncoderKind::Tgn),
        "jodie" => Ok(EncoderKind::Jodie),
        "dyrep" => Ok(EncoderKind::DyRep),
        other => Err(CpdgError::Invalid(format!(
            "unknown encoder {other:?} (expected tgn|jodie|dyrep)"
        ))),
    }
}

/// Applies the `--threads N` override to the global worker-thread knob.
/// Without the option the pool keeps its default (CPDG_THREADS env or
/// hardware parallelism); thread count never changes numeric results.
fn apply_threads(args: &Args) -> CpdgResult<()> {
    if let Some(v) = args.get("threads") {
        let n: usize = v
            .parse()
            .map_err(|_| CpdgError::Invalid(format!("invalid value for --threads: {v:?}")))?;
        if n == 0 {
            return Err(CpdgError::Invalid("--threads must be >= 1".to_string()));
        }
        cpdg_tensor::threading::set_threads(n);
    }
    Ok(())
}

fn cmd_pretrain(args: &Args, run: Option<&cpdg_obs::RunDir>) -> CpdgResult<()> {
    let started = std::time::Instant::now();
    apply_threads(args)?;
    let data = args.require("data")?;
    let out = args.require("out")?;
    let encoder_kind = parse_encoder(args.get_or("encoder", "tgn"))?;
    let dim: usize = args.get_num("dim", 32)?;
    let epochs: usize = args.get_num("epochs", 5)?;
    let beta: f32 = args.get_num("beta", 0.5)?;
    let seed: u64 = args.get_num("seed", 0)?;
    let vanilla = args.has_flag("vanilla");

    let resume_dir = args.get("resume");
    let ckpt_dir = args.get("ckpt-dir").or(resume_dir);
    let chaos = chaos_hook(args)?;
    // Trap SIGTERM/SIGINT so a preempted run checkpoints before exiting
    // (exit code 8, resumable with --resume).
    sig::install();
    let runtime = PretrainRuntime {
        checkpoint: match ckpt_dir {
            Some(d) => Some(CheckpointConfig {
                dir: PathBuf::from(d),
                every_n_steps: args.get_num("ckpt-every", 50)?,
                keep: args.get_num("keep", 3)?,
            }),
            None => None,
        },
        resume: resume_dir.is_some(),
        chaos: chaos.clone(),
        stop: Some(&sig::STOP),
        ..PretrainRuntime::default()
    };

    let load_opts = load_options(args)?;
    let loaded = load_data(data, &load_opts, &chaos)?;
    let chaos_plan_json = match args.get("chaos-plan") {
        Some(p) => Json::from(p),
        None => Json::Null,
    };
    let config_json = Json::obj(vec![
        ("encoder", Json::from(encoder_kind.name())),
        ("dim", Json::U64(dim as u64)),
        ("epochs", Json::U64(epochs as u64)),
        ("beta", Json::F64(beta as f64)),
        ("vanilla", Json::Bool(vanilla)),
        (
            "lenient_load",
            Json::Bool(matches!(load_opts.mode, LoadMode::Lenient)),
        ),
        ("chaos_plan", chaos_plan_json),
        ("out", Json::from(out)),
    ]);
    let data_json = dataset_json(data, &loaded);
    // First manifest write: provenance survives even if the run crashes.
    if let Some(run) = run {
        let m = run_manifest(
            "pretrain",
            "running",
            seed,
            config_json.clone(),
            data_json.clone(),
        );
        run.write_manifest(&m)
            .map_err(|e| CpdgError::io("run.json", e))?;
    }
    let graph = loaded.graph;
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let dcfg = DgnnConfig::preset(encoder_kind, dim, auto_time_scale(&graph));
    let mut encoder =
        DgnnEncoder::new(&mut store, &mut rng, "enc", graph.num_nodes(), dcfg.clone());
    let head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", dim);
    let mut opt = Adam::new(2e-2);
    let mut pcfg = PretrainConfig {
        epochs,
        seed,
        ..Default::default()
    };
    pcfg.objective.beta = beta;
    if vanilla {
        pcfg.objective.use_tc = false;
        pcfg.objective.use_sc = false;
    }

    println!(
        "pre-training {} (dim {dim}, {} mode) on {} events for {epochs} epoch(s)…",
        encoder_kind.name(),
        if vanilla { "vanilla" } else { "CPDG" },
        graph.num_events()
    );
    let result = pretrain_resumable(
        &mut encoder,
        &head,
        &mut store,
        &mut opt,
        &graph,
        &pcfg,
        &runtime,
    )?;
    for (i, e) in result.epoch_losses.iter().enumerate() {
        println!(
            "  epoch {:>2}: total {:.4} (tlp {:.4}, tc {:.4}, sc {:.4})",
            i + 1,
            e.total,
            e.tlp,
            e.tc,
            e.sc
        );
    }
    if result.skipped_steps > 0 {
        println!(
            "  divergence guard skipped {} poisoned step(s)",
            result.skipped_steps
        );
    }
    let model = ModelFile::new(dcfg, graph.num_nodes(), store, result.checkpoints);
    model.save(Path::new(out))?;
    println!(
        "saved model ({} params, {} checkpoints) to {out}",
        model.params.scalar_count(),
        model.checkpoints.len()
    );
    if let Some(run) = run {
        let mut m = run_manifest("pretrain", "complete", seed, config_json, data_json);
        m.push(
            "epochs_completed",
            Json::U64(result.epoch_losses.len() as u64),
        );
        if let Some(last) = result.epoch_losses.last() {
            m.push("final_loss", Json::F64(last.total as f64));
        }
        m.push("skipped_steps", Json::U64(result.skipped_steps as u64));
        m.push("eie_checkpoints", Json::U64(model.checkpoints.len() as u64));
        finish_manifest(&mut m, started);
        run.write_manifest(&m)
            .map_err(|e| CpdgError::io("run.json", e))?;
    }
    Ok(())
}

fn parse_strategy(name: &str) -> CpdgResult<FinetuneStrategy> {
    match name {
        "full" => Ok(FinetuneStrategy::Full),
        "eie-mean" => Ok(FinetuneStrategy::Eie(EieFusion::Mean)),
        "eie-attn" => Ok(FinetuneStrategy::Eie(EieFusion::Attn)),
        "eie-gru" => Ok(FinetuneStrategy::Eie(EieFusion::Gru)),
        other => Err(CpdgError::Invalid(format!(
            "unknown strategy {other:?} (expected full|eie-mean|eie-attn|eie-gru)"
        ))),
    }
}

fn cmd_finetune(args: &Args, run: Option<&cpdg_obs::RunDir>) -> CpdgResult<()> {
    let started = std::time::Instant::now();
    apply_threads(args)?;
    let data = args.require("data")?;
    let model_path = args.require("model")?;
    let strategy = parse_strategy(args.get_or("strategy", "eie-gru"))?;
    let epochs: usize = args.get_num("epochs", 3)?;
    let seed: u64 = args.get_num("seed", 0)?;

    let model = ModelFile::load(Path::new(model_path))?;
    let loaded = load_data(data, &load_options(args)?, &chaos_hook(args)?)?;
    let config_json = Json::obj(vec![
        ("strategy", Json::from(strategy.name())),
        ("epochs", Json::U64(epochs as u64)),
        ("model", Json::from(model_path)),
    ]);
    let data_json = dataset_json(data, &loaded);
    if let Some(run) = run {
        let m = run_manifest(
            "finetune",
            "running",
            seed,
            config_json.clone(),
            data_json.clone(),
        );
        run.write_manifest(&m)
            .map_err(|e| CpdgError::io("run.json", e))?;
    }
    let graph = loaded.graph;
    if graph.num_nodes() > model.num_nodes {
        return Err(CpdgError::NodeCountMismatch {
            data_nodes: graph.num_nodes(),
            model_nodes: model.num_nodes,
        });
    }

    // Rebuild the encoder with the saved wiring, then load weights by name.
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut encoder = DgnnEncoder::new(
        &mut store,
        &mut rng,
        "enc",
        model.num_nodes,
        model.encoder_config.clone(),
    );
    let copied = store.load_matching(&model.params);
    println!("loaded {copied} parameter tensors from {model_path}");

    let strategy = if model.checkpoints.is_empty() && matches!(strategy, FinetuneStrategy::Eie(_)) {
        println!("model has no checkpoints; falling back to full fine-tuning");
        FinetuneStrategy::Full
    } else {
        strategy
    };
    let fcfg = FinetuneConfig {
        epochs,
        seed,
        strategy,
        ..Default::default()
    };
    println!(
        "fine-tuning ({}) on {} events for {epochs} epoch(s)…",
        strategy.name(),
        graph.num_events()
    );
    let res = finetune_link_prediction(
        &mut encoder,
        &mut store,
        &graph,
        &model.checkpoints,
        &fcfg,
        None,
    );
    println!("validation AUC : {:.4}", res.val_auc);
    println!("test AUC       : {:.4}", res.auc);
    println!("test AP        : {:.4}", res.ap);
    if let Some(run) = run {
        let mut m = run_manifest("finetune", "complete", seed, config_json, data_json);
        m.push("val_auc", Json::F64(res.val_auc as f64));
        m.push("auc", Json::F64(res.auc as f64));
        m.push("ap", Json::F64(res.ap as f64));
        finish_manifest(&mut m, started);
        run.write_manifest(&m)
            .map_err(|e| CpdgError::io("run.json", e))?;
    }
    Ok(())
}

/// Flag-based signal handling: the handler only stores the signal number
/// into an atomic (the one async-signal-safe thing worth doing), and the
/// long-running loops poll it at safe boundaries — `pretrain` between
/// batches (checkpoint, then exit 8), `serve` in its wait loop (graceful
/// drain, then persist memory).
mod sig {
    use std::sync::atomic::AtomicI32;

    /// Last signal received; 0 means none.
    pub static STOP: AtomicI32 = AtomicI32::new(0);

    #[cfg(unix)]
    mod imp {
        use std::sync::atomic::Ordering;

        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;

        extern "C" {
            // `signal(2)`. Return value (the previous handler) is ignored.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }

        extern "C" fn on_signal(sig: i32) {
            // A relaxed atomic store is async-signal-safe.
            super::STOP.store(sig, Ordering::Relaxed);
        }

        pub fn install() {
            unsafe {
                signal(SIGINT, on_signal);
                signal(SIGTERM, on_signal);
            }
        }
    }

    #[cfg(not(unix))]
    mod imp {
        pub fn install() {}
    }

    /// Installs the SIGINT/SIGTERM flag hook (no-op off unix).
    pub fn install() {
        imp::install();
    }
}

/// The model file the engine should serve: `--model`, unless `--continual`
/// has promoted a later epoch — the sealed pointer under `--epoch-dir`
/// survives `kill -9`, so a restart resumes from the last *promoted*
/// epoch instead of regressing to the base model. A corrupt pointer (or
/// one naming a missing file) is warned about and the base model serves.
fn resolve_serving_model(args: &Args) -> CpdgResult<PathBuf> {
    let base = PathBuf::from(args.require("model")?);
    if !args.has_flag("continual") {
        return Ok(base);
    }
    let dir = PathBuf::from(args.require("epoch-dir")?);
    match cpdg_serve::read_promoted_with(&dir, replicas_knob(args)?) {
        Ok(Some(promoted)) => {
            println!("serving promoted epoch {}", promoted.model.display());
            Ok(promoted.model)
        }
        Ok(None) => Ok(base),
        Err(e) => {
            cpdg_obs::warn!(
                "cli.serve",
                "promoted pointer unusable; serving the base model";
                error = e.to_string(),
            );
            Ok(base)
        }
    }
}

/// Builds the serving engine from the resolved model file and the shared
/// tuning knobs. Returns the engine with the path it serves, which
/// `--continual` reuses as the trainer's baseline.
fn serve_engine(args: &Args) -> CpdgResult<(std::sync::Arc<cpdg_serve::Engine>, PathBuf)> {
    let model_path = resolve_serving_model(args)?;
    let shards: usize = args.get_num("shards", 1usize)?;
    if shards == 0 {
        return Err(CpdgError::Invalid(
            "--shards must be at least 1".to_string(),
        ));
    }
    let cache = match args.get("cache") {
        None => false,
        Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(CpdgError::Invalid(format!(
                "invalid value for --cache: {other:?} (expected on|off)"
            )))
        }
    };
    let engine_cfg = cpdg_serve::EngineConfig {
        deadline: opt_usize(args, "deadline-ms")?
            .map(|ms| std::time::Duration::from_millis(ms as u64)),
        breaker_threshold: args.get_num("breaker-k", 3u32)?,
        breaker_probe_every: args.get_num("breaker-probe", 4u32)?,
        seed: args.get_num("seed", 0u64)?,
        shards,
        cache,
    };
    let engine = cpdg_serve::Engine::from_model_file(&model_path, engine_cfg, chaos_hook(args)?)?;
    if let Some(mem) = args.get("memory-in") {
        engine.restore_memory_file(&FS_STORAGE, Path::new(mem))?;
        println!("restored memory from {mem}");
    }
    Ok((std::sync::Arc::new(engine), model_path))
}

/// Builds the continual-trainer config from the `--train-*` knobs.
/// Window geometry is validated here (exit 2 on nonsense) rather than on
/// the supervisor thread, where a refusal would be invisible; `cmd_serve`
/// calls this with the other `--continual` refusals, before any port is
/// bound or WAL opened.
fn trainer_config(args: &Args) -> CpdgResult<cpdg_serve::TrainerConfig> {
    let dir = PathBuf::from(args.require("epoch-dir")?);
    let mut cfg = cpdg_serve::TrainerConfig::new(dir);
    let span: f64 = args.get_num("train-window", 16.0f64)?;
    let stride: f64 = args.get_num("train-stride", span / 2.0)?;
    cfg.continual.window = cpdg_core::WindowConfig::new(span, stride)?;
    cfg.continual.min_events = args.get_num("train-min-events", 32usize)?;
    cfg.continual.seed = args.get_num("seed", 0u64)?;
    cfg.continual.gate.max_loss_ratio = args.get_num("train-gate", 1.5f64)?;
    if !cfg.continual.gate.max_loss_ratio.is_finite() || cfg.continual.gate.max_loss_ratio <= 0.0 {
        return Err(CpdgError::Invalid(format!(
            "--train-gate must be finite and positive, got {}",
            cfg.continual.gate.max_loss_ratio
        )));
    }
    cfg.cadence = std::time::Duration::from_millis(args.get_num("train-cadence-ms", 500u64)?);
    cfg.probation_cycles = args.get_num("train-probation", 3u64)?;
    cfg.replicas = replicas_knob(args)?;
    Ok(cfg)
}

/// The `--replicas` knob: sealed copies per scrub-managed artifact
/// (default 2; 1 disables replication; 0 is a mistake).
fn replicas_knob(args: &Args) -> CpdgResult<usize> {
    let replicas: usize = args.get_num("replicas", cpdg_core::scrub::DEFAULT_REPLICAS)?;
    if replicas == 0 {
        return Err(CpdgError::Invalid(
            "--replicas must be at least 1 (1 disables replication)".to_string(),
        ));
    }
    Ok(replicas)
}

/// Opens (and recovers from) the write-ahead log when `--wal-dir` is
/// given. `--fsync` without `--wal-dir` is a configuration mistake worth
/// refusing loudly rather than silently running without durability.
fn open_wal(args: &Args, engine: &cpdg_serve::Engine) -> CpdgResult<bool> {
    let Some(dir) = args.get("wal-dir") else {
        if args.get("fsync").is_some() {
            return Err(CpdgError::Invalid(
                "--fsync requires --wal-dir (no log to sync without one)".to_string(),
            ));
        }
        return Ok(false);
    };
    let fsync = match args.get("fsync") {
        Some(s) => s
            .parse::<cpdg_core::FsyncPolicy>()
            .map_err(CpdgError::Invalid)?,
        None => cpdg_core::FsyncPolicy::Always,
    };
    let segment_bytes: u64 = args.get_num(
        "wal-segment-bytes",
        cpdg_core::WalConfig::default().segment_bytes,
    )?;
    if segment_bytes == 0 {
        return Err(CpdgError::Invalid(
            "--wal-segment-bytes must be positive".to_string(),
        ));
    }
    let config = cpdg_core::WalConfig {
        fsync,
        replicas: replicas_knob(args)?,
        segment_bytes,
        ..cpdg_core::WalConfig::default()
    };
    let report = engine.open_wal(Path::new(dir), config)?;
    println!(
        "wal recovery: checkpoint_applied={} replayed={} segments={} truncated_bytes={}",
        report.checkpoint_applied,
        report.replayed,
        report.recovery.segments,
        report.recovery.truncated_bytes,
    );
    Ok(true)
}

/// Validates `--batch` / `--queue` against the shard topology before any
/// socket is bound: a zero batch is meaningless, and a total admission
/// capacity below the shard count would leave some shard with no slots
/// (the same constraint [`cpdg_serve::split_capacity`] enforces, surfaced
/// here as a friendlier CLI error).
fn serve_admission_knobs(args: &Args, shards: usize) -> CpdgResult<(usize, usize)> {
    let batch: usize = args.get_num("batch", 1usize)?;
    if batch == 0 {
        return Err(CpdgError::Invalid("--batch must be at least 1".to_string()));
    }
    let queue_capacity: usize = args.get_num("queue", 64usize)?;
    if queue_capacity < shards {
        return Err(CpdgError::Invalid(format!(
            "--queue {queue_capacity} cannot give each of {shards} shards an admission slot \
             (need --queue >= --shards)"
        )));
    }
    Ok((batch, queue_capacity))
}

fn cmd_serve(args: &Args) -> CpdgResult<()> {
    use std::sync::atomic::Ordering;
    apply_threads(args)?;
    let trainer_cfg = if args.has_flag("continual") {
        // Refuse misconfigurations before touching any state: the trainer
        // needs a live engine (not the offline reference path), a durable
        // stream to train on, and a sane window geometry — all checked
        // before any port is bound or WAL opened.
        if args.get("ingest").is_some() {
            return Err(CpdgError::Invalid(
                "--continual cannot run with --ingest (the trainer needs a live server)"
                    .to_string(),
            ));
        }
        if args.get("wal-dir").is_none() {
            return Err(CpdgError::Invalid(
                "--continual requires --wal-dir (training must not outlive the stream's \
                 durability)"
                    .to_string(),
            ));
        }
        Some(trainer_config(args)?)
    } else {
        None
    };
    // Validate the scrubber knobs before any port is bound: an interval
    // with nothing to scrub is a configuration mistake, not a silent no-op.
    let scrub_interval_ms: u64 = args.get_num("scrub-interval", 0u64)?;
    let mut scrub_roots: Vec<PathBuf> = Vec::new();
    if scrub_interval_ms > 0 {
        if let Some(d) = args.get("wal-dir") {
            scrub_roots.push(PathBuf::from(d));
        }
        if args.has_flag("continual") {
            scrub_roots.push(PathBuf::from(args.require("epoch-dir")?));
        }
        if scrub_roots.is_empty() {
            return Err(CpdgError::Invalid(
                "--scrub-interval requires --wal-dir and/or --continual --epoch-dir \
                 (no artifacts to scrub without them)"
                    .to_string(),
            ));
        }
    }
    let scrub_config = cpdg_core::ScrubConfig {
        replicas: replicas_knob(args)?,
        ..cpdg_core::ScrubConfig::default()
    };
    let (engine, serving_path) = serve_engine(args)?;
    let wal_attached = open_wal(args, &engine)?;

    if let Some(script) = args.get("ingest") {
        // Offline mode: apply a request script in-process (no sockets) and
        // print one reply per request. With --memory-out this is the
        // reference run the e2e smoke test `cmp`s a drained server against.
        let text = std::fs::read_to_string(script).map_err(|e| CpdgError::io(script, e))?;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let reply = match cpdg_serve::parse_line(line) {
                Ok(cmd) => engine.execute(cmd),
                Err(detail) => cpdg_serve::Reply::Err {
                    kind: cpdg_serve::ErrKind::Parse,
                    detail,
                },
            };
            println!("{}", reply.render());
        }
    } else {
        sig::install();
        let port: u16 = args.get_num("port", 0u16)?;
        let (batch, queue_capacity) = serve_admission_knobs(args, engine.shard_count())?;
        let server_cfg = cpdg_serve::ServerConfig {
            addr: format!("127.0.0.1:{port}"),
            workers: args.get_num("workers", 2usize)?,
            queue_capacity,
            batch,
        };
        let server = cpdg_serve::Server::start(std::sync::Arc::clone(&engine), &server_cfg)
            .map_err(|e| CpdgError::io(server_cfg.addr.clone(), e))?;
        println!("listening on {}", server.local_addr());
        let trainer = match trainer_cfg {
            Some(cfg) => {
                let runtime = cpdg_serve::TrainerRuntime::new(
                    std::sync::Arc::clone(&engine),
                    &serving_path,
                    cfg,
                )?;
                let sup = cpdg_serve::TrainerSupervisor::start(runtime)
                    .map_err(|e| CpdgError::io("trainer supervisor", e))?;
                println!("continual trainer running");
                Some(sup)
            }
            None => None,
        };
        let scrubber = if scrub_interval_ms > 0 {
            let sup = cpdg_serve::ScrubSupervisor::start(
                std::sync::Arc::clone(&engine),
                scrub_roots,
                scrub_config,
                std::time::Duration::from_millis(scrub_interval_ms),
                engine.fault_hook(),
            )
            .map_err(|e| CpdgError::io("scrub supervisor", e))?;
            println!("background scrubber running (every {scrub_interval_ms}ms)");
            Some(sup)
        } else {
            None
        };
        while sig::STOP.load(Ordering::Relaxed) == 0 {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        println!("signal {}: draining…", sig::STOP.load(Ordering::Relaxed));
        // Stop the scrubber first (a repair racing the drain-time
        // checkpoint's segment truncation would rewrite a file the WAL is
        // deleting), then the trainer before draining the server: a
        // promotion racing the drain-time checkpoint would be half in
        // this run, half in the next.
        if let Some(sup) = scrubber {
            sup.shutdown();
        }
        if let Some(sup) = trainer {
            sup.shutdown();
        }
        server.shutdown();
    }

    if wal_attached {
        // Clean exit: fold everything the log holds into a checkpoint so
        // the next start replays nothing. A crash before this line is the
        // case the WAL exists for — startup replays the segments instead.
        if let Some(freed) = engine.checkpoint_wal(&FS_STORAGE)? {
            println!("wal checkpoint written ({freed} log bytes truncated)");
        }
    }

    if let Some(out) = args.get("memory-out") {
        engine.persist_memory(&FS_STORAGE, Path::new(out))?;
        println!("persisted memory to {out}");
    }
    Ok(())
}

fn cmd_query(args: &Args) -> CpdgResult<()> {
    use std::io::{BufRead, BufReader, Write};
    let addr = match (args.get("addr"), args.get("port")) {
        (Some(a), _) => a.to_string(),
        (None, Some(p)) => format!("127.0.0.1:{p}"),
        (None, None) => {
            return Err(CpdgError::Invalid(
                "query needs --addr or --port".to_string(),
            ))
        }
    };
    let mut stream = std::net::TcpStream::connect(&addr).map_err(|e| CpdgError::io(&addr, e))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| CpdgError::io(&addr, e))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| CpdgError::io(&addr, e))?);
    let mut roundtrip = |line: &str| -> CpdgResult<()> {
        writeln!(stream, "{line}").map_err(|e| CpdgError::io(&addr, e))?;
        stream.flush().map_err(|e| CpdgError::io(&addr, e))?;
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| CpdgError::io(&addr, e))?;
        print!("{reply}");
        Ok(())
    };
    if args.has_flag("status") {
        // Shorthand for --send STATUS: one key=value health line.
        roundtrip("STATUS")?;
        return Ok(());
    }
    match args.get("send") {
        Some(line) => roundtrip(line)?,
        None => {
            // Streaming mode: one request per stdin line, lockstep replies.
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| CpdgError::io("stdin", e))?;
                if line.trim().is_empty() {
                    continue;
                }
                roundtrip(&line)?;
            }
        }
    }
    Ok(())
}

/// `cpdg scrub <dir> …` — one offline pass of the artifact scrubber over
/// the given WAL / epoch directories: every sealed artifact's CRC is
/// re-verified across its replica set, bad copies are rewritten from good
/// ones, and the sweep is reported. Exits 4 (naming the first artifact)
/// when anything has no sound copy left — the same refusal serving would
/// hit, caught while a backup can still help.
fn cmd_scrub(args: &Args) -> CpdgResult<()> {
    if args.positionals.is_empty() {
        return Err(CpdgError::Invalid(
            "scrub requires at least one directory operand (a --wal-dir or --epoch-dir)"
                .to_string(),
        ));
    }
    let mut roots = Vec::with_capacity(args.positionals.len());
    for dir in &args.positionals {
        let p = PathBuf::from(dir);
        if !p.is_dir() {
            return Err(CpdgError::Invalid(format!(
                "scrub operand {dir:?} is not a directory"
            )));
        }
        roots.push(p);
    }
    let config = cpdg_core::ScrubConfig {
        replicas: replicas_knob(args)?,
        ..cpdg_core::ScrubConfig::default()
    };
    let hook = chaos_hook(args)?;
    let mut scrubber = cpdg_core::Scrubber::new(roots, config);
    let report = scrubber.scrub_all(&FS_STORAGE, &hook);
    println!(
        "scrub: scanned={} bytes={} corrupt={} repaired={} read_errors={} unrepairable={}",
        report.scanned,
        report.bytes,
        report.corrupt,
        report.repaired,
        report.read_errors,
        report.unrepairable.len(),
    );
    for (class, path) in &report.unrepairable {
        println!("unrepairable {} {}", class.name(), path.display());
    }
    if let Some((class, path)) = report.unrepairable.first() {
        return Err(CpdgError::corrupt(
            path,
            format!(
                "{} unrepairable artifact(s): no sound copy left of this {} \
                 (restore it from a backup or accept the loss)",
                report.unrepairable.len(),
                class.name(),
            ),
        ));
    }
    Ok(())
}

/// Optional `--key N` usize option.
fn opt_usize(args: &Args, key: &str) -> CpdgResult<Option<usize>> {
    match args.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CpdgError::Invalid(format!("invalid value for --{key}: {v:?}"))),
    }
}

/// Parses the shared ingestion options: `--strict-load` / `--lenient-load`
/// and the `--max-events` / `--max-nodes` resource guards.
fn load_options(args: &Args) -> CpdgResult<LoadOptions> {
    if args.has_flag("strict-load") && args.has_flag("lenient-load") {
        return Err(CpdgError::Invalid(
            "--strict-load and --lenient-load are mutually exclusive".to_string(),
        ));
    }
    let mut opts = LoadOptions::default();
    if args.has_flag("lenient-load") {
        opts.mode = LoadMode::Lenient;
    }
    opts.max_events = opt_usize(args, "max-events")?;
    opts.max_nodes = opt_usize(args, "max-nodes")?;
    Ok(opts)
}

/// Reads `--chaos-plan <file>` into an installed [`FaultHook`], or returns
/// the zero-overhead inert hook when the option is absent.
fn chaos_hook(args: &Args) -> CpdgResult<FaultHook> {
    match args.get("chaos-plan") {
        None => Ok(FaultHook::none()),
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| CpdgError::io(p, e))?;
            let plan = FaultPlan::from_json(&text)
                .map_err(|e| CpdgError::Invalid(format!("bad --chaos-plan {p}: {e}")))?;
            Ok(FaultHook::install(&plan))
        }
    }
}

/// Loads a JODIE CSV through the chaos-aware path: reads are retried under
/// the default policy, and `hook` (when active) injects `storage.read` and
/// `loader.row` faults. A non-empty quarantine additionally lands in
/// metrics.jsonl as an `ingest` record.
fn load_data(
    path: &str,
    opts: &LoadOptions,
    hook: &FaultHook,
) -> CpdgResult<cpdg_graph::loader::LoadedGraph> {
    let loaded = load_jodie_chaos(
        &FS_STORAGE,
        Path::new(path),
        opts,
        &RetryPolicy::default(),
        hook,
    )?;
    if !loaded.quarantine.is_empty() {
        cpdg_obs::emit_metrics(
            "ingest",
            vec![
                ("path".to_string(), cpdg_obs::Value::from(path)),
                (
                    "quarantined".to_string(),
                    cpdg_obs::Value::from(loaded.quarantine.total),
                ),
                (
                    "events".to_string(),
                    cpdg_obs::Value::from(loaded.graph.num_events()),
                ),
            ],
        );
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn scrub_command_repairs_then_refuses_with_the_artifact_path() {
        let dir = std::env::temp_dir().join(format!("cpdg_cli_scrub_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.cpdg");
        cpdg_core::scrub::write_replicated(
            &FS_STORAGE,
            &path,
            &cpdg_core::integrity::seal(b"{}"),
            2,
        )
        .unwrap();
        let args = parse(&format!("scrub {}", dir.display()));

        // One rotted copy: the sweep repairs it and exits clean.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        cmd_scrub(&args).unwrap();
        let healed = std::fs::read(&path).unwrap();
        assert!(cpdg_core::integrity::unseal_strict(&healed, &path).is_ok());

        // Every copy rotted: exit 4, message naming the artifact.
        for p in [path.clone(), cpdg_core::scrub::replica_path(&path, 1)] {
            let mut b = std::fs::read(&p).unwrap();
            b[0] ^= 0x40;
            std::fs::write(&p, &b).unwrap();
        }
        let err = cmd_scrub(&args).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("checkpoint.cpdg"), "{err}");

        // Usage errors: no operand, or an operand that is not a directory.
        assert!(cmd_scrub(&parse("scrub")).is_err());
        assert!(cmd_scrub(&parse("scrub /nonexistent/cpdg/dir")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finetune_rejects_node_count_mismatch_with_typed_error() {
        let dir = std::env::temp_dir().join(format!("cpdg_cli_mismatch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.json");
        let data_path = dir.join("data.csv");

        // A model pre-trained for a 2-node universe…
        let model = ModelFile::new(
            DgnnConfig::preset(EncoderKind::Tgn, 8, 1.0),
            2,
            ParamStore::new(),
            vec![],
        );
        model.save(&model_path).unwrap();
        // …against data with 2 users + 2 items = 4 nodes.
        std::fs::write(
            &data_path,
            "user_id,item_id,timestamp,state_label,f\n0,0,1.0,0,0\n1,1,2.0,0,0\n",
        )
        .unwrap();

        let args = parse(&format!(
            "finetune --data {} --model {}",
            data_path.display(),
            model_path.display()
        ));
        let err = cmd_finetune(&args, None).unwrap_err();
        match err {
            CpdgError::NodeCountMismatch {
                data_nodes,
                model_nodes,
            } => {
                assert_eq!(data_nodes, 4);
                assert_eq!(model_nodes, 2);
            }
            other => panic!("expected NodeCountMismatch, got {other}"),
        }
        // And it maps to its own exit code, distinct from usage errors.
        assert_eq!(
            CpdgError::NodeCountMismatch {
                data_nodes: 4,
                model_nodes: 2
            }
            .exit_code(),
            3
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finetune_surfaces_corrupt_model_files() {
        let dir = std::env::temp_dir().join(format!("cpdg_cli_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.json");
        let data_path = dir.join("data.csv");
        std::fs::write(&model_path, b"{\"version\": 1, \"trunc").unwrap();
        std::fs::write(&data_path, "h\n0,0,1.0,0\n").unwrap();
        let args = parse(&format!(
            "finetune --data {} --model {}",
            data_path.display(),
            model_path.display()
        ));
        let err = cmd_finetune(&args, None).unwrap_err();
        assert!(matches!(err, CpdgError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        let err = parse_encoder("sage").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn observability_flags_validate() {
        assert!(init_observability(&parse("stats --log-level shouty")).is_err());
        assert!(init_observability(&parse("stats --log-format yaml")).is_err());
        let rd = init_observability(&parse("stats --log-level warn")).unwrap();
        assert!(rd.is_none(), "no --run-dir given");
        // Restore the default console for any test running after this one.
        cpdg_obs::init(cpdg_obs::Level::Info, cpdg_obs::LogFormat::Text);
    }

    #[test]
    fn pretrain_run_dir_emits_parseable_artifacts() {
        let dir = std::env::temp_dir().join(format!("cpdg_cli_rundir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let ds = generate(&SyntheticConfig::amazon_like(7).scaled(0.05));
        write_jodie_csv(&ds.graph, ds.num_users, File::create(&data_path).unwrap()).unwrap();
        let run_path = dir.join("run");
        let model_path = dir.join("model.json");
        let args = parse(&format!(
            "pretrain --data {} --out {} --epochs 1 --dim 8 --seed 3 --run-dir {}",
            data_path.display(),
            model_path.display(),
            run_path.display()
        ));
        let run = init_observability(&args)
            .unwrap()
            .expect("--run-dir opens a RunDir");
        cmd_pretrain(&args, Some(&run)).unwrap();
        drop(run);

        // run.json parses as JSON and carries the provenance fields.
        let manifest: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(run_path.join("run.json")).unwrap())
                .unwrap();
        assert_eq!(manifest["command"], "pretrain");
        assert_eq!(manifest["status"], "complete");
        assert_eq!(manifest["seed"], 3);
        assert_eq!(manifest["config"]["encoder"], "tgn");
        assert!(manifest["dataset"]["events"].as_u64().unwrap() > 0);
        assert!(manifest["wall_clock_secs"].as_f64().unwrap() > 0.0);
        assert!(manifest["counters"]["matmul.dispatches"].as_u64().unwrap() > 0);

        // metrics.jsonl: every line parses; one pretrain_epoch record per
        // epoch carrying the loss breakdown and counter deltas.
        let metrics = std::fs::read_to_string(run_path.join("metrics.jsonl")).unwrap();
        let epochs: Vec<serde_json::Value> = metrics
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v["event"] == "pretrain_epoch")
            .collect();
        assert_eq!(epochs.len(), 1, "{metrics}");
        assert!(epochs[0]["loss_total"].is_number(), "{}", epochs[0]);
        assert!(
            epochs[0]["d_matmul.dispatches"].as_u64().unwrap() > 0,
            "{}",
            epochs[0]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_option_flags_validate_and_apply() {
        let o = load_options(&parse("stats --lenient-load --max-events 10 --max-nodes 5")).unwrap();
        assert!(matches!(o.mode, LoadMode::Lenient));
        assert_eq!(o.max_events, Some(10));
        assert_eq!(o.max_nodes, Some(5));
        // Defaults: strict, unbounded.
        let d = load_options(&parse("stats")).unwrap();
        assert!(matches!(d.mode, LoadMode::Strict));
        assert_eq!(d.max_events, None);
        // Contradictory modes and junk numbers are usage errors.
        assert!(load_options(&parse("stats --strict-load --lenient-load")).is_err());
        assert!(load_options(&parse("stats --max-events lots")).is_err());
    }

    #[test]
    fn lenient_load_quarantines_where_strict_load_fails() {
        let dir = std::env::temp_dir().join(format!("cpdg_cli_lenient_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        std::fs::write(
            &data_path,
            "user_id,item_id,timestamp,state_label,f\n0,0,1.0,0,0\nnot,a,row\n1,1,2.0,0,0\n",
        )
        .unwrap();
        let path = data_path.to_str().unwrap();

        let err = load_data(path, &LoadOptions::strict(), &FaultHook::none()).unwrap_err();
        assert!(matches!(err, CpdgError::Data(_)), "{err}");

        let loaded = load_data(path, &LoadOptions::lenient(), &FaultHook::none()).unwrap();
        assert_eq!(loaded.quarantine.total, 1);
        assert_eq!(loaded.quarantine.rows[0].line, 3);
        assert_eq!(loaded.graph.num_events(), 2);
        // The quarantine summary reaches the run.json dataset block.
        let d = dataset_json(path, &loaded).render();
        assert!(d.contains("\"quarantined\":1"), "{d}");
        assert!(d.contains("\"line\":3"), "{d}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resource_guard_flags_map_to_typed_errors() {
        let dir = std::env::temp_dir().join(format!("cpdg_cli_guard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        std::fs::write(&data_path, "h\n0,0,1.0,0\n1,1,2.0,0\n0,1,3.0,0\n").unwrap();
        let path = data_path.to_str().unwrap();
        let opts = load_options(&parse("stats --max-events 2")).unwrap();
        let err = load_data(path, &opts, &FaultHook::none()).unwrap_err();
        match err {
            CpdgError::ResourceLimit { what, limit, .. } => {
                assert_eq!(what, "events");
                assert_eq!(limit, 2);
            }
            other => panic!("expected ResourceLimit, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_plan_option_installs_a_hook() {
        // Absent option: the inert, zero-overhead hook.
        assert!(!chaos_hook(&parse("pretrain")).unwrap().is_active());
        let dir = std::env::temp_dir().join(format!("cpdg_cli_plan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan_path = dir.join("plan.json");
        std::fs::write(
            &plan_path,
            r#"{"seed": 7, "faults": [
                {"point": "storage.write", "kind": "transient",
                 "trigger": {"when": "nth", "n": 1}}]}"#,
        )
        .unwrap();
        let args = parse(&format!("pretrain --chaos-plan {}", plan_path.display()));
        assert!(chaos_hook(&args).unwrap().is_active());
        // Unreadable and malformed plans surface as typed errors.
        let missing = parse(&format!(
            "pretrain --chaos-plan {}",
            dir.join("nope.json").display()
        ));
        assert!(matches!(
            chaos_hook(&missing).unwrap_err(),
            CpdgError::Io { .. }
        ));
        std::fs::write(&plan_path, b"{not json").unwrap();
        let args = parse(&format!("pretrain --chaos-plan {}", plan_path.display()));
        assert!(matches!(
            chaos_hook(&args).unwrap_err(),
            CpdgError::Invalid(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_admission_and_cache_flags_validate() {
        // --batch 0 and --queue < --shards are refused before any socket.
        let err = serve_admission_knobs(&parse("serve --batch 0"), 1).unwrap_err();
        assert!(matches!(err, CpdgError::Invalid(_)), "{err}");
        let err = serve_admission_knobs(&parse("serve --queue 2"), 4).unwrap_err();
        assert!(err.to_string().contains("4 shards"), "{err}");
        assert_eq!(
            serve_admission_knobs(&parse("serve --batch 8 --queue 16"), 4).unwrap(),
            (8, 16)
        );
        assert_eq!(
            serve_admission_knobs(&parse("serve"), 1).unwrap(),
            (1, 64),
            "defaults: no coalescing, legacy capacity"
        );
        // --cache only accepts on|off (checked before the model file is
        // even opened, so a bogus value fails fast).
        let err = serve_engine(&parse("serve --model nope.json --cache maybe")).unwrap_err();
        assert!(matches!(err, CpdgError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("--cache"), "{err}");
    }

    #[test]
    fn threads_option_validates_and_applies() {
        // Error paths never touch the global knob.
        let err = apply_threads(&parse("pretrain --threads 0")).unwrap_err();
        assert!(matches!(err, CpdgError::Invalid(_)), "{err}");
        let err = apply_threads(&parse("pretrain --threads lots")).unwrap_err();
        assert!(matches!(err, CpdgError::Invalid(_)), "{err}");
        // Absent option leaves the default untouched.
        apply_threads(&parse("pretrain")).unwrap();
        // A valid value lands in the global knob (single test mutates it,
        // so no cross-test race in this binary).
        apply_threads(&parse("pretrain --threads 3")).unwrap();
        assert_eq!(cpdg_tensor::threading::current_threads(), 3);
        cpdg_tensor::threading::reset_threads();
    }
}
