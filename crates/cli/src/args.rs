//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed arguments: a subcommand plus `--key value` pairs, bare flags,
/// and any further positional operands (e.g. `cpdg scrub <dir>`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First positional argument (the subcommand).
    pub command: Option<String>,
    /// Positional operands after the subcommand. Most subcommands take
    /// none — they validate with [`Args::no_positionals`].
    pub positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses from an iterator of argument strings (excluding argv[0]).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = iter.next().expect("peeked");
                        if out.options.insert(key.to_string(), v).is_some() {
                            return Err(format!("duplicate option --{key}"));
                        }
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                out.positionals.push(a);
            }
        }
        Ok(out)
    }

    /// Errors when positional operands were given — for subcommands that
    /// take none.
    pub fn no_positionals(&self) -> Result<(), String> {
        match self.positionals.first() {
            None => Ok(()),
            Some(p) => Err(format!("unexpected positional argument {p:?}")),
        }
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric option with a default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// Bare flag presence (`--verbose` style).
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_options_flags() {
        let a = parse("pretrain --data x.csv --epochs 5 --vanilla").unwrap();
        assert_eq!(a.command.as_deref(), Some("pretrain"));
        assert_eq!(a.get("data"), Some("x.csv"));
        assert_eq!(a.get_num::<usize>("epochs", 1).unwrap(), 5);
        assert!(a.has_flag("vanilla"));
        assert!(!a.has_flag("quick"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("stats").unwrap();
        assert_eq!(a.get_or("encoder", "tgn"), "tgn");
        assert!(a.require("data").is_err());
        assert_eq!(a.get_num::<f64>("scale", 1.0).unwrap(), 1.0);
    }

    #[test]
    fn rejects_duplicates_and_extra_positionals() {
        assert!(parse("x --a 1 --a 2").is_err());
        let a = parse("x y").unwrap();
        assert_eq!(a.positionals, vec!["y".to_string()]);
        assert!(
            a.no_positionals().is_err(),
            "subcommands without operands refuse them explicitly"
        );
        assert!(parse("x").unwrap().no_positionals().is_ok());
    }

    #[test]
    fn positional_operands_follow_the_subcommand() {
        let a = parse("scrub /var/wal --replicas 3").unwrap();
        assert_eq!(a.command.as_deref(), Some("scrub"));
        assert_eq!(a.positionals, vec!["/var/wal".to_string()]);
        assert_eq!(a.get("replicas"), Some("3"));
    }

    #[test]
    fn invalid_numbers_error() {
        let a = parse("x --epochs banana").unwrap();
        assert!(a.get_num::<usize>("epochs", 1).is_err());
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("x --quick --seed 3").unwrap();
        assert!(a.has_flag("quick"));
        assert_eq!(a.get("seed"), Some("3"));
    }
}
