//! End-to-end smoke tests driving the real `cpdg` binary: graceful
//! SIGTERM handling during pre-training (exit code 8 + resumable
//! checkpoint) and the offline `serve --ingest` reference mode
//! (deterministic replies and drained memory, typed corrupt-model exit).

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

extern "C" {
    // `kill(2)`; used to deliver SIGTERM to the spawned pre-training run.
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGTERM: i32 = 15;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cpdg"))
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdg_cli_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates a small synthetic JODIE CSV through the binary itself.
fn generate_data(dir: &Path) -> PathBuf {
    let data = dir.join("data.csv");
    let status = bin()
        .args(["generate", "--preset", "amazon", "--scale", "0.03", "--seed", "1"])
        .args(["--out", data.to_str().unwrap()])
        .status()
        .expect("run cpdg generate");
    assert!(status.success(), "generate failed: {status:?}");
    data
}

#[test]
fn sigterm_mid_pretrain_checkpoints_and_exits_code_8() {
    let dir = test_dir("sigterm");
    let data = generate_data(&dir);
    let ckpts = dir.join("ckpts");

    // Far more epochs than we will ever run — the signal ends the run.
    let mut child = bin()
        .args(["pretrain", "--data", data.to_str().unwrap()])
        .args(["--out", dir.join("model.json").to_str().unwrap()])
        .args(["--dim", "8", "--epochs", "500", "--threads", "1"])
        .args(["--ckpt-dir", ckpts.to_str().unwrap(), "--ckpt-every", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cpdg pretrain");

    // The banner prints after the signal hook is installed and training
    // is about to start; once we see it, SIGTERM lands mid-run.
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if line.starts_with("pre-training") {
                    break line;
                }
            }
            other => panic!("pretrain ended before the banner: {other:?}"),
        }
    };
    assert!(banner.contains("epoch"), "unexpected banner: {banner}");
    let rc = unsafe { kill(child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "kill(SIGTERM) failed");

    let status = child.wait().expect("wait for pretrain");
    assert_eq!(status.code(), Some(8), "graceful signal stop must exit code 8");
    let mut err = String::new();
    std::io::Read::read_to_string(&mut child.stderr.take().unwrap(), &mut err).unwrap();
    assert!(err.contains("signal 15"), "stderr should name the signal: {err}");

    // The preempted run left a resumable checkpoint behind.
    let ckpt_files: Vec<_> = std::fs::read_dir(&ckpts)
        .expect("checkpoint dir exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(!ckpt_files.is_empty(), "signal stop must persist a checkpoint");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_ingest_mode_is_deterministic_and_rejects_corrupt_models() {
    let dir = test_dir("serve_ingest");
    let data = generate_data(&dir);
    let model = dir.join("model.json");

    let status = bin()
        .args(["pretrain", "--data", data.to_str().unwrap()])
        .args(["--out", model.to_str().unwrap()])
        .args(["--dim", "8", "--epochs", "1", "--threads", "1"])
        .status()
        .expect("run cpdg pretrain");
    assert!(status.success(), "pretrain failed: {status:?}");

    let script = dir.join("script.txt");
    std::fs::write(
        &script,
        "EVENT 0 1 1.0\nEVENT 1 2 2.0\nEMB 1\nSCORE 0 2\nNOPE 9 9\nSTATS\n",
    )
    .unwrap();

    let run = |mem: &Path| {
        let out = bin()
            .args(["serve", "--model", model.to_str().unwrap()])
            .args(["--ingest", script.to_str().unwrap()])
            .args(["--memory-out", mem.to_str().unwrap()])
            .output()
            .expect("run cpdg serve --ingest");
        assert!(out.status.success(), "serve --ingest failed: {out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    let mem1 = dir.join("mem1.json");
    let mem2 = dir.join("mem2.json");
    let out1 = run(&mem1);
    let out2 = run(&mem2);

    // The trailing `persisted memory to <path>` line names the (different)
    // output path; everything above it is the reply stream.
    let strip = |s: &str| {
        s.lines().filter(|l| !l.starts_with("persisted memory")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip(&out1), strip(&out2), "ingest replies must be deterministic");
    assert_eq!(
        std::fs::read(&mem1).unwrap(),
        std::fs::read(&mem2).unwrap(),
        "drained memory must be byte-deterministic"
    );
    let replies: Vec<&str> = out1.lines().collect();
    assert!(replies[0].starts_with("OK v1 event 0"), "{replies:?}");
    assert!(replies[2].starts_with("OK v1 "), "EMB reply: {replies:?}");
    assert!(replies[4].starts_with("ERR parse"), "junk verb: {replies:?}");
    assert!(replies[5].contains("events=2"), "stats: {replies:?}");

    // Bit-rot in the sealed model file is a typed corrupt-artifact failure.
    let mut bytes = std::fs::read(&model).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&model, &bytes).unwrap();
    let out = bin()
        .args(["serve", "--model", model.to_str().unwrap()])
        .args(["--ingest", script.to_str().unwrap()])
        .output()
        .expect("run cpdg serve on corrupt model");
    assert_eq!(out.status.code(), Some(4), "corrupt model must exit code 4: {out:?}");
    std::fs::remove_dir_all(&dir).ok();
}
