//! A minimal JSON document model with compact and pretty rendering.
//!
//! `cpdg-obs` is zero-dependency by design, so the `run.json` manifest and
//! JSONL sinks render through this hand-rolled writer instead of serde.
//! Only *emission* is supported — consumers parse with whatever JSON
//! library they have (tests in dependent crates use `serde_json`).

use crate::Value;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float; non-finite values render as `null`.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Ordered object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Appends `(key, value)` to an object; panics on non-objects.
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.pretty_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.pretty_into(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.render_into(out),
        }
    }
}

impl From<Value> for Json {
    fn from(v: Value) -> Self {
        match v {
            Value::Bool(b) => Json::Bool(b),
            Value::I64(v) => Json::I64(v),
            Value::U64(v) => Json::U64(v),
            Value::F64(v) => Json::F64(v),
            Value::Str(s) => Json::Str(s),
        }
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_renders() {
        let j = Json::obj(vec![
            ("a", Json::U64(1)),
            ("b", Json::Str("x\"y".into())),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(j.render(), r#"{"a":1,"b":"x\"y","c":[true,null]}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(1.25).render(), "1.25");
    }

    #[test]
    fn control_chars_escape() {
        let mut s = String::new();
        escape_into("a\nb\u{01}", &mut s);
        assert_eq!(s, "\"a\\nb\\u0001\"");
    }

    #[test]
    fn pretty_is_indented_and_ends_with_newline() {
        let j = Json::obj(vec![("k", Json::obj(vec![("n", Json::U64(2))]))]);
        let p = j.pretty();
        assert!(p.ends_with('\n'));
        assert!(p.contains("  \"k\": {"));
        assert!(p.contains("    \"n\": 2"));
    }

    #[test]
    fn push_extends_objects() {
        let mut j = Json::obj(vec![]);
        j.push("x", Json::from(3u64));
        assert_eq!(j.render(), r#"{"x":3}"#);
    }
}
