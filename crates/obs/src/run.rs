//! Run directories: the on-disk audit convention for training runs.
//!
//! A run directory holds exactly two artefacts:
//!
//! * `run.json` — the manifest: config, seed, thread count, dataset
//!   stats, wall-clock, and final counter/histogram totals. Written (and
//!   rewritten) via [`RunDir::write_manifest`]; the runner typically
//!   writes it once at start (provenance survives crashes) and again at
//!   the end with results.
//! * `metrics.jsonl` — one JSON object per metric event, appended live.
//!   Creating a [`RunDir`] installs a sink that subscribes to records
//!   with targets prefixed `metrics.` (produced by
//!   [`emit_metrics`](crate::emit_metrics)), so library code needs no
//!   handle to the run directory — it just emits events.
//!
//! Each line of `metrics.jsonl` is flat:
//! `{"ts_ms": ..., "event": "pretrain_epoch", "epoch": 0, "loss": ...}`.

use crate::json::Json;
use crate::log::{add_sink, remove_sink, Level, Record, Sink, SinkId};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Sink that writes `metrics.*` records to `metrics.jsonl` as flat
/// objects, flushing per line so the stream is tailable and survives
/// crashes.
struct MetricsJsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl Sink for MetricsJsonlSink {
    fn wants(&self, _level: Level, target: &str) -> bool {
        target.starts_with("metrics.")
    }
    fn log(&self, record: &Record) {
        let event = record.target.strip_prefix("metrics.").unwrap_or(&record.target);
        let mut obj = Json::obj(vec![
            ("ts_ms", Json::U64(record.unix_ms)),
            ("event", Json::from(event)),
        ]);
        for (k, v) in &record.fields {
            obj.push(k, Json::from(v.clone()));
        }
        let mut line = obj.render();
        line.push('\n');
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }
    }
    fn max_level(&self) -> Level {
        Level::Info
    }
}

/// An open run directory; see the module docs for the layout. Dropping it
/// uninstalls the metrics sink (flushing first).
pub struct RunDir {
    dir: PathBuf,
    sink_id: SinkId,
}

impl RunDir {
    /// Creates `dir` (and parents), truncates `metrics.jsonl`, and
    /// installs the metrics sink.
    pub fn create(dir: &Path) -> std::io::Result<RunDir> {
        std::fs::create_dir_all(dir)?;
        let file = File::create(dir.join("metrics.jsonl"))?;
        let sink = Arc::new(MetricsJsonlSink { writer: Mutex::new(BufWriter::new(file)) });
        let sink_id = add_sink(sink as Arc<dyn Sink>);
        Ok(RunDir { dir: dir.to_path_buf(), sink_id })
    }

    /// The run directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `<dir>/run.json`.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("run.json")
    }

    /// `<dir>/metrics.jsonl`.
    pub fn metrics_path(&self) -> PathBuf {
        self.dir.join("metrics.jsonl")
    }

    /// Writes (atomically: temp file + rename) `manifest` as pretty JSON
    /// to `run.json`. Callers usually include
    /// [`counters_json`](crate::metrics::counters_json) and
    /// [`histograms_json`](crate::metrics::histograms_json) in the final
    /// write.
    pub fn write_manifest(&self, manifest: &Json) -> std::io::Result<()> {
        let tmp = self.dir.join("run.json.tmp");
        std::fs::write(&tmp, manifest.pretty())?;
        std::fs::rename(&tmp, self.manifest_path())
    }
}

impl Drop for RunDir {
    fn drop(&mut self) {
        remove_sink(self.sink_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit_metrics;
    use crate::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cpdg-obs-run-{tag}-{}", std::process::id()))
    }

    /// Metric sinks are process-global, so tests that count lines in a
    /// run directory must not overlap with other emitters.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn run_dir_captures_metric_events() {
        let _guard = serial();
        let dir = temp_dir("capture");
        {
            let run = RunDir::create(&dir).unwrap();
            emit_metrics(
                "test_epoch",
                vec![
                    ("epoch".into(), Value::U64(0)),
                    ("loss".into(), Value::F64(0.5)),
                ],
            );
            emit_metrics("test_epoch", vec![("epoch".into(), Value::U64(1))]);
            run.write_manifest(&Json::obj(vec![("seed", Json::U64(7))])).unwrap();
        }
        let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        let lines: Vec<&str> = metrics.lines().collect();
        assert_eq!(lines.len(), 2, "{metrics}");
        assert!(lines[0].contains(r#""event":"test_epoch""#), "{}", lines[0]);
        assert!(lines[0].contains(r#""loss":0.5"#), "{}", lines[0]);
        let manifest = std::fs::read_to_string(dir.join("run.json")).unwrap();
        assert!(manifest.contains(r#""seed": 7"#), "{manifest}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_run_dir_stops_capturing() {
        let _guard = serial();
        let dir = temp_dir("drop");
        {
            let _run = RunDir::create(&dir).unwrap();
            emit_metrics("drop_before", vec![]);
        }
        emit_metrics("drop_after", vec![]);
        let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        assert!(metrics.contains("drop_before"));
        assert!(!metrics.contains("drop_after"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_metric_records_are_ignored() {
        let _guard = serial();
        let dir = temp_dir("ignore");
        {
            let _run = RunDir::create(&dir).unwrap();
            crate::warn!("core.checkpoint", "a diagnostic, not a metric");
        }
        let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        assert!(metrics.is_empty(), "{metrics}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
