//! # cpdg-obs
//!
//! Zero-dependency structured observability for the CPDG workspace.
//!
//! Four pieces, all process-wide and thread-safe:
//!
//! * **Structured logging** ([`log`], [`sinks`]) — leveled records with
//!   `key=value` fields dispatched to pluggable [`Sink`]s: human text on
//!   stderr (the default), JSONL to stderr or a file, and a capturable
//!   in-memory sink for tests ([`capture`]). Library crates log through
//!   the [`error!`]/[`warn!`]/[`info!`]/[`debug!`]/[`trace!`] macros
//!   instead of `println!`/`eprintln!` (enforced by clippy's
//!   `disallowed-macros` config at the workspace root).
//! * **Counters and histograms** ([`metrics`]) — named monotonic
//!   [`Counter`]s and log₂-bucketed [`Histogram`]s instrumenting the hot
//!   paths (matmul dispatches/flops, sampler queries, memory updates,
//!   checkpoint saves, guard interventions, EIE degradations; the serving
//!   layer adds `serve.requests`, `serve.shed`, `serve.degraded`,
//!   `serve.reloads`, `serve.breaker_trips`, `serve.breaker_closes`, and
//!   artifact integrity adds `integrity.legacy_loads` /
//!   `integrity.crc_failures`). Snapshots and deltas feed per-epoch
//!   metric records.
//! * **Span timers** ([`span`]) — RAII scope timers recording elapsed
//!   microseconds into a histogram on drop.
//! * **Run directories** ([`run`]) — the audit convention for training
//!   runs: `<dir>/run.json` (config, seed, threads, dataset stats,
//!   wall-clock, counter totals) plus `<dir>/metrics.jsonl` with one
//!   record per pre-train/fine-tune epoch, fed by [`emit_metrics`] events
//!   flowing through the logging layer (targets prefixed `metrics.`).
//!
//! ```
//! let c = cpdg_obs::capture();
//! cpdg_obs::warn!("demo.target", "something odd"; attempts = 3u64);
//! cpdg_obs::counter!("demo.events").inc();
//! assert_eq!(c.records_for("demo.target").len(), 1);
//! ```
//!
//! The crate depends only on `std`, so every other crate in the workspace
//! (including `cpdg-tensor` at the bottom of the dependency graph) can use
//! it without cycles or new external dependencies.

#![warn(missing_docs)]
#![warn(clippy::disallowed_macros)]

pub mod json;
pub mod log;
pub mod metrics;
pub mod run;
pub mod sinks;
pub mod span;
mod value;

pub use json::Json;
pub use log::{
    add_sink, emit_metrics, init, remove_sink, Level, LogFormat, Record, Sink, SinkId,
};
pub use metrics::{
    counter, counter_deltas, counters_snapshot, histogram, Counter, Histogram,
};
pub use run::RunDir;
pub use sinks::{capture, Capture, JsonStderrSink, JsonlFileSink, MemorySink, TextStderrSink};
pub use span::{span, Span};
pub use value::Value;
