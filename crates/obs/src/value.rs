//! Dynamically typed structured-log field values.

use crate::json;

/// A structured-log field value. Conversions exist from the primitive
/// types the workspace logs (integers, floats, bools, strings), so call
/// sites can write `key = some_usize` without manual wrapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counters, sizes, steps).
    U64(u64),
    /// Floating point (losses, rates, seconds).
    F64(f64),
    /// Free-form text (paths, labels, error messages).
    Str(String),
}

impl Value {
    /// Appends the value as a bare token for the human text sink.
    pub fn render_text(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&format!("{v}")),
            Value::Str(s) => {
                if s.contains(char::is_whitespace) || s.is_empty() {
                    out.push('"');
                    out.push_str(s);
                    out.push('"');
                } else {
                    out.push_str(s);
                }
            }
        }
    }

    /// Appends the value as JSON. Non-finite floats (which JSON cannot
    /// represent) render as `null`.
    pub fn render_json(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => json::escape_into(s, out),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.render_text(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::Str(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_cover_primitives() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-2i64), Value::I64(-2));
        assert_eq!(Value::from(1.5f32), Value::F64(1.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn nonfinite_floats_render_as_json_null() {
        let mut s = String::new();
        Value::F64(f64::NAN).render_json(&mut s);
        assert_eq!(s, "null");
        s.clear();
        Value::F64(f64::INFINITY).render_json(&mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn text_quotes_strings_with_spaces() {
        assert_eq!(Value::from("a b").to_string(), "\"a b\"");
        assert_eq!(Value::from("plain").to_string(), "plain");
    }
}
