//! RAII scope timers feeding histograms.

use crate::metrics::{histogram, Histogram};
use std::time::Instant;

/// Starts a scope timer; when the returned [`Span`] drops, the elapsed
/// microseconds are recorded into the histogram registered under `name`.
///
/// ```
/// {
///     let _t = cpdg_obs::span("demo.span_scope_us");
///     // ... timed work ...
/// }
/// assert!(cpdg_obs::histogram("demo.span_scope_us").snapshot().count >= 1);
/// ```
pub fn span(name: &'static str) -> Span {
    Span { hist: histogram(name), start: Instant::now() }
}

/// A running scope timer created by [`span`]; records on drop.
pub struct Span {
    hist: &'static Histogram,
    start: Instant,
}

impl Span {
    /// Elapsed time so far, without stopping the timer.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let before = histogram("span.test.scope").snapshot().count;
        {
            let _t = span("span.test.scope");
        }
        let after = histogram("span.test.scope").snapshot().count;
        assert_eq!(after, before + 1);
    }

    #[test]
    fn elapsed_is_monotone() {
        let t = span("span.test.elapsed");
        let a = t.elapsed_micros();
        let b = t.elapsed_micros();
        assert!(b >= a);
    }
}
