//! Process-wide named counters and histograms.
//!
//! Counters are monotonic `AtomicU64`s registered by name; handles are
//! `&'static` so hot paths pay one relaxed atomic add after a one-time
//! lookup (the [`counter!`](crate::counter!) macro caches the handle in a
//! call-site `OnceLock`). Histograms use log₂ bucketing — coarse, but
//! zero-allocation and mergeable, which is all span timing needs.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A named monotonic counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

fn counter_registry() -> &'static Mutex<BTreeMap<&'static str, &'static Counter>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, &'static Counter>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the counter registered under `name`, creating it on first use.
/// Handles are `'static` and freely shareable across threads.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = counter_registry().lock().expect("obs counter registry poisoned");
    reg.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter { name, value: AtomicU64::new(0) })))
}

/// Snapshot of every registered counter (name → total), sorted by name.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    let reg = counter_registry().lock().expect("obs counter registry poisoned");
    reg.iter().map(|(name, c)| (name.to_string(), c.get())).collect()
}

/// Counters that advanced since `before` (a [`counters_snapshot`]),
/// as `(name, delta)` pairs. Counters created after `before` report their
/// full value; zero deltas are omitted.
pub fn counter_deltas(before: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    counters_snapshot()
        .into_iter()
        .filter_map(|(name, now)| {
            let delta = now.saturating_sub(before.get(&name).copied().unwrap_or(0));
            if delta > 0 {
                Some((name, delta))
            } else {
                None
            }
        })
        .collect()
}

/// All counters as a JSON object (for `run.json`).
pub fn counters_json() -> Json {
    Json::Obj(
        counters_snapshot()
            .into_iter()
            .map(|(name, v)| (name, Json::U64(v)))
            .collect(),
    )
}

const BUCKETS: usize = 40;

/// A log₂-bucketed histogram of `u64` samples (typically microseconds
/// recorded by [`span`](crate::span())). Bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, with bucket 0 holding 0 and 1.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Approximate 50th percentile (upper edge of the median's bucket).
    pub p50: u64,
    /// Approximate 95th percentile (upper edge of its bucket).
    pub p95: u64,
}

impl Histogram {
    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample.
    pub fn record(&self, sample: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(sample, Ordering::Relaxed);
        self.max.fetch_max(sample, Ordering::Relaxed);
        let bucket = (64 - sample.leading_zeros() as usize)
            .saturating_sub(1)
            .min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes an approximate snapshot (buckets are read without a global
    /// lock, so concurrent recording can skew percentiles slightly).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= rank {
                    // Upper edge of bucket i: 2^(i+1) - 1.
                    return if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                }
            }
            self.max.load(Ordering::Relaxed)
        };
        HistogramSnapshot {
            name: self.name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
        }
    }
}

fn histogram_registry() -> &'static Mutex<BTreeMap<&'static str, &'static Histogram>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, &'static Histogram>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the histogram registered under `name`, creating it on first
/// use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = histogram_registry().lock().expect("obs histogram registry poisoned");
    reg.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    })
}

/// All histograms as a JSON object keyed by name (for `run.json`):
/// `{count, sum, mean, p50, p95, max}` per histogram.
pub fn histograms_json() -> Json {
    let reg = histogram_registry().lock().expect("obs histogram registry poisoned");
    Json::Obj(
        reg.iter()
            .map(|(name, h)| {
                let s = h.snapshot();
                let mean = if s.count > 0 { s.sum as f64 / s.count as f64 } else { 0.0 };
                (
                    name.to_string(),
                    Json::obj(vec![
                        ("count", Json::U64(s.count)),
                        ("sum", Json::U64(s.sum)),
                        ("mean", Json::F64(mean)),
                        ("p50", Json::U64(s.p50)),
                        ("p95", Json::U64(s.p95)),
                        ("max", Json::U64(s.max)),
                    ]),
                )
            })
            .collect(),
    )
}

/// Returns a `&'static Counter` by name, caching the registry lookup at
/// the call site so hot loops pay one atomic load + one atomic add:
///
/// ```
/// cpdg_obs::counter!("demo.metrics_macro").add(2);
/// assert!(cpdg_obs::counter!("demo.metrics_macro").get() >= 2);
/// ```
///
/// The name must be a string literal (it becomes the registered
/// `'static` name).
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static CACHED: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *CACHED.get_or_init(|| $crate::metrics::counter($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter("metrics.test.alpha");
        let before = counters_snapshot();
        c.add(3);
        c.inc();
        let deltas = counter_deltas(&before);
        assert!(deltas.contains(&("metrics.test.alpha".to_string(), 4)));
    }

    #[test]
    fn counter_handles_are_shared() {
        let a = counter("metrics.test.shared");
        let b = counter("metrics.test.shared");
        let base = a.get();
        b.inc();
        assert_eq!(a.get(), base + 1);
    }

    #[test]
    fn counter_macro_caches_handle() {
        let before = counter!("metrics.test.macro").get();
        counter!("metrics.test.macro").add(2);
        assert_eq!(counter!("metrics.test.macro").get(), before + 2);
    }

    #[test]
    fn zero_deltas_are_omitted() {
        counter("metrics.test.idle");
        let before = counters_snapshot();
        let deltas = counter_deltas(&before);
        assert!(!deltas.iter().any(|(n, _)| n == "metrics.test.idle"));
    }

    #[test]
    fn histogram_statistics() {
        let h = histogram("metrics.test.hist");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert!(s.p50 >= 3 && s.p50 <= 7, "p50={}", s.p50);
        assert!(s.p95 >= 1000, "p95={}", s.p95);
    }

    #[test]
    fn histogram_zero_sample_lands_in_first_bucket() {
        let h = histogram("metrics.test.hist_zero");
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 1); // upper edge of bucket 0
    }

    #[test]
    fn counters_json_renders() {
        counter("metrics.test.json").add(7);
        let rendered = counters_json().render();
        assert!(rendered.contains(r#""metrics.test.json":"#), "{rendered}");
    }
}
