//! Built-in sinks: stderr (text and JSONL), JSONL files, and an
//! in-memory capture sink for tests.

use crate::json::Json;
use crate::log::{add_sink, remove_sink, Level, Record, Sink, SinkId};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Renders a record as a JSON object (shared by the JSONL sinks).
pub(crate) fn record_to_json(record: &Record) -> Json {
    let mut obj = Json::obj(vec![
        ("ts_ms", Json::U64(record.unix_ms)),
        ("elapsed_s", Json::F64(record.elapsed_secs)),
        ("level", Json::from(record.level.as_str())),
        ("target", Json::from(record.target.as_str())),
    ]);
    if !record.message.is_empty() {
        obj.push("message", Json::from(record.message.as_str()));
    }
    if !record.fields.is_empty() {
        let fields = record
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(v.clone())))
            .collect();
        obj.push("fields", Json::Obj(fields));
    }
    obj
}

fn render_text_line(record: &Record) -> String {
    let mut line = format!(
        "[{:>9.3}s {:<5} {}] {}",
        record.elapsed_secs,
        record.level.as_str(),
        record.target,
        record.message,
    );
    for (k, v) in &record.fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        v.render_text(&mut line);
    }
    line
}

/// Human-readable stderr sink (the default console). Skips `metrics.*`
/// records, which belong to run-directory metric streams, not terminals.
pub struct TextStderrSink {
    level: Level,
}

impl TextStderrSink {
    /// Creates a text console filtering at `level`.
    pub fn new(level: Level) -> Self {
        TextStderrSink { level }
    }
}

impl Sink for TextStderrSink {
    fn wants(&self, level: Level, target: &str) -> bool {
        level <= self.level && !target.starts_with("metrics.")
    }
    fn log(&self, record: &Record) {
        let mut line = render_text_line(record);
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
    fn max_level(&self) -> Level {
        self.level
    }
}

/// JSONL stderr sink for machine-parsed console output
/// (`--log-format json`). Skips `metrics.*` records like the text console.
pub struct JsonStderrSink {
    level: Level,
}

impl JsonStderrSink {
    /// Creates a JSONL console filtering at `level`.
    pub fn new(level: Level) -> Self {
        JsonStderrSink { level }
    }
}

impl Sink for JsonStderrSink {
    fn wants(&self, level: Level, target: &str) -> bool {
        level <= self.level && !target.starts_with("metrics.")
    }
    fn log(&self, record: &Record) {
        let mut line = record_to_json(record).render();
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
    fn max_level(&self) -> Level {
        self.level
    }
}

/// Appends every record (including `metrics.*`) to a file as JSONL. Used
/// for full diagnostic traces alongside a run directory's curated
/// `metrics.jsonl`.
pub struct JsonlFileSink {
    level: Level,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlFileSink {
    /// Creates (truncating) `path` and logs records at or below `level`.
    pub fn create(path: &Path, level: Level) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlFileSink { level, writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlFileSink {
    fn wants(&self, level: Level, _target: &str) -> bool {
        level <= self.level
    }
    fn log(&self, record: &Record) {
        let mut line = record_to_json(record).render();
        line.push('\n');
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.write_all(line.as_bytes());
        }
    }
    fn max_level(&self) -> Level {
        self.level
    }
    fn flush(&self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// In-memory sink capturing every record; the backbone of log-assertion
/// tests via [`capture`].
#[derive(Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    /// Creates an empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones out everything captured so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().map(|r| r.clone()).unwrap_or_default()
    }
}

impl Sink for MemorySink {
    fn log(&self, record: &Record) {
        if let Ok(mut r) = self.records.lock() {
            r.push(record.clone());
        }
    }
}

/// Installs a [`MemorySink`] for the lifetime of the returned guard.
///
/// Captures are additive: other sinks keep receiving records, and
/// concurrent captures in parallel tests each see all records (filter by
/// target to isolate a subsystem under test).
pub fn capture() -> Capture {
    let sink = Arc::new(MemorySink::new());
    let id = add_sink(Arc::clone(&sink) as Arc<dyn Sink>);
    Capture { sink, id }
}

/// RAII guard around a captured [`MemorySink`]; dropping it uninstalls
/// the sink.
pub struct Capture {
    sink: Arc<MemorySink>,
    id: SinkId,
}

impl Capture {
    /// All records captured so far.
    pub fn records(&self) -> Vec<Record> {
        self.sink.records()
    }

    /// Records whose target is exactly `target` or starts with
    /// `"{target}."`.
    pub fn records_for(&self, target: &str) -> Vec<Record> {
        self.sink
            .records()
            .into_iter()
            .filter(|r| {
                r.target == target
                    || (r.target.len() > target.len()
                        && r.target.starts_with(target)
                        && r.target.as_bytes()[target.len()] == b'.')
            })
            .collect()
    }

    /// True if any captured record's message contains `needle`.
    pub fn any_message_contains(&self, needle: &str) -> bool {
        self.sink.records().iter().any(|r| r.message.contains(needle))
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        remove_sink(self.id);
    }
}

/// Renders a record the way the text console would — exposed so tests and
/// docs can assert on formatting without touching stderr.
pub fn format_text(record: &Record) -> String {
    render_text_line(record)
}

/// Renders a record as the JSONL sinks would (compact JSON, no newline).
pub fn format_json(record: &Record) -> String {
    record_to_json(record).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sample() -> Record {
        Record {
            level: Level::Warn,
            target: "core.checkpoint".into(),
            message: "skipping corrupt checkpoint".into(),
            fields: vec![
                ("path".into(), Value::from("ckpt-00000004.json")),
                ("step".into(), Value::U64(4)),
            ],
            elapsed_secs: 1.5,
            unix_ms: 1_700_000_000_000,
        }
    }

    #[test]
    fn text_format_includes_fields() {
        let line = format_text(&sample());
        assert!(line.contains("warn"), "{line}");
        assert!(line.contains("core.checkpoint"), "{line}");
        assert!(line.contains("path=ckpt-00000004.json"), "{line}");
        assert!(line.contains("step=4"), "{line}");
    }

    #[test]
    fn json_format_nests_fields() {
        let line = format_json(&sample());
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains(r#""level":"warn""#), "{line}");
        assert!(line.contains(r#""fields":{"path":"ckpt-00000004.json","step":4}"#), "{line}");
    }

    #[test]
    fn stderr_sinks_skip_metrics_targets() {
        let t = TextStderrSink::new(Level::Trace);
        assert!(!t.wants(Level::Info, "metrics.pretrain_epoch"));
        assert!(t.wants(Level::Info, "core.pretrain"));
        let j = JsonStderrSink::new(Level::Trace);
        assert!(!j.wants(Level::Info, "metrics.pretrain_epoch"));
    }

    #[test]
    fn capture_sees_records_and_filters_by_target() {
        let c = capture();
        crate::warn!("sinks.test_a", "first"; n = 1u64);
        crate::info!("sinks.test_a.sub", "second");
        crate::info!("sinks.test_ab", "unrelated");
        let all = c.records_for("sinks.test_a");
        assert_eq!(all.len(), 2, "{all:?}");
        assert!(c.any_message_contains("first"));
        assert_eq!(all[0].field("n"), Some(&Value::U64(1)));
    }

    #[test]
    fn capture_uninstalls_on_drop() {
        let before = {
            let c = capture();
            crate::info!("sinks.test_drop", "inside");
            c.records_for("sinks.test_drop").len()
        };
        assert_eq!(before, 1);
        // After the guard dropped, a fresh capture must not see stale sinks
        // replaying old records.
        let c2 = capture();
        assert_eq!(c2.records_for("sinks.test_drop").len(), 0);
    }

    #[test]
    fn jsonl_file_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("cpdg-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("diag.jsonl");
        let sink = JsonlFileSink::create(&path, Level::Debug).unwrap();
        assert!(sink.wants(Level::Info, "metrics.epoch"));
        assert!(!sink.wants(Level::Trace, "x"));
        sink.log(&sample());
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains(r#""target":"core.checkpoint""#));
        std::fs::remove_dir_all(&dir).ok();
    }
}
