//! The global structured logger: levels, records, sinks, and dispatch.
//!
//! A process has one logger holding a set of [`Sink`]s. When nothing has
//! been configured, the first dispatched record lazily installs a default
//! [`TextStderrSink`](crate::sinks::TextStderrSink) at [`Level::Info`] —
//! so library warnings always reach stderr, matching the behaviour of the
//! `eprintln!` call sites this layer replaced. Applications call [`init`]
//! to choose the level and stderr format; tests call
//! [`capture`](crate::sinks::capture) to observe records in memory.
//!
//! Dispatch is cheap when nobody listens: the [`enabled`] fast path reads
//! one atomic holding the most verbose level any installed sink accepts.

use crate::sinks::{JsonStderrSink, TextStderrSink};
use crate::Value;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error = 1,
    /// Degradations and suspicious states the run survives.
    Warn = 2,
    /// Lifecycle notices (resume, checkpoint published, run summary).
    Info = 3,
    /// Per-step diagnostics.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    /// Lower-case name (`"warn"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Level {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

/// Stderr rendering chosen by [`init`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable single lines.
    Text,
    /// One JSON object per line.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (expected text|json)")),
        }
    }
}

/// One structured log record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Severity.
    pub level: Level,
    /// Dotted origin, e.g. `core.checkpoint` or `metrics.pretrain_epoch`.
    pub target: String,
    /// Human-readable message (may be empty for pure metric events).
    pub message: String,
    /// Structured `key=value` fields.
    pub fields: Vec<(String, Value)>,
    /// Seconds since the process-wide logging clock started.
    pub elapsed_secs: f64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

impl Record {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A log destination. Implementations must be cheap to call and must not
/// log (re-entrant dispatch is not supported).
pub trait Sink: Send + Sync {
    /// Whether this sink wants a record at `level` from `target`.
    fn wants(&self, level: Level, target: &str) -> bool {
        let _ = (level, target);
        true
    }
    /// Consumes one record.
    fn log(&self, record: &Record);
    /// The most verbose level this sink ever accepts (drives the global
    /// [`enabled`] fast path).
    fn max_level(&self) -> Level {
        Level::Trace
    }
    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Handle for removing a sink installed with [`add_sink`].
pub type SinkId = u64;

struct Registry {
    sinks: Vec<(SinkId, Arc<dyn Sink>)>,
    next_id: SinkId,
    /// The stderr sink installed by default or by [`init`] (replaced on
    /// re-init so repeated `init` calls do not stack consoles).
    console_id: Option<SinkId>,
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Trace as u8);

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry { sinks: Vec::new(), next_id: 1, console_id: None })
    })
}

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

fn recompute_max(reg: &Registry) {
    let max = reg
        .sinks
        .iter()
        .map(|(_, s)| s.max_level() as u8)
        .max()
        .unwrap_or(Level::Error as u8);
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

fn ensure_console(reg: &mut Registry) {
    if reg.console_id.is_none() && reg.sinks.is_empty() {
        let id = reg.next_id;
        reg.next_id += 1;
        reg.sinks.push((id, Arc::new(TextStderrSink::new(Level::Info))));
        reg.console_id = Some(id);
        recompute_max(reg);
    }
}

/// Installs `sink`, returning a handle for [`remove_sink`].
pub fn add_sink(sink: Arc<dyn Sink>) -> SinkId {
    let mut reg = registry().lock().expect("obs registry poisoned");
    ensure_console(&mut reg);
    let id = reg.next_id;
    reg.next_id += 1;
    reg.sinks.push((id, sink));
    recompute_max(&reg);
    id
}

/// Removes (and flushes) a sink previously installed with [`add_sink`].
pub fn remove_sink(id: SinkId) {
    let removed = {
        let mut reg = registry().lock().expect("obs registry poisoned");
        let before = reg.sinks.len();
        let mut removed = None;
        reg.sinks.retain(|(sid, s)| {
            if *sid == id {
                removed = Some(Arc::clone(s));
                false
            } else {
                true
            }
        });
        if reg.sinks.len() != before {
            recompute_max(&reg);
        }
        if reg.console_id == Some(id) {
            reg.console_id = None;
        }
        removed
    };
    if let Some(sink) = removed {
        sink.flush();
    }
}

/// Configures the stderr console sink: `level` filters, `format` chooses
/// human text or JSONL rendering. Idempotent — a previous console (default
/// or from an earlier `init`) is replaced, other sinks are untouched.
pub fn init(level: Level, format: LogFormat) {
    let mut reg = registry().lock().expect("obs registry poisoned");
    if let Some(old) = reg.console_id.take() {
        reg.sinks.retain(|(sid, _)| *sid != old);
    }
    let sink: Arc<dyn Sink> = match format {
        LogFormat::Text => Arc::new(TextStderrSink::new(level)),
        LogFormat::Json => Arc::new(JsonStderrSink::new(level)),
    };
    let id = reg.next_id;
    reg.next_id += 1;
    reg.sinks.push((id, sink));
    reg.console_id = Some(id);
    recompute_max(&reg);
}

/// Fast check used by the logging macros: is any sink interested in
/// records at `level`?
pub fn enabled(level: Level) -> bool {
    // Before any sink is installed the default console (Info) will be
    // created on first dispatch; report against that future state.
    let max = Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed));
    let reg_empty = registry().lock().map(|r| r.sinks.is_empty()).unwrap_or(false);
    if reg_empty {
        return level <= Level::Info;
    }
    level <= max
}

/// Dispatches one record to every interested sink. Prefer the
/// [`error!`](crate::error!)/[`warn!`](crate::warn!)/… macros, which add
/// the `enabled` fast path and field conversion.
pub fn dispatch(level: Level, target: &str, message: String, fields: Vec<(String, Value)>) {
    let sinks: Vec<Arc<dyn Sink>> = {
        let mut reg = registry().lock().expect("obs registry poisoned");
        ensure_console(&mut reg);
        reg.sinks
            .iter()
            .filter(|(_, s)| s.wants(level, target))
            .map(|(_, s)| Arc::clone(s))
            .collect()
    };
    if sinks.is_empty() {
        return;
    }
    let record = Record {
        level,
        target: target.to_string(),
        message,
        fields,
        elapsed_secs: start_instant().elapsed().as_secs_f64(),
        unix_ms: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
    };
    for sink in sinks {
        sink.log(&record);
    }
}

/// Emits a machine-readable metric event: an info record with target
/// `metrics.<event>` routed to metric sinks (e.g. a run directory's
/// `metrics.jsonl`) and skipped by the stderr console sinks.
pub fn emit_metrics(event: &str, fields: Vec<(String, Value)>) {
    dispatch(Level::Info, &format!("metrics.{event}"), String::new(), fields);
}

/// Core logging macro: `obs_log!(level, target, message; key = value, …)`.
/// `message` is any `Into<String>`; field values convert via
/// [`Value::from`]. Prefer the leveled shorthands
/// ([`error!`](crate::error!), [`warn!`](crate::warn!),
/// [`info!`](crate::info!), [`debug!`](crate::debug!),
/// [`trace!`](crate::trace!)).
#[macro_export]
macro_rules! obs_log {
    ($lvl:expr, $target:expr, $msg:expr $(; $($k:ident = $v:expr),+ $(,)?)?) => {{
        let lvl = $lvl;
        if $crate::log::enabled(lvl) {
            $crate::log::dispatch(
                lvl,
                $target,
                ::std::string::String::from($msg),
                ::std::vec![
                    $($( (::std::string::String::from(::std::stringify!($k)),
                          $crate::Value::from($v)) ),+)?
                ],
            );
        }
    }};
}

/// Logs at [`Level::Error`]: `error!(target, message; key = value, …)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::obs_log!($crate::Level::Error, $($t)*) };
}

/// Logs at [`Level::Warn`]: `warn!(target, message; key = value, …)`.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::obs_log!($crate::Level::Warn, $($t)*) };
}

/// Logs at [`Level::Info`]: `info!(target, message; key = value, …)`.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::obs_log!($crate::Level::Info, $($t)*) };
}

/// Logs at [`Level::Debug`]: `debug!(target, message; key = value, …)`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::obs_log!($crate::Level::Debug, $($t)*) };
}

/// Logs at [`Level::Trace`]: `trace!(target, message; key = value, …)`.
#[macro_export]
macro_rules! trace {
    ($($t:tt)*) => { $crate::obs_log!($crate::Level::Trace, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_round_trips() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(l.as_str().parse::<Level>().unwrap(), l);
        }
        assert!("loud".parse::<Level>().is_err());
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
    }

    #[test]
    fn format_parsing() {
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert_eq!("JSON".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("xml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn record_field_lookup() {
        let r = Record {
            level: Level::Info,
            target: "t".into(),
            message: String::new(),
            fields: vec![("k".into(), Value::U64(5))],
            elapsed_secs: 0.0,
            unix_ms: 0,
        };
        assert_eq!(r.field("k"), Some(&Value::U64(5)));
        assert_eq!(r.field("missing"), None);
    }
}
