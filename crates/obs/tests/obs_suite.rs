//! End-to-end exercise of the observability layer: macros → sinks →
//! run-directory artefacts, in one process the way a training run uses it.

use cpdg_obs::{counter, emit_metrics, span, Json, Level, RunDir, Value};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cpdg-obs-suite-{tag}-{}", std::process::id()))
}

#[test]
fn full_run_round_trip() {
    let dir = temp_dir("full");
    let cap = cpdg_obs::capture();
    let before = cpdg_obs::counters_snapshot();
    {
        let run = RunDir::create(&dir).unwrap();
        run.write_manifest(&Json::obj(vec![
            ("kind", Json::from("pretrain")),
            ("seed", Json::U64(42)),
            ("threads", Json::U64(2)),
        ]))
        .unwrap();

        // Simulated epoch loop: counters tick, spans time, metrics emit.
        for epoch in 0u64..3 {
            let _t = span("suite.epoch_us");
            counter!("suite.steps").add(10);
            let deltas = cpdg_obs::counter_deltas(&before);
            let mut fields: Vec<(String, Value)> = vec![
                ("epoch".into(), Value::U64(epoch)),
                ("loss".into(), Value::F64(1.0 / (epoch + 1) as f64)),
            ];
            for (name, d) in deltas {
                fields.push((format!("d_{name}"), Value::U64(d)));
            }
            emit_metrics("suite_epoch", fields);
        }
        cpdg_obs::warn!("suite.guard", "loss spike"; epoch = 1u64, ratio = 3.5f64);

        // Final manifest includes counter totals.
        let mut manifest = Json::obj(vec![("seed", Json::U64(42))]);
        manifest.push("counters", cpdg_obs::metrics::counters_json());
        manifest.push("spans_us", cpdg_obs::metrics::histograms_json());
        run.write_manifest(&manifest).unwrap();
    }

    // metrics.jsonl: one parseable line per epoch, nothing else.
    let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
    let epoch_lines: Vec<&str> =
        metrics.lines().filter(|l| l.contains(r#""event":"suite_epoch""#)).collect();
    assert_eq!(epoch_lines.len(), 3, "{metrics}");
    assert!(epoch_lines[0].contains(r#""loss":1"#), "{}", epoch_lines[0]);
    assert!(epoch_lines[0].contains(r#""d_suite.steps":10"#), "{}", epoch_lines[0]);
    assert!(epoch_lines[2].contains(r#""d_suite.steps":30"#), "{}", epoch_lines[2]);
    // The warn diagnostic must NOT leak into the metric stream...
    assert!(!metrics.contains("loss spike"), "{metrics}");
    // ...but is visible to the capture sink with its structured fields.
    let warns = cap.records_for("suite.guard");
    assert_eq!(warns.len(), 1);
    assert_eq!(warns[0].level, Level::Warn);
    assert_eq!(warns[0].field("ratio"), Some(&Value::F64(3.5)));

    // run.json: pretty, atomic, and carries the counter totals.
    let manifest = std::fs::read_to_string(dir.join("run.json")).unwrap();
    assert!(manifest.contains(r#""seed": 42"#), "{manifest}");
    assert!(manifest.contains(r#""suite.steps": 30"#), "{manifest}");
    assert!(manifest.contains(r#""suite.epoch_us""#), "{manifest}");
    assert!(!dir.join("run.json.tmp").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_logging_is_safe() {
    let cap = cpdg_obs::capture();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..50u64 {
                    cpdg_obs::debug!("suite.concurrent", "tick"; thread = t, i = i);
                    counter!("suite.concurrent.ticks").inc();
                }
            });
        }
    });
    assert_eq!(cap.records_for("suite.concurrent").len(), 200);
    assert!(counter!("suite.concurrent.ticks").get() >= 200);
}
