//! # cpdg-core
//!
//! CPDG — *Contrastive Pre-Training for Dynamic Graph Neural Networks*
//! (ICDE 2024) — implemented end-to-end:
//!
//! * the flexible **structural-temporal subgraph sampler** (η-BFS with
//!   chronological / reverse-chronological probabilities, ε-DFS) — §IV-A;
//! * **temporal and structural contrastive pre-training** with mean-pool
//!   readouts and triplet margin losses, plus the temporal-link-prediction
//!   pretext task, combined as `L_pre = (1−β)L_η + βL_ε + L_tlp` — §IV-B;
//! * **Evolution Information Enhanced (EIE) fine-tuning** from uniform
//!   memory checkpoints, with mean / attention / GRU fusions — §IV-C;
//! * one-call **pipelines** covering the paper's transfer settings and
//!   downstream tasks.
//!
//! ```no_run
//! use cpdg_core::pipeline::{run_link_prediction, PipelineConfig};
//! use cpdg_dgnn::EncoderKind;
//! use cpdg_graph::split::time_transfer;
//! use cpdg_graph::{generate, SyntheticConfig};
//!
//! let ds = generate(&SyntheticConfig::amazon_like(0));
//! let split = time_transfer(&ds.graph, 0.6).unwrap();
//! let cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(0);
//! let res = run_link_prediction(&split, &cfg, false);
//! println!("AUC {:.4}  AP {:.4}", res.auc, res.ap);
//! ```

#![warn(missing_docs)]
#![warn(clippy::disallowed_macros)]

pub mod chaos;
pub mod checkpoint;
pub mod continual;
pub mod contrast;
pub mod eie;
pub mod error;
pub mod finetune;
pub mod integrity;
pub mod model_io;
pub mod objective;
pub mod pipeline;
pub mod pretrain;
pub mod sampler;
pub mod scrub;
pub mod storage;
pub mod wal;

pub use chaos::{
    load_jodie_chaos, ChaosStorage, Fault, FaultHook, FaultKind, FaultPlan, FaultPoint, FaultSpec,
    RetryPolicy, Trigger,
};
pub use checkpoint::{CheckpointConfig, CheckpointManager, TrainCheckpoint};
pub use continual::{
    slice_windows, validate_candidate, ContinualConfig, ContinualTrainer, CycleReport, EventWindow,
    GateConfig, GateReport, WindowConfig,
};
pub use eie::{EieFusion, EieModule};
pub use error::{CpdgError, CpdgResult};
pub use finetune::{FinetuneConfig, FinetuneStrategy, LinkPredResult};
pub use model_io::ModelFile;
pub use objective::CpdgObjective;
pub use pipeline::{PipelineConfig, PretrainMode};
pub use pretrain::{
    pretrain, pretrain_resumable, LossBreakdown, PretrainConfig, PretrainOutput, PretrainRuntime,
};
pub use scrub::{
    read_sealed_replicated, write_replicated, ArtifactClass, CycleReport as ScrubCycleReport,
    ReplicatedRead, ScrubConfig, Scrubber,
};
pub use storage::{FsStorage, Storage, FS_STORAGE};
pub use wal::{FsyncPolicy, RecoveryStats, Wal, WalCheckpoint, WalConfig};
