//! Append-only write-ahead log for durable event ingestion.
//!
//! The serving engine streams edge events into DGNN memory; until PR 6
//! that state lived only in RAM, so a crash lost every event since the
//! last graceful drain. This module makes ingestion crash-consistent:
//! every event is framed, CRC-protected, and written to a segmented log
//! *before* memory mutates, and on startup the log is replayed through
//! the exact ingestion path to reconstruct state bit-identically.
//!
//! ## On-disk format (the contract the future mmap event store reads)
//!
//! A WAL directory holds segment files named `wal-{start:016x}.seg`,
//! where `start` is the index of the first record in the segment.
//! Each segment begins with a 16-byte header:
//!
//! ```text
//! [magic "CPDGWAL1": 8 bytes][start index: u64 LE]
//! ```
//!
//! followed by back-to-back record frames:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][index: u64 LE][payload: len - 8 bytes]
//! ```
//!
//! `len` counts the body (index + payload); `crc32` is
//! [`integrity::crc32`](crate::integrity::crc32) over the body. Record
//! indexes are contiguous across segments, starting at 0. Event payloads
//! use the fixed 18-byte encoding of [`encode_event`].
//!
//! ## Durability and recovery invariants
//!
//! * **Append-before-mutate.** The engine appends to the WAL first; only
//!   a successful append may mutate memory.
//! * **Exactly-once.** A failed append (injected fault, full disk,
//!   failed fsync) rolls the segment back to its pre-append length, so a
//!   rejected event is in *neither* memory nor the log — replay can never
//!   resurrect an event the client saw `ERR` for.
//! * **Torn-tail truncation.** [`Wal::open`] scans every frame; a torn
//!   or corrupt tail in the *last* segment is truncated away (a crash
//!   mid-write is expected), with the dropped bytes preserved in a
//!   `<segment>.torn` forensic sidecar. Corruption in a sealed interior
//!   segment is bit rot, not a crash artifact: recovery falls through the
//!   segment's `.r<i>` replicas, healing the primary from the first sound
//!   copy; a segment with *no* sound copy is quarantined and recovery
//!   refuses with a typed [`CpdgError::WalGap`] naming the missing record
//!   range — never a silent skip.
//! * **Checkpoint-then-truncate.** A drain writes a CRC-sealed
//!   [`WalCheckpoint`] (graph + encoder state + applied index) via the
//!   atomic-publish protocol, then drops fully-covered sealed segments.
//!
//! Fsync cadence is configurable via [`FsyncPolicy`]: `always` (sync
//! every append), `every-N` (sync each N-th append), or `os` (leave
//! flushing to the OS page cache — fastest, weakest).
//!
//! Chaos integration: appends consult the `wal.append` and `wal.fsync`
//! fault points, replay consults `wal.replay`; transient faults are
//! absorbed by the configured [`RetryPolicy`], permanent ones surface as
//! [`CpdgError::Fault`].

use crate::chaos::{Fault, FaultHook, FaultPoint, RetryPolicy};
use crate::error::{CpdgError, CpdgResult};
use crate::integrity::crc32;
use crate::storage::Storage;
use cpdg_dgnn::EncoderState;
use cpdg_graph::{DynamicGraph, FieldId, NodeId, Timestamp};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"CPDGWAL1";
/// Segment header length: magic + start index.
pub const SEGMENT_HEADER_LEN: u64 = 16;
/// Frame header length: `len` + `crc32`.
const FRAME_HEADER_LEN: u64 = 8;
/// Sanity cap on one record body, so a corrupt `len` cannot trigger a
/// multi-gigabyte allocation during the open scan.
const MAX_RECORD_BODY: u32 = 1 << 24;
/// Fixed width of one encoded event payload ([`encode_event`]).
pub const EVENT_PAYLOAD_LEN: usize = 18;
/// Fixed width of one sequence-stamped event payload
/// ([`encode_event_seq`]): a u64 global sequence number followed by the
/// 18-byte [`encode_event`] layout. Used by sharded WALs, where each
/// shard's log holds a subsequence of the global event stream and
/// recovery merge-replays all shards in sequence order.
pub const SEQ_EVENT_PAYLOAD_LEN: usize = 26;
/// Conventional file name for the drain checkpoint inside a WAL dir.
pub const CHECKPOINT_FILE: &str = "checkpoint.cpdg";

/// The subdirectory of a WAL root that holds shard `k`'s segment stream
/// (`wal.shard<k>/`). Shard 0 of a 1-shard engine does **not** use this —
/// the single-shard layout is the legacy flat directory, so existing WAL
/// dirs keep working unchanged.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("wal.shard{shard}"))
}

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — strongest durability, slowest.
    Always,
    /// `fsync` after every N-th append (N ≥ 1); a crash loses at most
    /// N − 1 acknowledged events.
    EveryN(u32),
    /// Never `fsync` explicitly; the OS page cache decides. Survives
    /// process crashes (`kill -9`) but not power loss.
    Os,
}

impl FsyncPolicy {
    /// The wire spelling used by `--fsync` and [`FromStr`].
    pub fn render(self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
            FsyncPolicy::Os => "os".to_string(),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "os" => Ok(FsyncPolicy::Os),
            _ => match s.strip_prefix("every-").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "invalid fsync policy {s:?} (expected always, os, or every-N with N >= 1)"
                )),
            },
        }
    }
}

/// Write-ahead-log tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the open one reaches this size.
    pub segment_bytes: u64,
    /// Fsync cadence for appends.
    pub fsync: FsyncPolicy,
    /// Retry budget for transient append/fsync/replay faults.
    pub retry: RetryPolicy,
    /// Sealed-copy count for durable artifacts: each rotation publishes
    /// the sealed segment as `replicas - 1` additional `.r<i>` copies,
    /// and recovery falls through them (healing the primary) when the
    /// primary is corrupt. `1` disables replication.
    pub replicas: usize,
}

impl Default for WalConfig {
    /// 1 MiB segments, fsync on every append, the default retry budget,
    /// two sealed copies.
    fn default() -> Self {
        Self {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Always,
            retry: RetryPolicy::default(),
            replicas: crate::scrub::DEFAULT_REPLICAS,
        }
    }
}

/// What [`Wal::open`] found and repaired — surfaced in `STATUS` replies
/// and the recovery log record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Segment files scanned (the dropped tail, if any, included).
    pub segments: usize,
    /// Valid records found across all segments.
    pub records: u64,
    /// Torn-tail bytes truncated from the last segment (or the whole
    /// last file, when its header itself was torn).
    pub truncated_bytes: u64,
}

/// One sealed (no longer written) segment.
#[derive(Debug, Clone)]
struct SegmentInfo {
    path: PathBuf,
    /// Index of the first record in the segment.
    start: u64,
    /// One past the index of the last record (== next segment's start).
    end: u64,
    /// File size in bytes.
    bytes: u64,
}

/// The append-only write-ahead log. One instance owns a WAL directory;
/// appends go to the open tail segment, sealed segments are kept until a
/// checkpoint covers them ([`Wal::truncate_through`]).
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    hook: FaultHook,
    sealed: Vec<SegmentInfo>,
    /// Open tail segment.
    file: File,
    seg_path: PathBuf,
    seg_start: u64,
    seg_len: u64,
    next_index: u64,
    appends_since_sync: u32,
    recovery: RecoveryStats,
}

fn segment_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("wal-{start:016x}.seg"))
}

fn segment_header(start: u64) -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut h = [0u8; SEGMENT_HEADER_LEN as usize];
    h[..8].copy_from_slice(&SEGMENT_MAGIC);
    h[8..].copy_from_slice(&start.to_le_bytes());
    h
}

/// Frames one record: `[len][crc32][index][payload]`.
fn encode_frame(index: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&index.to_le_bytes());
    body.extend_from_slice(payload);
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Outcome of scanning one segment's frames.
struct SegmentScan {
    /// Records successfully parsed, in order: `(index, payload)`.
    records: Vec<(u64, Vec<u8>)>,
    /// Byte offset one past the last valid frame.
    valid_len: u64,
    /// Total bytes in the scanned buffer (header included).
    total_len: u64,
}

/// Parses every frame in `bytes` (a whole segment file). Returns the
/// records that parse and where parsing stopped; the caller decides
/// whether a short `valid_len` is a torn tail (truncate) or corruption
/// (error). `None` when the header itself is invalid.
fn scan_segment(bytes: &[u8], expect_start: Option<u64>) -> Option<SegmentScan> {
    if bytes.len() < SEGMENT_HEADER_LEN as usize || bytes[..8] != SEGMENT_MAGIC {
        return None;
    }
    let start = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if let Some(expect) = expect_start {
        if start != expect {
            return None;
        }
    }
    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN as usize;
    let mut next = start;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER_LEN as usize {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len < 8 || len > MAX_RECORD_BODY {
            break;
        }
        let body_end = FRAME_HEADER_LEN as usize + len as usize;
        if rest.len() < body_end {
            break;
        }
        let body = &rest[FRAME_HEADER_LEN as usize..body_end];
        if crc32(body) != crc {
            break;
        }
        let index = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        if index != next {
            break;
        }
        records.push((index, body[8..].to_vec()));
        next += 1;
        offset += body_end;
    }
    Some(SegmentScan {
        records,
        valid_len: offset as u64,
        total_len: bytes.len() as u64,
    })
}

/// Whether `bytes` parse as one *complete, sound* WAL segment: a valid
/// header and every byte accounted for by CRC-valid, densely-indexed
/// frames. What the scrubber and the replica fall-through use to judge a
/// sealed segment copy (the active tail is exempt — a torn tail there is
/// a legal crash artifact).
pub fn segment_is_sound(bytes: &[u8]) -> bool {
    matches!(scan_segment(bytes, None), Some(scan) if scan.valid_len == scan.total_len)
}

/// Preserves bytes about to be truncated/dropped in a `<segment>.torn`
/// forensic sidecar (best effort — truncation proceeds either way).
fn preserve_torn_bytes(path: &Path, torn: &[u8]) {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let sidecar = path.with_file_name(format!("{name}.torn"));
    match crate::FS_STORAGE.write_atomic(&sidecar, torn) {
        Ok(()) => {
            cpdg_obs::info!(
                "core.wal",
                "preserved torn bytes in forensic sidecar";
                path = sidecar.display().to_string(),
                bytes = torn.len() as u64,
            );
        }
        Err(e) => {
            cpdg_obs::warn!(
                "core.wal",
                "failed to preserve torn bytes";
                path = sidecar.display().to_string(),
                error = e.to_string(),
            );
        }
    }
}

impl Wal {
    /// Opens (creating if absent) the WAL in `dir`, scanning and
    /// repairing existing segments: a torn tail in the last segment is
    /// truncated (crash artifact), while an invalid frame or header in a
    /// sealed interior segment is [`CpdgError::Corrupt`]. The recovery
    /// stats report what was found; [`Wal::replay`] streams the
    /// surviving records.
    pub fn open(dir: &Path, config: WalConfig, hook: FaultHook) -> CpdgResult<Wal> {
        std::fs::create_dir_all(dir).map_err(|e| CpdgError::io(dir, e))?;
        let mut starts: Vec<u64> = std::fs::read_dir(dir)
            .map_err(|e| CpdgError::io(dir, e))?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        starts.sort_unstable();

        let mut stats = RecoveryStats {
            segments: starts.len(),
            ..Default::default()
        };
        let mut sealed: Vec<SegmentInfo> = Vec::new();
        let mut next_index = starts.first().copied().unwrap_or(0);
        let mut tail: Option<(PathBuf, u64, u64)> = None; // (path, start, valid_len)
        for (i, &start) in starts.iter().enumerate() {
            let path = segment_path(dir, start);
            let mut bytes = std::fs::read(&path).map_err(|e| CpdgError::io(&path, e))?;
            let last = i + 1 == starts.len();
            if start > next_index {
                // A preceding segment is missing (quarantined by a prior
                // scrub, or removed by a foreign tool): the records in
                // between are gone, and replaying past them would corrupt
                // state silently. Refuse with the exact missing range.
                return Err(CpdgError::WalGap {
                    dir: dir.to_path_buf(),
                    expected: next_index,
                    found: start,
                });
            }
            if !last {
                // Sealed interior segments are scrub-managed: the chaos
                // bitflip point may corrupt this read, and a corrupt copy
                // falls through the replicas (healing the primary). The
                // tail is exempt — a torn tail is a legal crash artifact,
                // and an injected flip there must not truncate real data.
                crate::scrub::maybe_bitflip(&hook, &path, &mut bytes);
            }
            let sound = |b: &[u8]| {
                matches!(
                    scan_segment(b, Some(next_index)),
                    Some(ref s) if s.valid_len == s.total_len
                )
            };
            if !last && !sound(&bytes) {
                cpdg_obs::counter!("wal.segment_corruptions").inc();
                let mut healed = None;
                for r in 1..config.replicas.max(1) {
                    let rp = crate::scrub::replica_path(&path, r);
                    let Ok(mut rb) = std::fs::read(&rp) else {
                        continue;
                    };
                    crate::scrub::maybe_bitflip(&hook, &rp, &mut rb);
                    if sound(&rb) {
                        cpdg_obs::warn!(
                            "core.wal",
                            "corrupt sealed segment healed from replica";
                            path = path.display().to_string(),
                            replica = rp.display().to_string(),
                        );
                        healed = Some(rb);
                        break;
                    }
                }
                match healed {
                    Some(rb) => {
                        // Rewrite the bad primary from the good replica
                        // (suppressed by an injected scrub.repair fault —
                        // recovery still proceeds on the in-memory copy).
                        crate::scrub::repair_copies(
                            &crate::FS_STORAGE,
                            &[path.clone()],
                            &rb,
                            &hook,
                        );
                        bytes = rb;
                    }
                    None => {
                        // No sound copy anywhere: quarantine the segment
                        // (forensics preserved) and refuse with the gap
                        // its records leave behind.
                        crate::scrub::quarantine_artifact(&crate::FS_STORAGE, &path)?;
                        return Err(CpdgError::WalGap {
                            dir: dir.to_path_buf(),
                            expected: next_index,
                            found: starts[i + 1],
                        });
                    }
                }
            }
            let scan = match scan_segment(&bytes, Some(next_index)) {
                Some(scan) => scan,
                None => {
                    debug_assert!(last, "non-tail segments were healed or refused above");
                    // The tail's header itself is torn: preserve the bytes
                    // in a forensic sidecar, drop the file, and reopen a
                    // fresh tail at the expected index.
                    stats.truncated_bytes += bytes.len() as u64;
                    preserve_torn_bytes(&path, &bytes);
                    std::fs::remove_file(&path).map_err(|e| CpdgError::io(&path, e))?;
                    cpdg_obs::warn!(
                        "core.wal",
                        "dropped WAL tail segment with torn header";
                        path = path.display().to_string(),
                        bytes = bytes.len() as u64,
                    );
                    break;
                }
            };
            stats.records += scan.records.len() as u64;
            next_index += scan.records.len() as u64;
            if !last {
                sealed.push(SegmentInfo {
                    path,
                    start,
                    end: next_index,
                    bytes: scan.total_len,
                });
            } else {
                if scan.valid_len != scan.total_len {
                    stats.truncated_bytes += scan.total_len - scan.valid_len;
                    preserve_torn_bytes(&path, &bytes[scan.valid_len as usize..]);
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| CpdgError::io(&path, e))?;
                    f.set_len(scan.valid_len)
                        .map_err(|e| CpdgError::io(&path, e))?;
                    f.sync_data().map_err(|e| CpdgError::io(&path, e))?;
                    cpdg_obs::warn!(
                        "core.wal",
                        "truncated torn WAL tail";
                        path = path.display().to_string(),
                        bytes = scan.total_len - scan.valid_len,
                    );
                }
                tail = Some((path, start, scan.valid_len));
            }
        }
        if stats.truncated_bytes > 0 {
            cpdg_obs::counter!("wal.truncated_bytes").add(stats.truncated_bytes);
        }

        // Open (or create) the tail segment for appending.
        let (seg_path, seg_start, seg_len, file) = match tail {
            Some((path, start, len)) => {
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| CpdgError::io(&path, e))?;
                file.seek(SeekFrom::Start(len))
                    .map_err(|e| CpdgError::io(&path, e))?;
                (path, start, len, file)
            }
            None => {
                let path = segment_path(dir, next_index);
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)
                    .map_err(|e| CpdgError::io(&path, e))?;
                file.write_all(&segment_header(next_index))
                    .map_err(|e| CpdgError::io(&path, e))?;
                file.sync_data().map_err(|e| CpdgError::io(&path, e))?;
                (path, next_index, SEGMENT_HEADER_LEN, file)
            }
        };

        cpdg_obs::info!(
            "core.wal",
            "WAL opened";
            dir = dir.display().to_string(),
            segments = stats.segments as u64,
            records = stats.records,
            truncated_bytes = stats.truncated_bytes,
            next_index = next_index,
        );
        Ok(Wal {
            dir: dir.to_path_buf(),
            config,
            hook,
            sealed,
            file,
            seg_path,
            seg_start,
            seg_len,
            next_index,
            appends_since_sync: 0,
            recovery: stats,
        })
    }

    /// What [`Wal::open`] found and repaired.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// The configuration this log was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// The WAL directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index the next appended record will get (== records ever logged
    /// when the log has never been truncated).
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Index of the first record still present in the log.
    pub fn first_index(&self) -> u64 {
        self.sealed
            .first()
            .map(|s| s.start)
            .unwrap_or(self.seg_start)
    }

    /// Live segment files (sealed + the open tail).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Total bytes across live segments, headers included.
    pub fn total_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.seg_len
    }

    /// Appends one record, returning its index. The record is on disk
    /// (to the degree the [`FsyncPolicy`] guarantees) when this returns
    /// `Ok`; on *any* failure the segment is rolled back to its
    /// pre-append length, so a failed append leaves no trace for replay
    /// to resurrect.
    pub fn append(&mut self, payload: &[u8]) -> CpdgResult<u64> {
        let index = self.next_index;
        let frame = encode_frame(index, payload);
        let pre_len = self.seg_len;
        let retry = self.config.retry;

        let write = {
            let file = &mut self.file;
            let hook = &self.hook;
            retry.run(FaultPoint::WalAppend.name(), || {
                hook.check(FaultPoint::WalAppend).map_err(Fault::into_io)?;
                // A prior torn attempt is undone before re-writing.
                file.set_len(pre_len)?;
                file.seek(SeekFrom::Start(pre_len))?;
                file.write_all(&frame)?;
                Ok(())
            })
        };
        if let Err(e) = write {
            self.rollback(pre_len);
            cpdg_obs::counter!("wal.append_failures").inc();
            return Err(CpdgError::Fault {
                point: FaultPoint::WalAppend.name().to_string(),
                reason: e.to_string(),
            });
        }

        let want_sync = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync + 1 >= n.max(1),
            FsyncPolicy::Os => false,
        };
        if want_sync {
            let sync = {
                let file = &mut self.file;
                let hook = &self.hook;
                retry.run(FaultPoint::WalFsync.name(), || {
                    hook.check(FaultPoint::WalFsync).map_err(Fault::into_io)?;
                    file.sync_data()?;
                    Ok(())
                })
            };
            if let Err(e) = sync {
                // An unsynced record offers no durability promise we can
                // keep — roll it back so the caller's ERR is the truth.
                self.rollback(pre_len);
                cpdg_obs::counter!("wal.append_failures").inc();
                return Err(CpdgError::Fault {
                    point: FaultPoint::WalFsync.name().to_string(),
                    reason: e.to_string(),
                });
            }
            self.appends_since_sync = 0;
        } else {
            self.appends_since_sync += 1;
        }

        self.seg_len = pre_len + frame.len() as u64;
        self.next_index = index + 1;
        cpdg_obs::counter!("wal.appends").inc();
        if self.seg_len >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok(index)
    }

    /// Best-effort restoration of the pre-append segment length after a
    /// failed append. A failure here leaves a torn tail — exactly what
    /// the open scan truncates away.
    fn rollback(&mut self, pre_len: u64) {
        let _ = self.file.set_len(pre_len);
        let _ = self.file.seek(SeekFrom::Start(pre_len));
    }

    /// Seals the open tail (final fsync), publishes its replica copies,
    /// and starts a fresh segment.
    fn rotate(&mut self) -> CpdgResult<()> {
        self.file
            .sync_data()
            .map_err(|e| CpdgError::io(&self.seg_path, e))?;
        if self.config.replicas > 1 {
            // Replicas are written best-effort: the primary is already
            // durable, and a missing replica is backfilled by the next
            // scrub cycle — availability beats copy count here.
            match std::fs::read(&self.seg_path) {
                Ok(bytes) => {
                    for i in 1..self.config.replicas {
                        let rp = crate::scrub::replica_path(&self.seg_path, i);
                        if let Err(e) = crate::FS_STORAGE.write_atomic(&rp, &bytes) {
                            cpdg_obs::warn!(
                                "core.wal",
                                "failed to write sealed-segment replica";
                                path = rp.display().to_string(),
                                error = e.to_string(),
                            );
                        }
                    }
                }
                Err(e) => {
                    cpdg_obs::warn!(
                        "core.wal",
                        "failed to read sealed segment for replication";
                        path = self.seg_path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        self.sealed.push(SegmentInfo {
            path: self.seg_path.clone(),
            start: self.seg_start,
            end: self.next_index,
            bytes: self.seg_len,
        });
        let path = segment_path(&self.dir, self.next_index);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| CpdgError::io(&path, e))?;
        file.write_all(&segment_header(self.next_index))
            .map_err(|e| CpdgError::io(&path, e))?;
        file.sync_data().map_err(|e| CpdgError::io(&path, e))?;
        cpdg_obs::info!(
            "core.wal",
            "rotated WAL segment";
            sealed = self.seg_path.display().to_string(),
            next = path.display().to_string(),
        );
        self.seg_path = path;
        self.seg_start = self.next_index;
        self.seg_len = SEGMENT_HEADER_LEN;
        self.file = file;
        self.appends_since_sync = 0;
        cpdg_obs::counter!("wal.rotations").inc();
        Ok(())
    }

    /// Forces an fsync of the open tail regardless of policy (drain).
    pub fn sync(&mut self) -> CpdgResult<()> {
        self.file
            .sync_data()
            .map_err(|e| CpdgError::io(&self.seg_path, e))?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Streams every record with index ≥ `from` through `f`, in index
    /// order. Each visited record consults the `wal.replay` fault point:
    /// transient faults are retried under the configured policy,
    /// permanent ones abort with [`CpdgError::Fault`]. Returns the
    /// number of records delivered.
    pub fn replay(
        &self,
        from: u64,
        mut f: impl FnMut(u64, &[u8]) -> CpdgResult<()>,
    ) -> CpdgResult<u64> {
        let mut delivered = 0u64;
        let tail = SegmentInfo {
            path: self.seg_path.clone(),
            start: self.seg_start,
            end: self.next_index,
            bytes: self.seg_len,
        };
        for seg in self.sealed.iter().chain(std::iter::once(&tail)) {
            if seg.end <= from {
                continue;
            }
            let mut bytes = Vec::new();
            let mut file = File::open(&seg.path).map_err(|e| CpdgError::io(&seg.path, e))?;
            file.read_to_end(&mut bytes)
                .map_err(|e| CpdgError::io(&seg.path, e))?;
            // The open tail may hold rolled-back bytes past seg.bytes on
            // disk only in crash windows; scanning re-validates frames
            // rather than trusting in-memory offsets.
            let scan = scan_segment(&bytes, Some(seg.start)).ok_or_else(|| {
                CpdgError::corrupt(&seg.path, "WAL segment header changed under replay")
            })?;
            for (index, payload) in &scan.records {
                if *index < from {
                    continue;
                }
                self.config
                    .retry
                    .run(FaultPoint::WalReplay.name(), || {
                        self.hook
                            .check(FaultPoint::WalReplay)
                            .map_err(Fault::into_io)
                    })
                    .map_err(|e| CpdgError::Fault {
                        point: FaultPoint::WalReplay.name().to_string(),
                        reason: e.to_string(),
                    })?;
                f(*index, payload)?;
                delivered += 1;
            }
        }
        if delivered > 0 {
            cpdg_obs::counter!("wal.replayed").add(delivered);
        }
        Ok(delivered)
    }

    /// Removes sealed segments whose every record index is `< through`
    /// (i.e. covered by a checkpoint that applied records up to, not
    /// including, `through`). The open tail is never removed. Returns
    /// the bytes freed.
    pub fn truncate_through(&mut self, through: u64) -> CpdgResult<u64> {
        let mut freed = 0u64;
        let mut kept = Vec::with_capacity(self.sealed.len());
        for seg in self.sealed.drain(..) {
            if seg.end <= through {
                std::fs::remove_file(&seg.path).map_err(|e| CpdgError::io(&seg.path, e))?;
                crate::scrub::remove_replicas(&crate::FS_STORAGE, &seg.path);
                freed += seg.bytes;
            } else {
                kept.push(seg);
            }
        }
        self.sealed = kept;
        if freed > 0 {
            cpdg_obs::info!(
                "core.wal",
                "truncated checkpoint-covered WAL segments";
                through = through,
                freed_bytes = freed,
            );
        }
        Ok(freed)
    }
}

/// Encodes one edge event into the fixed 18-byte WAL payload:
/// `[src: u32 LE][dst: u32 LE][t: f64 bits LE][field: u16 LE]`.
pub fn encode_event(
    src: NodeId,
    dst: NodeId,
    t: Timestamp,
    field: FieldId,
) -> [u8; EVENT_PAYLOAD_LEN] {
    let mut buf = [0u8; EVENT_PAYLOAD_LEN];
    buf[0..4].copy_from_slice(&src.to_le_bytes());
    buf[4..8].copy_from_slice(&dst.to_le_bytes());
    buf[8..16].copy_from_slice(&t.to_bits().to_le_bytes());
    buf[16..18].copy_from_slice(&field.to_le_bytes());
    buf
}

/// Decodes a payload written by [`encode_event`].
pub fn decode_event(payload: &[u8]) -> Result<(NodeId, NodeId, Timestamp, FieldId), String> {
    if payload.len() != EVENT_PAYLOAD_LEN {
        return Err(format!(
            "bad WAL event payload: {} bytes (expected {EVENT_PAYLOAD_LEN})",
            payload.len()
        ));
    }
    let src = NodeId::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let dst = NodeId::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
    let t = Timestamp::from_bits(u64::from_le_bytes(
        payload[8..16].try_into().expect("8 bytes"),
    ));
    let field = FieldId::from_le_bytes(payload[16..18].try_into().expect("2 bytes"));
    Ok((src, dst, t, field))
}

/// Encodes one edge event with its global sequence number into the fixed
/// 26-byte sharded-WAL payload: `[seq: u64 LE]` followed by the
/// [`encode_event`] layout. The sequence number is assigned by the
/// coordinator under the engine lock, so sorting all shards' records by
/// `seq` reconstructs the exact global ingestion order.
pub fn encode_event_seq(
    seq: u64,
    src: NodeId,
    dst: NodeId,
    t: Timestamp,
    field: FieldId,
) -> [u8; SEQ_EVENT_PAYLOAD_LEN] {
    let mut buf = [0u8; SEQ_EVENT_PAYLOAD_LEN];
    buf[0..8].copy_from_slice(&seq.to_le_bytes());
    buf[8..].copy_from_slice(&encode_event(src, dst, t, field));
    buf
}

/// Decodes a payload written by [`encode_event_seq`].
pub fn decode_event_seq(
    payload: &[u8],
) -> Result<(u64, NodeId, NodeId, Timestamp, FieldId), String> {
    if payload.len() != SEQ_EVENT_PAYLOAD_LEN {
        return Err(format!(
            "bad sharded WAL event payload: {} bytes (expected {SEQ_EVENT_PAYLOAD_LEN})",
            payload.len()
        ));
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let (src, dst, t, field) = decode_event(&payload[8..])?;
    Ok((seq, src, dst, t, field))
}

/// A drain checkpoint: the full serving state (dynamic graph + encoder
/// memory, *including* pending messages so no flush is needed) plus the
/// WAL index up to which events are already applied. Saved CRC-sealed
/// through the atomic-publish protocol; records `< applied` become
/// redundant and their sealed segments can be truncated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalCheckpoint {
    /// Records with index `< applied` are captured in this checkpoint.
    pub applied: u64,
    /// The ingested dynamic graph at `applied`.
    pub graph: DynamicGraph,
    /// Encoder state at `applied` (memory, cell state, pending batch).
    pub encoder: EncoderState,
    /// Shard count of the engine that wrote this checkpoint. `0` (the
    /// serde default, and what every pre-sharding checkpoint decodes to)
    /// means the legacy single-WAL layout; sharded engines record their
    /// `N` here and refuse to recover under a different `--shards`.
    #[serde(default)]
    pub shards: u64,
    /// Per-shard applied record counts at checkpoint time (one entry per
    /// shard when `shards > 0`; empty for legacy checkpoints). Shard `k`'s
    /// first `shard_applied[k]` WAL records are covered by the snapshot.
    #[serde(default)]
    pub shard_applied: Vec<u64>,
}

impl WalCheckpoint {
    /// Serialises, CRC-seals, and atomically publishes the checkpoint.
    pub fn save(&self, storage: &dyn Storage, path: &Path) -> CpdgResult<()> {
        let payload = serde_json::to_vec(self).map_err(|e| CpdgError::Serialize(e.to_string()))?;
        let sealed = crate::integrity::seal(&payload);
        storage
            .write_atomic(path, &sealed)
            .map_err(|e| CpdgError::io(path, e))?;
        cpdg_obs::info!(
            "core.wal",
            "WAL checkpoint saved";
            path = path.display().to_string(),
            applied = self.applied,
            bytes = sealed.len() as u64,
        );
        Ok(())
    }

    /// Like [`WalCheckpoint::save`], but publishes `replicas` sealed
    /// copies (`<path>`, `<path>.r1`, …) so a single rotted copy can be
    /// healed by [`WalCheckpoint::load_replicated`] or the scrubber.
    pub fn save_replicated(
        &self,
        storage: &dyn Storage,
        path: &Path,
        replicas: usize,
    ) -> CpdgResult<()> {
        let payload = serde_json::to_vec(self).map_err(|e| CpdgError::Serialize(e.to_string()))?;
        let sealed = crate::integrity::seal(&payload);
        crate::scrub::write_replicated(storage, path, &sealed, replicas)?;
        cpdg_obs::info!(
            "core.wal",
            "WAL checkpoint saved";
            path = path.display().to_string(),
            applied = self.applied,
            bytes = sealed.len() as u64,
            replicas = replicas.max(1) as u64,
        );
        Ok(())
    }

    /// Loads a checkpoint saved by [`WalCheckpoint::save`]. `Ok(None)`
    /// when no checkpoint file exists (a cold start, not an error).
    pub fn load(storage: &dyn Storage, path: &Path) -> CpdgResult<Option<WalCheckpoint>> {
        let bytes = match storage.read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CpdgError::io(path, e)),
        };
        let payload = crate::integrity::unseal(&bytes, path)?;
        let ckpt: WalCheckpoint = serde_json::from_slice(payload)
            .map_err(|e| CpdgError::corrupt(path, format!("bad WAL checkpoint: {e}")))?;
        Ok(Some(ckpt))
    }

    /// Like [`WalCheckpoint::load`], but reads through the replica set:
    /// a corrupt copy falls through to the next one and every bad copy is
    /// rewritten from the first good one. `Ok(None)` when no copy exists
    /// at all; a typed corruption error (naming the checkpoint path) when
    /// copies exist but none verifies.
    pub fn load_replicated(
        storage: &dyn Storage,
        path: &Path,
        replicas: usize,
        hook: &FaultHook,
    ) -> CpdgResult<Option<WalCheckpoint>> {
        let read = match crate::scrub::read_sealed_replicated(storage, path, replicas, hook) {
            Ok(read) => read,
            Err(CpdgError::Io { source, .. }) if source.kind() == std::io::ErrorKind::NotFound => {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        let ckpt: WalCheckpoint = serde_json::from_slice(&read.payload)
            .map_err(|e| CpdgError::corrupt(path, format!("bad WAL checkpoint: {e}")))?;
        Ok(Some(ckpt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultPlan, Trigger};

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpdg_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn collect(wal: &Wal, from: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        wal.replay(from, |i, p| {
            out.push((i, p.to_vec()));
            Ok(())
        })
        .unwrap();
        out
    }

    fn fast_config() -> WalConfig {
        WalConfig {
            retry: RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 0,
                max_delay_ms: 0,
            },
            ..WalConfig::default()
        }
    }

    #[test]
    fn fsync_policy_parses_and_renders() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("os".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Os);
        assert_eq!(
            "every-8".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EveryN(8)
        );
        for bad in ["", "sometimes", "every-0", "every-", "every-x", "ALWAYS"] {
            assert!(
                bad.parse::<FsyncPolicy>().is_err(),
                "{bad:?} must not parse"
            );
        }
        for p in [FsyncPolicy::Always, FsyncPolicy::Os, FsyncPolicy::EveryN(3)] {
            assert_eq!(p.render().parse::<FsyncPolicy>().unwrap(), p);
        }
    }

    #[test]
    fn append_replay_round_trips() {
        let dir = test_dir("round_trip");
        let mut wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
        for i in 0u64..5 {
            let idx = wal.append(format!("payload-{i}").as_bytes()).unwrap();
            assert_eq!(idx, i);
        }
        let got = collect(&wal, 0);
        assert_eq!(got.len(), 5);
        for (i, (idx, payload)) in got.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(payload, format!("payload-{i}").as_bytes());
        }
        // Replay from an offset skips the covered prefix.
        assert_eq!(collect(&wal, 3).len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_all_records() {
        let dir = test_dir("reopen");
        {
            let mut wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
            for i in 0u64..7 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
        }
        let wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
        assert_eq!(wal.next_index(), 7);
        assert_eq!(wal.recovery_stats().records, 7);
        assert_eq!(wal.recovery_stats().truncated_bytes, 0);
        assert_eq!(collect(&wal, 0).len(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_at_threshold() {
        let dir = test_dir("rotate");
        let config = WalConfig {
            segment_bytes: 64,
            ..fast_config()
        };
        let mut wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
        for i in 0u64..10 {
            wal.append(&[i as u8; 16]).unwrap();
        }
        assert!(wal.segment_count() > 1, "64-byte segments must rotate");
        assert_eq!(collect(&wal, 0).len(), 10);
        // Reopen sees the same multi-segment log.
        drop(wal);
        let wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
        assert_eq!(wal.next_index(), 10);
        assert_eq!(collect(&wal, 0).len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = test_dir("torn");
        {
            let mut wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
            for i in 0u64..4 {
                wal.append(&[i as u8; 8]).unwrap();
            }
        }
        // Tear the last frame: chop 3 bytes off the tail segment.
        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let mut wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
        assert_eq!(wal.recovery_stats().records, 3, "the torn record is gone");
        assert!(wal.recovery_stats().truncated_bytes > 0);
        assert_eq!(wal.next_index(), 3);
        // The log accepts fresh appends at the truncated index.
        assert_eq!(wal.append(b"recovered").unwrap(), 3);
        assert_eq!(collect(&wal, 0).len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_tail_truncates_from_flip() {
        let dir = test_dir("bitflip");
        {
            let mut wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
            for i in 0u64..4 {
                wal.append(&[i as u8; 8]).unwrap();
            }
        }
        // Flip one payload bit in the third record; frames after the flip
        // are unreachable (the scan stops at the CRC mismatch).
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let frame = 8 + 8 + 8; // header + index + payload
        let third_payload = SEGMENT_HEADER_LEN as usize + 2 * frame + 8 + 8 + 2;
        bytes[third_payload] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();

        let wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
        assert_eq!(wal.recovery_stats().records, 2);
        assert!(wal.recovery_stats().truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_sealed_segment_heals_from_replica() {
        let dir = test_dir("sealed_heal");
        let config = WalConfig {
            segment_bytes: 64,
            ..fast_config()
        };
        {
            let mut wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
            for i in 0u64..10 {
                wal.append(&[i as u8; 16]).unwrap();
            }
            assert!(wal.segment_count() > 1);
        }
        // Rotation published a replica of every sealed segment.
        let seg = segment_path(&dir, 0);
        let replica = crate::scrub::replica_path(&seg, 1);
        assert!(replica.exists(), "rotation must write the .r1 replica");
        // Bit rot in the sealed primary: recovery falls through to the
        // replica, heals the primary, and loses nothing.
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        let wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
        assert_eq!(wal.recovery_stats().records, 10, "no record lost");
        assert_eq!(collect(&wal, 0).len(), 10);
        // The primary was rewritten from the replica.
        assert!(segment_is_sound(&std::fs::read(&seg).unwrap()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unrepairable_sealed_segment_is_quarantined_with_typed_gap() {
        let dir = test_dir("sealed_gap");
        let config = WalConfig {
            segment_bytes: 64,
            ..fast_config()
        };
        {
            let mut wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
            for i in 0u64..10 {
                wal.append(&[i as u8; 16]).unwrap();
            }
            assert!(wal.segment_count() > 1);
        }
        // Rot the sealed primary AND its replica: nothing to heal from.
        let seg = segment_path(&dir, 0);
        for p in [seg.clone(), crate::scrub::replica_path(&seg, 1)] {
            let mut bytes = std::fs::read(&p).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(&p, &bytes).unwrap();
        }
        let err = Wal::open(&dir, config, FaultHook::none()).unwrap_err();
        assert!(matches!(err, CpdgError::WalGap { .. }), "{err}");
        assert_eq!(err.exit_code(), 4);
        assert!(
            err.to_string().contains(&dir.display().to_string()),
            "the refusal names the WAL: {err}"
        );
        // The bad segment was quarantined, not deleted: forensics intact.
        assert!(!seg.exists());
        assert!(dir
            .join(crate::scrub::QUARANTINE_DIR)
            .join(seg.file_name().unwrap())
            .exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_sealed_segment_is_a_typed_gap() {
        let dir = test_dir("missing_gap");
        let config = WalConfig {
            segment_bytes: 64,
            ..fast_config()
        };
        {
            let mut wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
            for i in 0u64..10 {
                wal.append(&[i as u8; 16]).unwrap();
            }
            assert!(wal.segment_count() > 2);
        }
        // Remove an interior segment and its replica outright.
        let starts: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        let victim = starts.iter().copied().filter(|&s| s > 0).min().unwrap();
        let seg = segment_path(&dir, victim);
        std::fs::remove_file(&seg).unwrap();
        let _ = std::fs::remove_file(crate::scrub::replica_path(&seg, 1));
        let err = Wal::open(&dir, config, FaultHook::none()).unwrap_err();
        match err {
            CpdgError::WalGap { expected, .. } => assert_eq!(expected, victim),
            other => panic!("expected WalGap, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_bytes_are_preserved_in_sidecar() {
        let dir = test_dir("torn_sidecar");
        {
            let mut wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
            for i in 0u64..4 {
                wal.append(&[i as u8; 8]).unwrap();
            }
        }
        // Flip a byte in the third record: frames from the flip on are
        // truncated, and the dropped bytes land in the forensic sidecar.
        let seg = segment_path(&dir, 0);
        let full = std::fs::read(&seg).unwrap();
        let frame = 8 + 8 + 8;
        let third_payload = SEGMENT_HEADER_LEN as usize + 2 * frame + 8 + 8 + 2;
        let mut bytes = full.clone();
        bytes[third_payload] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
        let dropped = wal.recovery_stats().truncated_bytes;
        assert!(dropped > 0);
        let sidecar = dir.join(format!(
            "{}.torn",
            seg.file_name().unwrap().to_string_lossy()
        ));
        let preserved = std::fs::read(&sidecar).unwrap();
        assert_eq!(preserved.len() as u64, dropped);
        assert_eq!(&preserved[..], &bytes[bytes.len() - preserved.len()..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_through_removes_replicas_too() {
        let dir = test_dir("truncate_replicas");
        let config = WalConfig {
            segment_bytes: 64,
            ..fast_config()
        };
        let mut wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
        for i in 0u64..12 {
            wal.append(&[i as u8; 16]).unwrap();
        }
        assert!(wal.segment_count() > 2);
        wal.truncate_through(wal.next_index()).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| crate::scrub::is_replica_name(n))
            .collect();
        assert!(leftovers.is_empty(), "stale replicas: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicated_checkpoint_heals_and_refuses() {
        use crate::storage::FS_STORAGE;
        let dir = test_dir("ckpt_replicated");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let hook = FaultHook::none();
        assert!(WalCheckpoint::load_replicated(&FS_STORAGE, &path, 2, &hook)
            .unwrap()
            .is_none());
        let ckpt = WalCheckpoint {
            applied: 3,
            graph: DynamicGraph::empty(2),
            encoder: EncoderState {
                memory: cpdg_dgnn::Memory::new(2, 3),
                cell_state: None,
                pending: Vec::new(),
            },
            shards: 0,
            shard_applied: Vec::new(),
        };
        ckpt.save_replicated(&FS_STORAGE, &path, 2).unwrap();
        // Rot the primary: the replica heals it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = WalCheckpoint::load_replicated(&FS_STORAGE, &path, 2, &hook)
            .unwrap()
            .unwrap();
        assert_eq!(loaded.applied, 3);
        assert!(crate::integrity::unseal_strict(&std::fs::read(&path).unwrap(), &path).is_ok());
        // Rot every copy: typed refusal naming the checkpoint.
        for p in [path.clone(), crate::scrub::replica_path(&path, 1)] {
            let mut bytes = std::fs::read(&p).unwrap();
            bytes[4] ^= 0x20;
            std::fs::write(&p, &bytes).unwrap();
        }
        let err = WalCheckpoint::load_replicated(&FS_STORAGE, &path, 2, &hook).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains(CHECKPOINT_FILE), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_append_leaves_no_record() {
        let dir = test_dir("exactly_once");
        let plan = FaultPlan::new(0).with(
            FaultPoint::WalAppend,
            FaultKind::Permanent,
            Trigger::Nth { n: 2 },
        );
        let mut wal = Wal::open(&dir, fast_config(), FaultHook::install(&plan)).unwrap();
        assert_eq!(wal.append(b"first").unwrap(), 0);
        let err = wal.append(b"rejected").unwrap_err();
        assert!(matches!(err, CpdgError::Fault { .. }), "{err}");
        // The rejected record is gone; the next append reuses its index.
        assert_eq!(wal.append(b"second").unwrap(), 1);
        let got = collect(&wal, 0);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].1, b"second");
        // Reopen agrees: nothing torn, nothing resurrected.
        drop(wal);
        let wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
        assert_eq!(wal.recovery_stats().records, 2);
        assert_eq!(wal.recovery_stats().truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_fsync_rolls_back_like_append() {
        let dir = test_dir("fsync_fail");
        let plan = FaultPlan::new(0).with(
            FaultPoint::WalFsync,
            FaultKind::Permanent,
            Trigger::Nth { n: 1 },
        );
        let mut wal = Wal::open(&dir, fast_config(), FaultHook::install(&plan)).unwrap();
        let err = wal.append(b"unsynced").unwrap_err();
        assert!(
            matches!(err, CpdgError::Fault { ref point, .. } if point == "wal.fsync"),
            "{err}"
        );
        assert_eq!(wal.next_index(), 0);
        assert_eq!(wal.append(b"synced").unwrap(), 0);
        assert_eq!(collect(&wal, 0), vec![(0, b"synced".to_vec())]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_append_faults_are_retried_invisibly() {
        let dir = test_dir("transient");
        let plan = FaultPlan::new(0)
            .with(
                FaultPoint::WalAppend,
                FaultKind::Transient,
                Trigger::Nth { n: 2 },
            )
            .with(
                FaultPoint::WalFsync,
                FaultKind::Transient,
                Trigger::Nth { n: 3 },
            );
        let hook = FaultHook::install(&plan);
        let mut wal = Wal::open(&dir, fast_config(), hook.clone()).unwrap();
        for i in 0u64..5 {
            assert_eq!(
                wal.append(&i.to_le_bytes()).unwrap(),
                i,
                "transient faults must clear"
            );
        }
        assert_eq!(hook.injected(), 2);
        assert_eq!(collect(&wal, 0).len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_replay_fault_aborts() {
        let dir = test_dir("replay_fault");
        {
            let mut wal = Wal::open(&dir, fast_config(), FaultHook::none()).unwrap();
            for i in 0u64..3 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
        }
        let plan = FaultPlan::new(0).with(
            FaultPoint::WalReplay,
            FaultKind::Permanent,
            Trigger::Nth { n: 2 },
        );
        let wal = Wal::open(&dir, fast_config(), FaultHook::install(&plan)).unwrap();
        let mut seen = 0u64;
        let err = wal
            .replay(0, |_, _| {
                seen += 1;
                Ok(())
            })
            .unwrap_err();
        assert!(
            matches!(err, CpdgError::Fault { ref point, .. } if point == "wal.replay"),
            "{err}"
        );
        assert_eq!(seen, 1, "replay must stop at the faulted record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_fsync_counts_appends() {
        let dir = test_dir("every_n");
        let config = WalConfig {
            fsync: FsyncPolicy::EveryN(3),
            ..fast_config()
        };
        let plan = FaultPlan::new(0).with(
            FaultPoint::WalFsync,
            FaultKind::Transient,
            Trigger::Nth { n: 100 }, // never fires; we only count hits
        );
        let hook = FaultHook::install(&plan);
        let mut wal = Wal::open(&dir, config, hook.clone()).unwrap();
        for i in 0u64..7 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        // Appends 3 and 6 sync; 7 appends → 2 fsync consults.
        assert_eq!(hook.hits(FaultPoint::WalFsync), 2);
        assert_eq!(hook.hits(FaultPoint::WalAppend), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_through_drops_covered_sealed_segments() {
        let dir = test_dir("truncate");
        let config = WalConfig {
            segment_bytes: 64,
            ..fast_config()
        };
        let mut wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
        for i in 0u64..12 {
            wal.append(&[i as u8; 16]).unwrap();
        }
        let before = wal.segment_count();
        assert!(before > 2);
        let freed = wal.truncate_through(wal.next_index()).unwrap();
        assert!(freed > 0);
        assert_eq!(wal.segment_count(), 1, "only the open tail survives");
        // Replay from the checkpoint index yields nothing — and reopening
        // the truncated log starts at the right index.
        assert_eq!(collect(&wal, 12).len(), 0);
        drop(wal);
        let mut wal = Wal::open(&dir, config, FaultHook::none()).unwrap();
        assert_eq!(
            wal.next_index(),
            12,
            "truncation must not lose the index position"
        );
        assert_eq!(wal.append(b"after-truncate").unwrap(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_payload_round_trips() {
        for (src, dst, t, field) in [
            (0u32, 1u32, 0.0f64, 0u16),
            (7, 11, 123.456, 3),
            (u32::MAX, 0, f64::MAX, u16::MAX),
            (42, 42, -0.0, 9),
        ] {
            let buf = encode_event(src, dst, t, field);
            let (s, d, tt, ff) = decode_event(&buf).unwrap();
            assert_eq!((s, d, ff), (src, dst, field));
            assert_eq!(
                tt.to_bits(),
                t.to_bits(),
                "timestamps must round-trip bit-exactly"
            );
        }
        assert!(decode_event(&[0u8; 17]).is_err());
        assert!(decode_event(&[]).is_err());
    }

    #[test]
    fn seq_event_payload_round_trips() {
        for (seq, src, dst, t, field) in [
            (0u64, 0u32, 1u32, 0.0f64, 0u16),
            (1, 7, 11, 123.456, 3),
            (u64::MAX, u32::MAX, 0, f64::MAX, u16::MAX),
            (9_999, 42, 42, -0.0, 9),
        ] {
            let buf = encode_event_seq(seq, src, dst, t, field);
            assert_eq!(buf.len(), SEQ_EVENT_PAYLOAD_LEN);
            let (q, s, d, tt, ff) = decode_event_seq(&buf).unwrap();
            assert_eq!((q, s, d, ff), (seq, src, dst, field));
            assert_eq!(
                tt.to_bits(),
                t.to_bits(),
                "timestamps must round-trip bit-exactly"
            );
            // The tail is exactly the legacy encoding: a sharded record is
            // a legacy record with a sequence prefix, nothing more.
            assert_eq!(&buf[8..], &encode_event(src, dst, t, field));
        }
        assert!(decode_event_seq(&[0u8; EVENT_PAYLOAD_LEN]).is_err());
        assert!(decode_event_seq(&[]).is_err());
    }

    #[test]
    fn shard_dirs_are_distinct_and_stable() {
        let root = Path::new("/tmp/walroot");
        assert_eq!(shard_dir(root, 0), root.join("wal.shard0"));
        assert_eq!(shard_dir(root, 7), root.join("wal.shard7"));
        assert_ne!(shard_dir(root, 0), shard_dir(root, 1));
    }

    #[test]
    fn legacy_checkpoint_json_decodes_with_zero_shards() {
        use crate::storage::FS_STORAGE;
        let dir = test_dir("legacy_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        // A checkpoint serialised before the shard fields existed: strip
        // them from the JSON and confirm the serde defaults kick in.
        let ckpt = WalCheckpoint {
            applied: 1,
            graph: DynamicGraph::empty(2),
            encoder: EncoderState {
                memory: cpdg_dgnn::Memory::new(2, 3),
                cell_state: None,
                pending: Vec::new(),
            },
            shards: 0,
            shard_applied: Vec::new(),
        };
        let mut value: serde_json::Value = serde_json::to_value(&ckpt).unwrap();
        let obj = value.as_object_mut().unwrap();
        obj.remove("shards");
        obj.remove("shard_applied");
        let payload = serde_json::to_vec(&value).unwrap();
        let sealed = crate::integrity::seal(&payload);
        std::fs::write(&path, &sealed).unwrap();
        let loaded = WalCheckpoint::load(&FS_STORAGE, &path).unwrap().unwrap();
        assert_eq!(loaded.shards, 0, "legacy checkpoints decode as unsharded");
        assert!(loaded.shard_applied.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_save_load_round_trips() {
        use crate::storage::FS_STORAGE;
        let dir = test_dir("ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        assert!(WalCheckpoint::load(&FS_STORAGE, &path).unwrap().is_none());

        let mut graph = DynamicGraph::empty(4);
        graph.push_event(0, 1, 1.0, 0).unwrap();
        graph.push_event(1, 2, 2.0, 1).unwrap();
        let ckpt = WalCheckpoint {
            applied: 2,
            graph,
            encoder: EncoderState {
                memory: cpdg_dgnn::Memory::new(4, 3),
                cell_state: None,
                pending: vec![(0, 1, 1.0)],
            },
            shards: 0,
            shard_applied: Vec::new(),
        };
        ckpt.save(&FS_STORAGE, &path).unwrap();
        let loaded = WalCheckpoint::load(&FS_STORAGE, &path).unwrap().unwrap();
        assert_eq!(loaded.applied, 2);
        assert_eq!(loaded.graph.num_events(), 2);
        assert_eq!(loaded.encoder.pending, vec![(0, 1, 1.0)]);

        // A flipped byte is CorruptArtifact, not a silent bad load.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = WalCheckpoint::load(&FS_STORAGE, &path).unwrap_err();
        assert!(matches!(err, CpdgError::CorruptArtifact { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
