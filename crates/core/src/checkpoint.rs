//! Rotating crash-safe training checkpoints.
//!
//! A [`CheckpointManager`] snapshots the full pre-training state — encoder
//! memory, parameters, optimiser moments, divergence-guard posture, the
//! EIE checkpoint sequence collected so far, and the epoch/step cursor —
//! every N steps into a directory:
//!
//! ```text
//! <dir>/
//!   ckpt-00000050.json     # TrainCheckpoint at global step 50
//!   ckpt-00000100.json
//!   latest                 # name of the newest fully-published checkpoint
//! ```
//!
//! Every file is published with [`Storage::write_atomic`], so a crash at
//! any instant leaves the directory with only whole files. Loading walks
//! candidates newest-first and *skips* corrupt or truncated files with a
//! warning, landing on the newest checkpoint that actually parses.

use crate::chaos::{Fault, FaultHook, FaultPoint, RetryPolicy};
use crate::error::{CpdgError, CpdgResult};
use crate::pretrain::LossBreakdown;
use crate::storage::Storage;
use cpdg_dgnn::{EncoderState, MemorySnapshot, TrainGuard};
use cpdg_tensor::optim::Adam;
use cpdg_tensor::ParamStore;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Checkpoint format version (bumped on breaking changes).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Name of the newest-checkpoint pointer file.
pub const LATEST_FILE: &str = "latest";

/// Everything needed to continue a pre-training run from mid-stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Format version.
    pub version: u32,
    /// Global steps (batches) completed.
    pub step: usize,
    /// Epoch the run was in when saved.
    pub epoch: usize,
    /// Next EIE checkpoint index to capture (1-based).
    pub next_cp: usize,
    /// All trainable parameters.
    pub params: ParamStore,
    /// Optimiser with moment state.
    pub opt: Adam,
    /// Encoder memory / cell state / pending messages.
    pub encoder: EncoderState,
    /// Divergence-guard posture (backoff scale, retry counters).
    pub guard: TrainGuard,
    /// EIE memory checkpoints captured so far.
    pub eie_checkpoints: Vec<MemorySnapshot>,
    /// Mean losses of fully completed epochs.
    pub epoch_losses: Vec<LossBreakdown>,
    /// Loss sums of the in-flight epoch.
    pub partial_sums: LossBreakdown,
    /// Healthy batches accumulated into `partial_sums`.
    pub partial_batches: usize,
}

/// Where and how often to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint directory (created if missing).
    pub dir: PathBuf,
    /// Save every N global steps.
    pub every_n_steps: usize,
    /// Rotating window: how many checkpoint files to retain.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` every 50 steps, keeping the 3 newest files.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_n_steps: 50,
            keep: 3,
        }
    }
}

/// Writes rotating checkpoints through a [`Storage`]. Every publish and
/// candidate read runs under a [`RetryPolicy`] and consults the
/// `ckpt.save` / `ckpt.load` fault points — inert by default, active
/// when constructed [`with_chaos`](CheckpointManager::with_chaos).
pub struct CheckpointManager<'s> {
    cfg: CheckpointConfig,
    storage: &'s dyn Storage,
    hook: FaultHook,
    retry: RetryPolicy,
}

fn checkpoint_file_name(step: usize) -> String {
    format!("ckpt-{step:08}.json")
}

fn is_checkpoint_file(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        .unwrap_or(false)
}

impl<'s> CheckpointManager<'s> {
    /// Creates the checkpoint directory and a manager writing into it
    /// (no fault injection, default retry policy).
    pub fn new(cfg: CheckpointConfig, storage: &'s dyn Storage) -> CpdgResult<Self> {
        Self::with_chaos(cfg, storage, FaultHook::none(), RetryPolicy::default())
    }

    /// Like [`CheckpointManager::new`], but with an explicit fault hook
    /// and retry policy for chaos runs.
    pub fn with_chaos(
        cfg: CheckpointConfig,
        storage: &'s dyn Storage,
        hook: FaultHook,
        retry: RetryPolicy,
    ) -> CpdgResult<Self> {
        storage
            .create_dir_all(&cfg.dir)
            .map_err(|e| CpdgError::io(&cfg.dir, e))?;
        Ok(Self {
            cfg,
            storage,
            hook,
            retry,
        })
    }

    /// The directory this manager writes into.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Whether a checkpoint is due after completing `step` global steps.
    pub fn should_save(&self, step: usize) -> bool {
        let every = self.cfg.every_n_steps.max(1);
        step > 0 && step % every == 0
    }

    /// Atomically publishes `ckpt`, updates the `latest` pointer, and
    /// prunes files beyond the rotation window. Returns the file written.
    pub fn save(&self, ckpt: &TrainCheckpoint) -> CpdgResult<PathBuf> {
        let _timer = cpdg_obs::span("checkpoint.save_us");
        let name = checkpoint_file_name(ckpt.step);
        let path = self.cfg.dir.join(&name);
        let json = serde_json::to_vec(ckpt).map_err(|e| CpdgError::Serialize(e.to_string()))?;
        let bytes = crate::integrity::seal(&json);
        let latest = self.cfg.dir.join(LATEST_FILE);
        // The whole publish (data file + pointer) is one retryable unit:
        // re-running it after a transient fault is idempotent, and the
        // `ckpt.save` fault point is consulted once per attempt.
        self.retry
            .run(FaultPoint::CkptSave.name(), || {
                self.hook
                    .check(FaultPoint::CkptSave)
                    .map_err(Fault::into_io)?;
                self.storage.write_atomic(&path, &bytes)?;
                self.storage.write_atomic(&latest, name.as_bytes())
            })
            .map_err(|e| CpdgError::io(&path, e))?;
        self.prune()?;
        cpdg_obs::counter!("checkpoint.saves").inc();
        cpdg_obs::debug!(
            "core.checkpoint",
            "checkpoint published";
            step = ckpt.step,
            bytes = bytes.len(),
        );
        Ok(path)
    }

    fn prune(&self) -> CpdgResult<()> {
        let mut files: Vec<PathBuf> = self
            .storage
            .list(&self.cfg.dir)
            .map_err(|e| CpdgError::io(&self.cfg.dir, e))?
            .into_iter()
            .filter(|p| is_checkpoint_file(p))
            .collect();
        // `list` sorts by name and the zero-padded step makes name order
        // equal step order; drop the oldest beyond the window.
        let keep = self.cfg.keep.max(1);
        while files.len() > keep {
            let victim = files.remove(0);
            self.storage
                .remove_file(&victim)
                .map_err(|e| CpdgError::io(&victim, e))?;
        }
        Ok(())
    }

    /// Loads the newest checkpoint in `dir` that parses and version-checks,
    /// skipping corrupt/truncated candidates with a structured warning on
    /// the `core.checkpoint` target (and a `checkpoint.load_skips` counter
    /// bump). Returns `Ok(None)` when the directory has no usable
    /// checkpoint.
    pub fn load_latest(
        storage: &dyn Storage,
        dir: &Path,
    ) -> CpdgResult<Option<(TrainCheckpoint, PathBuf)>> {
        Self::load_latest_with(storage, dir, &FaultHook::none(), &RetryPolicy::default())
    }

    /// Like [`CheckpointManager::load_latest`], but candidate reads run
    /// under `retry` and consult the `ckpt.load` fault point. A candidate
    /// whose read faults permanently is skipped like a corrupt file, so
    /// resume falls back to the next-newest checkpoint.
    pub fn load_latest_with(
        storage: &dyn Storage,
        dir: &Path,
        hook: &FaultHook,
        retry: &RetryPolicy,
    ) -> CpdgResult<Option<(TrainCheckpoint, PathBuf)>> {
        let mut candidates: Vec<PathBuf> = Vec::new();
        // The pointer names the newest fully-published file; try it first.
        if let Ok(bytes) = storage.read(&dir.join(LATEST_FILE)) {
            if let Ok(name) = String::from_utf8(bytes) {
                let p = dir.join(name.trim());
                if is_checkpoint_file(&p) {
                    candidates.push(p);
                }
            }
        }
        let mut all: Vec<PathBuf> = match storage.list(dir) {
            Ok(files) => files
                .into_iter()
                .filter(|p| is_checkpoint_file(p))
                .collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(CpdgError::io(dir, e)),
        };
        all.reverse(); // newest first
        for p in all {
            if !candidates.contains(&p) {
                candidates.push(p);
            }
        }

        for path in candidates {
            match Self::load_one(storage, &path, hook, retry) {
                Ok(ckpt) => return Ok(Some((ckpt, path))),
                Err(e) => {
                    cpdg_obs::counter!("checkpoint.load_skips").inc();
                    cpdg_obs::warn!(
                        "core.checkpoint",
                        "skipping unusable checkpoint";
                        path = path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        Ok(None)
    }

    fn load_one(
        storage: &dyn Storage,
        path: &Path,
        hook: &FaultHook,
        retry: &RetryPolicy,
    ) -> CpdgResult<TrainCheckpoint> {
        let bytes = retry
            .run(FaultPoint::CkptLoad.name(), || {
                hook.check(FaultPoint::CkptLoad).map_err(Fault::into_io)?;
                storage.read(path)
            })
            .map_err(|e| CpdgError::io(path, e))?;
        let payload = crate::integrity::unseal(&bytes, path)?;
        let ckpt: TrainCheckpoint =
            serde_json::from_slice(payload).map_err(|e| CpdgError::corrupt(path, e.to_string()))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CpdgError::VersionMismatch {
                found: ckpt.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FS_STORAGE;
    use cpdg_dgnn::{GuardConfig, Memory};
    use cpdg_tensor::Matrix;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpdg_ckpt_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn dummy_checkpoint(step: usize) -> TrainCheckpoint {
        let mut params = ParamStore::new();
        params.register("w", Matrix::full(1, 2, step as f32));
        TrainCheckpoint {
            version: CHECKPOINT_VERSION,
            step,
            epoch: 0,
            next_cp: 1,
            params,
            opt: Adam::new(1e-2),
            encoder: EncoderState {
                memory: Memory::new(3, 2),
                cell_state: None,
                pending: vec![(0, 1, 1.0)],
            },
            guard: TrainGuard::new(GuardConfig::default()),
            eie_checkpoints: vec![],
            epoch_losses: vec![],
            partial_sums: LossBreakdown::default(),
            partial_batches: 0,
        }
    }

    #[test]
    fn save_load_round_trip_and_latest_pointer() {
        let dir = test_dir("round");
        let mgr = CheckpointManager::new(CheckpointConfig::new(&dir), &FS_STORAGE).unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        mgr.save(&dummy_checkpoint(20)).unwrap();
        let (ckpt, path) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 20);
        assert!(path.ends_with("ckpt-00000020.json"));
        assert_eq!(ckpt.encoder.pending, vec![(0, 1, 1.0)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_keeps_only_newest_files() {
        let dir = test_dir("rotate");
        let cfg = CheckpointConfig {
            keep: 2,
            ..CheckpointConfig::new(&dir)
        };
        let mgr = CheckpointManager::new(cfg, &FS_STORAGE).unwrap();
        for step in [5, 10, 15, 20] {
            mgr.save(&dummy_checkpoint(step)).unwrap();
        }
        let files: Vec<PathBuf> = FS_STORAGE
            .list(&dir)
            .unwrap()
            .into_iter()
            .filter(|p| is_checkpoint_file(p))
            .collect();
        assert_eq!(files.len(), 2);
        assert!(files[0].ends_with("ckpt-00000015.json"));
        assert!(files[1].ends_with("ckpt-00000020.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_is_skipped() {
        let dir = test_dir("corrupt");
        let mgr = CheckpointManager::new(CheckpointConfig::new(&dir), &FS_STORAGE).unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        mgr.save(&dummy_checkpoint(20)).unwrap();
        // Truncate the newest file (simulating torn residue from a crashed
        // legacy writer) — load must fall back to step 10.
        let newest = dir.join(checkpoint_file_name(20));
        let bytes = FS_STORAGE.read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let (ckpt, _) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skipped_checkpoint_emits_structured_warning() {
        let dir = test_dir("warnlog");
        let mgr = CheckpointManager::new(CheckpointConfig::new(&dir), &FS_STORAGE).unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        mgr.save(&dummy_checkpoint(20)).unwrap();
        let newest = dir.join(checkpoint_file_name(20));
        std::fs::write(&newest, b"{ definitely not json").unwrap();

        let cap = cpdg_obs::capture();
        let (ckpt, _) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 10);
        // The skip must be observable: a warn record naming the file, not
        // an invisible stderr line.
        let warns: Vec<_> = cap
            .records_for("core.checkpoint")
            .into_iter()
            .filter(|r| {
                r.level == cpdg_obs::Level::Warn
                    && matches!(r.field("path"), Some(cpdg_obs::Value::Str(p))
                        if p.ends_with("ckpt-00000020.json"))
            })
            .collect();
        assert_eq!(warns.len(), 1, "{warns:?}");
        assert!(warns[0].message.contains("skipping unusable checkpoint"));
        assert!(warns[0].field("error").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_rotted_checkpoint_fails_crc_and_is_skipped() {
        let dir = test_dir("bitrot");
        let mgr = CheckpointManager::new(CheckpointConfig::new(&dir), &FS_STORAGE).unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        mgr.save(&dummy_checkpoint(20)).unwrap();
        // Flip one payload bit in the newest file: still valid JSON shape is
        // possible, but the CRC footer catches it regardless.
        let newest = dir.join(checkpoint_file_name(20));
        let mut bytes = FS_STORAGE.read(&newest).unwrap();
        bytes[20] ^= 0x04;
        std::fs::write(&newest, &bytes).unwrap();
        let direct = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(
            direct.0.step, 10,
            "crc failure must fall back to older checkpoint"
        );
        // Legacy un-footered checkpoints still load.
        let legacy = dir.join(checkpoint_file_name(40));
        let json = serde_json::to_vec(&dummy_checkpoint(40)).unwrap();
        std::fs::write(&legacy, &json).unwrap();
        std::fs::write(dir.join(LATEST_FILE), b"ckpt-00000040.json").unwrap();
        let (ckpt, _) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 40);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_latest_pointer_to_pruned_file_recovers() {
        let dir = test_dir("stale_ptr");
        let mgr = CheckpointManager::new(CheckpointConfig::new(&dir), &FS_STORAGE).unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        mgr.save(&dummy_checkpoint(20)).unwrap();
        // Simulate a crash window where pruning outran the pointer: `latest`
        // names a file that no longer exists.
        std::fs::write(dir.join(LATEST_FILE), b"ckpt-00000005.json").unwrap();
        let cap = cpdg_obs::capture();
        let (ckpt, path) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 20, "must recover to the newest parseable file");
        assert!(path.ends_with("ckpt-00000020.json"));
        // The dangling pointer itself is reported as a skipped candidate.
        let warned_missing = cap.records_for("core.checkpoint").iter().any(|r| {
            matches!(r.field("path"), Some(cpdg_obs::Value::Str(p))
                if p.ends_with("ckpt-00000005.json"))
        });
        assert!(warned_missing, "dangling latest pointer should warn");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_skipped_like_corruption() {
        let dir = test_dir("version");
        let mgr = CheckpointManager::new(CheckpointConfig::new(&dir), &FS_STORAGE).unwrap();
        let mut bad = dummy_checkpoint(30);
        bad.version = 999;
        mgr.save(&bad).unwrap();
        mgr.save(&dummy_checkpoint(20)).unwrap();
        // Step 30 is newest but has an alien version: fall back to 20.
        let (ckpt, _) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_or_missing_directory_yields_none() {
        let dir = test_dir("empty");
        assert!(CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .is_none());
        FS_STORAGE.create_dir_all(&dir).unwrap();
        assert!(CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_save_fault_clears_on_retry() {
        use crate::chaos::{FaultKind, FaultPlan, Trigger};
        let dir = test_dir("chaos_save_transient");
        let plan = FaultPlan::new(0).with(
            FaultPoint::CkptSave,
            FaultKind::Transient,
            Trigger::Nth { n: 1 },
        );
        let hook = FaultHook::install(&plan);
        let mgr = CheckpointManager::with_chaos(
            CheckpointConfig::new(&dir),
            &FS_STORAGE,
            hook.clone(),
            RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 0,
                max_delay_ms: 0,
            },
        )
        .unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        assert_eq!(hook.injected_at(FaultPoint::CkptSave), 1);
        let (ckpt, _) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_save_fault_fails_but_older_checkpoints_survive() {
        use crate::chaos::{FaultKind, FaultPlan, Trigger};
        let dir = test_dir("chaos_save_permanent");
        // First publish is clean; the second hits a permanent fault.
        let plan = FaultPlan::new(0).with(
            FaultPoint::CkptSave,
            FaultKind::Permanent,
            Trigger::Nth { n: 2 },
        );
        let mgr = CheckpointManager::with_chaos(
            CheckpointConfig::new(&dir),
            &FS_STORAGE,
            FaultHook::install(&plan),
            RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 0,
                max_delay_ms: 0,
            },
        )
        .unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        assert!(matches!(
            mgr.save(&dummy_checkpoint(20)),
            Err(CpdgError::Io { .. })
        ));
        // The crash left only whole files behind; step 10 still loads.
        let (ckpt, _) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulted_load_candidate_falls_back_to_older_checkpoint() {
        use crate::chaos::{FaultKind, FaultPlan, Trigger};
        let dir = test_dir("chaos_load_fallback");
        let mgr = CheckpointManager::new(CheckpointConfig::new(&dir), &FS_STORAGE).unwrap();
        mgr.save(&dummy_checkpoint(10)).unwrap();
        mgr.save(&dummy_checkpoint(20)).unwrap();
        // The newest candidate's read faults permanently on every attempt.
        let plan = FaultPlan::new(0).with(
            FaultPoint::CkptLoad,
            FaultKind::Permanent,
            Trigger::Nth { n: 1 },
        );
        let (ckpt, path) = CheckpointManager::load_latest_with(
            &FS_STORAGE,
            &dir,
            &FaultHook::install(&plan),
            &RetryPolicy::none(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(ckpt.step, 10, "faulted newest read must fall back");
        assert!(path.ends_with("ckpt-00000010.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn should_save_respects_interval() {
        let dir = test_dir("interval");
        let cfg = CheckpointConfig {
            every_n_steps: 25,
            ..CheckpointConfig::new(&dir)
        };
        let mgr = CheckpointManager::new(cfg, &FS_STORAGE).unwrap();
        assert!(!mgr.should_save(0));
        assert!(!mgr.should_save(24));
        assert!(mgr.should_save(25));
        assert!(mgr.should_save(50));
        std::fs::remove_dir_all(&dir).ok();
    }
}
