//! On-disk model envelope: everything needed to reload a pre-trained CPDG
//! model for fine-tuning — encoder wiring, all parameters, and the EIE
//! memory checkpoints. Used by the `cpdg` CLI and directly loadable by
//! library consumers (see `examples/save_finetune.rs`).
//!
//! Saves are crash-safe: bytes are published through
//! [`Storage::write_atomic`] (temp sibling + fsync + rename), so a crash
//! mid-save leaves either the previous model file or the new one — never a
//! truncated hybrid. Loads return typed [`CpdgError`]s distinguishing
//! missing files, corrupt contents, and incompatible format versions.

use crate::error::{CpdgError, CpdgResult};
use crate::storage::{Storage, FS_STORAGE};
use cpdg_dgnn::{DgnnConfig, MemorySnapshot};
use cpdg_tensor::ParamStore;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Serialisable model bundle.
#[derive(Debug, Serialize, Deserialize)]
pub struct ModelFile {
    /// Format version (bumped on breaking changes).
    pub version: u32,
    /// Encoder hyper-parameters (wiring + dims + time scale).
    pub encoder_config: DgnnConfig,
    /// Node universe size the encoder was built for.
    pub num_nodes: usize,
    /// All trainable parameters by name.
    pub params: ParamStore,
    /// EIE memory checkpoints captured during pre-training.
    pub checkpoints: Vec<MemorySnapshot>,
}

/// Current format version.
pub const VERSION: u32 = 1;

impl ModelFile {
    /// Bundles a trained model.
    pub fn new(
        encoder_config: DgnnConfig,
        num_nodes: usize,
        params: ParamStore,
        checkpoints: Vec<MemorySnapshot>,
    ) -> Self {
        Self {
            version: VERSION,
            encoder_config,
            num_nodes,
            params,
            checkpoints,
        }
    }

    /// Writes the bundle as JSON via a crash-safe atomic publish.
    pub fn save(&self, path: &Path) -> CpdgResult<()> {
        self.save_with(&FS_STORAGE, path)
    }

    /// [`ModelFile::save`] through an explicit [`Storage`] (fault-injection
    /// point for crash-safety tests).
    pub fn save_with(&self, storage: &dyn Storage, path: &Path) -> CpdgResult<()> {
        let json = serde_json::to_vec(self).map_err(|e| CpdgError::Serialize(e.to_string()))?;
        storage
            .write_atomic(path, &crate::integrity::seal(&json))
            .map_err(|e| CpdgError::io(path, e))
    }

    /// Saves the bundle plus `replicas − 1` sealed sibling copies
    /// (`<path>.r1`, …) so a later bit flip in any single copy heals
    /// instead of refusing. Each copy is its own atomic publish.
    pub fn save_replicated(
        &self,
        storage: &dyn Storage,
        path: &Path,
        replicas: usize,
    ) -> CpdgResult<()> {
        let json = serde_json::to_vec(self).map_err(|e| CpdgError::Serialize(e.to_string()))?;
        crate::scrub::write_replicated(storage, path, &crate::integrity::seal(&json), replicas)
    }

    /// Reads a bundle back, checking the version.
    pub fn load(path: &Path) -> CpdgResult<Self> {
        Self::load_with(&FS_STORAGE, path)
    }

    /// [`ModelFile::load`] through an explicit [`Storage`]. Verifies the
    /// CRC32 integrity footer when present (legacy un-footered files load
    /// with a one-time warning).
    pub fn load_with(storage: &dyn Storage, path: &Path) -> CpdgResult<Self> {
        let bytes = storage.read(path).map_err(|e| CpdgError::io(path, e))?;
        let payload = crate::integrity::unseal(&bytes, path)?;
        Self::parse(payload, path)
    }

    /// Loads a scrub-managed bundle through its replica set: a corrupt
    /// primary heals from `<path>.r1`, `<path>.r2`, … and only when every
    /// copy is bad does a typed [`CpdgError::CorruptArtifact`] surface.
    /// Replicated bundles are always written sealed, so no legacy
    /// passthrough applies here.
    pub fn load_replicated(
        storage: &dyn Storage,
        path: &Path,
        replicas: usize,
        hook: &crate::chaos::FaultHook,
    ) -> CpdgResult<Self> {
        let read = crate::scrub::read_sealed_replicated(storage, path, replicas, hook)?;
        Self::parse(&read.payload, path)
    }

    fn parse(payload: &[u8], path: &Path) -> CpdgResult<Self> {
        let model: ModelFile =
            serde_json::from_slice(payload).map_err(|e| CpdgError::corrupt(path, e.to_string()))?;
        if model.version != VERSION {
            return Err(CpdgError::VersionMismatch {
                found: model.version,
                expected: VERSION,
            });
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::fault::TornWriteStorage;
    use cpdg_dgnn::EncoderKind;
    use cpdg_tensor::Matrix;
    use std::path::PathBuf;

    fn tiny_model() -> ModelFile {
        let mut params = ParamStore::new();
        params.register("w", Matrix::from_rows(&[&[1.5, -0.5]]));
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 100.0);
        let snap = MemorySnapshot {
            states: Matrix::full(3, 8, 0.25),
            progress: 0.5,
        };
        ModelFile::new(cfg, 3, params, vec![snap])
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpdg_model_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = test_dir("round");
        let path = dir.join("model.json");
        let model = tiny_model();
        model.save(&path).unwrap();
        let back = ModelFile::load(&path).unwrap();
        assert_eq!(back.version, VERSION);
        assert_eq!(back.num_nodes, 3);
        assert_eq!(back.checkpoints.len(), 1);
        assert_eq!(back.params.len(), 1);
        let id = back.params.lookup("w").unwrap();
        assert_eq!(back.params.value(id), &Matrix::from_rows(&[&[1.5, -0.5]]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let dir = test_dir("version");
        let path = dir.join("bad.json");
        let mut model = tiny_model();
        model.version = 999;
        let json = serde_json::to_string(&model).unwrap();
        std::fs::write(&path, json).unwrap();
        let err = ModelFile::load(&path).unwrap_err();
        assert!(matches!(
            err,
            CpdgError::VersionMismatch {
                found: 999,
                expected: VERSION
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ModelFile::load(Path::new("/nonexistent/cpdg/model.json")).unwrap_err();
        assert!(matches!(err, CpdgError::Io { .. }), "{err}");
    }

    #[test]
    fn truncated_json_is_corrupt_not_panic() {
        let dir = test_dir("truncated");
        let path = dir.join("model.json");
        tiny_model().save(&path).unwrap();
        // Chop the file mid-stream, as a torn legacy write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let err = ModelFile::load(&path).unwrap_err();
        assert!(matches!(err, CpdgError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("model.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_json_is_corrupt() {
        let dir = test_dir("garbage");
        let path = dir.join("model.json");
        std::fs::write(&path, b"{\"version\": \"not a number\"}").unwrap();
        assert!(matches!(
            ModelFile::load(&path).unwrap_err(),
            CpdgError::Corrupt { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_checkpoint_bundle_round_trips() {
        let dir = test_dir("zerockpt");
        let path = dir.join("model.json");
        let mut model = tiny_model();
        model.checkpoints.clear();
        model.save(&path).unwrap();
        let back = ModelFile::load(&path).unwrap();
        assert!(back.checkpoints.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_files_carry_a_verified_crc_footer() {
        let dir = test_dir("crc");
        let path = dir.join("model.json");
        tiny_model().save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(
            bytes.windows(8).any(|w| w == b"\n#crc32:"),
            "saved model must end with an integrity footer"
        );
        // A single flipped payload bit is caught before JSON parsing.
        let mut tampered = bytes.clone();
        tampered[10] ^= 0x01;
        std::fs::write(&path, &tampered).unwrap();
        let err = ModelFile::load(&path).unwrap_err();
        assert!(matches!(err, CpdgError::CorruptArtifact { .. }), "{err}");
        assert_eq!(err.exit_code(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_unfootered_model_still_loads() {
        let dir = test_dir("legacy");
        let path = dir.join("model.json");
        // Write the pre-footer format: bare JSON, no trailer.
        let json = serde_json::to_vec(&tiny_model()).unwrap();
        std::fs::write(&path, &json).unwrap();
        let back = ModelFile::load(&path).unwrap();
        assert_eq!(back.num_nodes, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicated_model_heals_a_rotted_primary_and_refuses_total_loss() {
        let dir = test_dir("replicated");
        let path = dir.join("model.json");
        let hook = crate::chaos::FaultHook::none();
        tiny_model().save_replicated(&FS_STORAGE, &path, 2).unwrap();
        let r1 = crate::scrub::replica_path(&path, 1);
        assert!(r1.exists(), "save_replicated must publish {}", r1.display());
        // Rot the primary: the replica heals the load.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let back = ModelFile::load_replicated(&FS_STORAGE, &path, 2, &hook).unwrap();
        assert_eq!(back.num_nodes, 3);
        // Rot every copy: typed refusal naming the artifact, exit 4.
        let mut rb = std::fs::read(&r1).unwrap();
        rb[12] ^= 0x40;
        std::fs::write(&path, &rb[..rb.len() / 2]).unwrap();
        std::fs::write(&r1, &rb).unwrap();
        let err = ModelFile::load_replicated(&FS_STORAGE, &path, 2, &hook).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("model.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_residue_is_rejected_as_corrupt() {
        // Simulate the legacy non-atomic writer dying mid-write directly on
        // the destination, then prove the loader flags it instead of
        // parsing garbage or panicking.
        let dir = test_dir("torn");
        let path = dir.join("model.json");
        let storage = TornWriteStorage::new();
        let model = tiny_model();
        model.save_with(&storage, &path).unwrap();
        storage.tear_after(64);
        model.save_with(&storage, &path).unwrap_err();
        let err = ModelFile::load_with(&storage, &path).unwrap_err();
        assert!(matches!(err, CpdgError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
