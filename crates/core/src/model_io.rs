//! On-disk model envelope: everything needed to reload a pre-trained CPDG
//! model for fine-tuning — encoder wiring, all parameters, and the EIE
//! memory checkpoints. Used by the `cpdg` CLI and directly loadable by
//! library consumers (see `examples/save_finetune.rs`).

use cpdg_dgnn::{DgnnConfig, MemorySnapshot};
use cpdg_tensor::ParamStore;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Serialisable model bundle.
#[derive(Debug, Serialize, Deserialize)]
pub struct ModelFile {
    /// Format version (bumped on breaking changes).
    pub version: u32,
    /// Encoder hyper-parameters (wiring + dims + time scale).
    pub encoder_config: DgnnConfig,
    /// Node universe size the encoder was built for.
    pub num_nodes: usize,
    /// All trainable parameters by name.
    pub params: ParamStore,
    /// EIE memory checkpoints captured during pre-training.
    pub checkpoints: Vec<MemorySnapshot>,
}

/// Current format version.
pub const VERSION: u32 = 1;

impl ModelFile {
    /// Bundles a trained model.
    pub fn new(
        encoder_config: DgnnConfig,
        num_nodes: usize,
        params: ParamStore,
        checkpoints: Vec<MemorySnapshot>,
    ) -> Self {
        Self { version: VERSION, encoder_config, num_nodes, params, checkpoints }
    }

    /// Writes the bundle as JSON.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| format!("serialise: {e}"))?;
        fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Reads a bundle back, checking the version.
    pub fn load(path: &Path) -> Result<Self, String> {
        let json = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let model: ModelFile =
            serde_json::from_str(&json).map_err(|e| format!("parse {}: {e}", path.display()))?;
        if model.version != VERSION {
            return Err(format!(
                "model file version {} unsupported (expected {VERSION})",
                model.version
            ));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_dgnn::EncoderKind;
    use cpdg_tensor::Matrix;

    #[test]
    fn save_load_round_trip() {
        let mut params = ParamStore::new();
        params.register("w", Matrix::from_rows(&[&[1.5, -0.5]]));
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 100.0);
        let snap = MemorySnapshot { states: Matrix::full(3, 8, 0.25), progress: 0.5 };
        let model = ModelFile::new(cfg, 3, params, vec![snap]);

        let dir = std::env::temp_dir().join("cpdg_model_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let back = ModelFile::load(&path).unwrap();
        assert_eq!(back.version, VERSION);
        assert_eq!(back.num_nodes, 3);
        assert_eq!(back.checkpoints.len(), 1);
        assert_eq!(back.params.len(), 1);
        let id = back.params.lookup("w").unwrap();
        assert_eq!(back.params.value(id), &Matrix::from_rows(&[&[1.5, -0.5]]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let dir = std::env::temp_dir().join("cpdg_model_file_test_v");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        let mut params = ParamStore::new();
        params.register("w", Matrix::ones(1, 1));
        let mut model = ModelFile::new(
            DgnnConfig::preset(EncoderKind::Jodie, 4, 1.0),
            1,
            params,
            vec![],
        );
        model.version = 999;
        let json = serde_json::to_string(&model).unwrap();
        std::fs::write(&path, json).unwrap();
        assert!(ModelFile::load(&path).unwrap_err().contains("version"));
        std::fs::remove_file(&path).ok();
    }
}
