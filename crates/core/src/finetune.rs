//! Downstream fine-tuning (paper §IV-C, §V-C).
//!
//! Two downstream tasks are supported:
//!
//! * **Dynamic link prediction** — the pre-trained encoder (full fine-tune)
//!   plus a fresh head are trained on the chronological train portion of
//!   the downstream stream, selected on validation AUC, and evaluated on
//!   the test portion, optionally in the *inductive* regime (only events
//!   touching nodes unseen during pre-training are scored).
//! * **Dynamic node classification** — the encoder is first fine-tuned on
//!   the downstream stream (link prediction), then a classifier head is
//!   trained offline on the temporal embeddings captured at dynamic label
//!   events (the standard decoder protocol of the JODIE datasets).
//!
//! The `Eie(..)` strategy threads the paper's Evolution Information
//! Enhanced embeddings (Eq. 19) through both tasks.

use crate::eie::{EieFusion, EieModule};
use cpdg_dgnn::trainer::NegativeSampler;
use cpdg_dgnn::{metrics, DgnnEncoder, LinkPredictor, MemorySnapshot, NodeClassifier};
use cpdg_graph::split::chrono_boundaries;
use cpdg_graph::{DynamicGraph, NodeId, Timestamp};
use cpdg_tensor::loss::link_prediction_loss;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// How downstream fine-tuning consumes the pre-trained model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinetuneStrategy {
    /// Plain full fine-tuning of all pre-trained weights.
    Full,
    /// Full fine-tuning plus EIE-enhanced embeddings (Eq. 19).
    Eie(EieFusion),
}

impl FinetuneStrategy {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            FinetuneStrategy::Full => "Full",
            FinetuneStrategy::Eie(f) => f.name(),
        }
    }
}

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone)]
pub struct FinetuneConfig {
    /// Events per mini-batch.
    pub batch_size: usize,
    /// Fine-tuning epochs (best epoch selected on validation AUC).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Gradient clipping.
    pub grad_clip: f32,
    /// Seed (negative sampling, head init).
    pub seed: u64,
    /// Strategy: Full or EIE variant.
    pub strategy: FinetuneStrategy,
    /// Chronological fraction of downstream events used for training.
    pub train_frac: f64,
    /// Fraction used for validation (the rest is test).
    pub val_frac: f64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self {
            batch_size: 200,
            epochs: 2,
            lr: 2e-2,
            grad_clip: 5.0,
            seed: 0,
            strategy: FinetuneStrategy::Full,
            train_frac: 0.7,
            val_frac: 0.15,
        }
    }
}

/// Result of a downstream link-prediction run.
#[derive(Debug, Clone, Copy)]
pub struct LinkPredResult {
    /// Test ROC-AUC.
    pub auc: f64,
    /// Test Average Precision.
    pub ap: f64,
    /// Validation AUC of the selected epoch.
    pub val_auc: f64,
    /// True when an EIE strategy was requested but had to degrade to plain
    /// full fine-tuning because no pre-training checkpoints were available
    /// (set by the pipeline, so sweeps cannot mislabel conditions).
    pub eie_degraded: bool,
}

/// Bundles the per-run modules so embedding enhancement is uniform across
/// train / val / test passes.
struct FtModel {
    head: LinkPredictor,
    eie: Option<EieModule>,
}

impl FtModel {
    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        dim: usize,
        strategy: FinetuneStrategy,
        name: &str,
    ) -> Self {
        let eie = match strategy {
            FinetuneStrategy::Full => None,
            FinetuneStrategy::Eie(fusion) => Some(EieModule::new(
                store,
                rng,
                &format!("{name}.eie"),
                dim,
                fusion,
            )),
        };
        let head_dim = if eie.is_some() { 2 * dim } else { dim };
        let head = LinkPredictor::new(store, rng, &format!("{name}.head"), head_dim);
        Self { head, eie }
    }

    /// Embeds `nodes` at `times` and applies EIE enhancement when active.
    #[allow(clippy::too_many_arguments)]
    fn embed(
        &self,
        tape: &mut Tape,
        encoder: &DgnnEncoder,
        store: &ParamStore,
        ctx: &cpdg_dgnn::BatchContext,
        graph: &DynamicGraph,
        checkpoints: &[MemorySnapshot],
        nodes: &[NodeId],
        times: &[Timestamp],
    ) -> Var {
        let z = encoder.embed_many(tape, store, ctx, graph, nodes, times);
        match &self.eie {
            None => z,
            Some(eie) => {
                let ei = eie.fuse(tape, store, checkpoints, nodes);
                eie.enhance(tape, store, z, ei)
            }
        }
    }
}

/// Fine-tunes a (pre-trained) encoder on downstream link prediction and
/// returns test metrics. `checkpoints` feeds the EIE strategies (pass the
/// pre-training output; ignored under `Full`). `inductive_nodes`, when
/// given, restricts test scoring to events touching that set.
pub fn finetune_link_prediction(
    encoder: &mut DgnnEncoder,
    store: &mut ParamStore,
    graph: &DynamicGraph,
    checkpoints: &[MemorySnapshot],
    cfg: &FinetuneConfig,
    inductive_nodes: Option<&HashSet<NodeId>>,
) -> LinkPredResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = FtModel::new(store, &mut rng, encoder.dim(), cfg.strategy, "ft");
    let mut opt = Adam::new(cfg.lr);
    let sampler = NegativeSampler::from_graph(graph);

    let bounds = chrono_boundaries(
        graph,
        &[
            cfg.train_frac,
            cfg.val_frac,
            1.0 - cfg.train_frac - cfg.val_frac,
        ],
    )
    .expect("FinetuneConfig train_frac/val_frac must be finite, non-negative, and sum to <= 1");
    let (train_end, val_end) = (bounds[0], bounds[1]);

    let mut best_val = f64::NEG_INFINITY;
    let mut best_params: Option<ParamStore> = None;

    for epoch in 0..cfg.epochs.max(1) {
        let _epoch_timer = cpdg_obs::span("finetune.epoch_us");
        encoder.reset_state();
        // --- train on [0, train_end) ---------------------------------
        for chunk in graph.events()[..train_end].chunks(cfg.batch_size.max(1)) {
            let mut tape = Tape::new();
            let ctx = encoder.apply_pending(&mut tape, store, graph);
            let srcs: Vec<NodeId> = chunk.iter().map(|e| e.src).collect();
            let dsts: Vec<NodeId> = chunk.iter().map(|e| e.dst).collect();
            let times: Vec<Timestamp> = chunk.iter().map(|e| e.t).collect();
            let negs: Vec<NodeId> = chunk.iter().map(|_| sampler.sample(&mut rng)).collect();

            let z_src = model.embed(
                &mut tape,
                encoder,
                store,
                &ctx,
                graph,
                checkpoints,
                &srcs,
                &times,
            );
            let z_dst = model.embed(
                &mut tape,
                encoder,
                store,
                &ctx,
                graph,
                checkpoints,
                &dsts,
                &times,
            );
            let z_neg = model.embed(
                &mut tape,
                encoder,
                store,
                &ctx,
                graph,
                checkpoints,
                &negs,
                &times,
            );
            let pos = model.head.score(&mut tape, store, z_src, z_dst);
            let neg = model.head.score(&mut tape, store, z_src, z_neg);
            let loss = link_prediction_loss(&mut tape, pos, neg);

            let grads = tape.backward(loss);
            let mut pg = tape.param_grads(&grads);
            clip_global_norm(&mut pg, cfg.grad_clip);
            opt.step(store, &pg);
            encoder.commit(&tape, ctx, chunk);
        }
        // --- validation scores on [train_end, val_end): memory is warm
        // through the train region, so continue the stream from there.
        let val = score_range(
            encoder,
            store,
            &model,
            graph,
            checkpoints,
            &sampler,
            train_end,
            train_end,
            val_end,
            cfg,
            None,
            &mut rng,
        );
        let (val_auc, _) = metrics::link_prediction_metrics(&val.0, &val.1);
        let selected = val_auc > best_val;
        if selected {
            best_val = val_auc;
            best_params = Some(store.clone());
        }
        cpdg_obs::emit_metrics(
            "finetune_epoch",
            vec![
                ("epoch".into(), (epoch as u64).into()),
                ("strategy".into(), cfg.strategy.name().into()),
                ("val_auc".into(), val_auc.into()),
                ("selected".into(), selected.into()),
            ],
        );
    }

    if let Some(best) = best_params {
        *store = best;
    }

    // --- test on [val_end, n) with the selected parameters: reset and
    // replay the whole stream, warming memory through train+val without
    // scoring, then score the test region.
    encoder.reset_state();
    let test = score_range(
        encoder,
        store,
        &model,
        graph,
        checkpoints,
        &sampler,
        0,
        val_end,
        graph.num_events(),
        cfg,
        inductive_nodes,
        &mut rng,
    );
    // An inductive restriction can leave nothing to score; report NaN
    // rather than a misleading degenerate 0.5.
    let (auc, ap) = if test.0.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        metrics::link_prediction_metrics(&test.0, &test.1)
    };
    let result = LinkPredResult {
        auc,
        ap,
        val_auc: best_val.max(0.0),
        eie_degraded: false,
    };
    cpdg_obs::emit_metrics(
        "finetune_result",
        vec![
            ("strategy".into(), cfg.strategy.name().into()),
            ("auc".into(), result.auc.into()),
            ("ap".into(), result.ap.into()),
            ("val_auc".into(), result.val_auc.into()),
            ("scored_events".into(), test.0.len().into()),
            ("inductive".into(), inductive_nodes.is_some().into()),
        ],
    );
    result
}

/// Streams `graph.events()[stream_from..]` (the encoder's memory must
/// correspond to having consumed everything before `stream_from`), scoring
/// events whose index lies in `[score_from, score_to)`.
/// Returns `(pos_logits, neg_logits)`.
#[allow(clippy::too_many_arguments)]
fn score_range(
    encoder: &mut DgnnEncoder,
    store: &ParamStore,
    model: &FtModel,
    graph: &DynamicGraph,
    checkpoints: &[MemorySnapshot],
    sampler: &NegativeSampler,
    stream_from: usize,
    score_from: usize,
    score_to: usize,
    cfg: &FinetuneConfig,
    restrict_to: Option<&HashSet<NodeId>>,
    rng: &mut StdRng,
) -> (Vec<f32>, Vec<f32>) {
    let from = score_from;
    let to = score_to;
    let mut pos_out = Vec::new();
    let mut neg_out = Vec::new();
    for chunk in graph.events()[stream_from..].chunks(cfg.batch_size.max(1)) {
        let mut tape = Tape::new();
        let ctx = encoder.apply_pending(&mut tape, store, graph);
        let scored: Vec<_> = chunk
            .iter()
            .filter(|e| {
                e.idx >= from
                    && e.idx < to
                    && restrict_to
                        .map(|s| s.contains(&e.src) || s.contains(&e.dst))
                        .unwrap_or(true)
            })
            .collect();
        if !scored.is_empty() {
            let srcs: Vec<NodeId> = scored.iter().map(|e| e.src).collect();
            let dsts: Vec<NodeId> = scored.iter().map(|e| e.dst).collect();
            let times: Vec<Timestamp> = scored.iter().map(|e| e.t).collect();
            let negs: Vec<NodeId> = scored.iter().map(|_| sampler.sample(rng)).collect();
            let z_src = model.embed(
                &mut tape,
                encoder,
                store,
                &ctx,
                graph,
                checkpoints,
                &srcs,
                &times,
            );
            let z_dst = model.embed(
                &mut tape,
                encoder,
                store,
                &ctx,
                graph,
                checkpoints,
                &dsts,
                &times,
            );
            let z_neg = model.embed(
                &mut tape,
                encoder,
                store,
                &ctx,
                graph,
                checkpoints,
                &negs,
                &times,
            );
            let pos = model.head.score(&mut tape, store, z_src, z_dst);
            let neg = model.head.score(&mut tape, store, z_src, z_neg);
            pos_out.extend(tape.value(pos).data());
            neg_out.extend(tape.value(neg).data());
        }
        encoder.commit(&tape, ctx, chunk);
    }
    (pos_out, neg_out)
}

/// Fine-tunes for dynamic node classification and returns the test AUC.
///
/// Stage 1 fine-tunes the encoder on the downstream stream (link
/// prediction, train portion). Stage 2 captures (possibly EIE-enhanced)
/// embeddings at every dynamic label event, trains a classifier on the
/// train-portion labels, selects on validation labels, and reports test
/// AUC. Returns 0.5 when the graph carries no usable labels.
pub fn finetune_node_classification(
    encoder: &mut DgnnEncoder,
    store: &mut ParamStore,
    graph: &DynamicGraph,
    checkpoints: &[MemorySnapshot],
    cfg: &FinetuneConfig,
) -> f64 {
    if graph.labels().is_empty() {
        return 0.5;
    }
    // Stage 1: encoder fine-tuning (ignore returned metrics).
    let _ = finetune_link_prediction(encoder, store, graph, checkpoints, cfg, None);

    // Stage 2: capture embeddings at label events while streaming.
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(17));
    let eie = match cfg.strategy {
        FinetuneStrategy::Full => None,
        FinetuneStrategy::Eie(fusion) => Some(EieModule::new(
            store,
            &mut rng,
            "nc.eie",
            encoder.dim(),
            fusion,
        )),
    };
    let feat_dim = if eie.is_some() {
        2 * encoder.dim()
    } else {
        encoder.dim()
    };

    encoder.reset_state();
    let mut feats: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<bool> = Vec::new();
    let mut label_times: Vec<Timestamp> = Vec::new();
    let mut li = 0usize;
    let all_labels = graph.labels();
    for chunk in graph.events().chunks(cfg.batch_size.max(1)) {
        let t_hi = chunk.last().expect("non-empty chunk").t;
        let mut tape = Tape::new();
        let ctx = encoder.apply_pending(&mut tape, store, graph);
        // Labels due in this window.
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut times: Vec<Timestamp> = Vec::new();
        while li < all_labels.len() && all_labels[li].t <= t_hi {
            nodes.push(all_labels[li].node);
            times.push(all_labels[li].t);
            labels.push(all_labels[li].label);
            label_times.push(all_labels[li].t);
            li += 1;
        }
        if !nodes.is_empty() {
            let z = encoder.embed_many(&mut tape, store, &ctx, graph, &nodes, &times);
            let z = match &eie {
                None => z,
                Some(eie) => {
                    let ei = eie.fuse(&mut tape, store, checkpoints, &nodes);
                    eie.enhance(&mut tape, store, z, ei)
                }
            };
            let v = tape.value(z);
            for r in 0..v.rows() {
                feats.push(v.row(r).to_vec());
            }
        }
        encoder.commit(&tape, ctx, chunk);
    }
    if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
        return 0.5;
    }

    // Chronological split of the label set.
    let n = labels.len();
    let train_end = ((n as f64 * cfg.train_frac) as usize).clamp(1, n - 1);
    let val_end = ((n as f64 * (cfg.train_frac + cfg.val_frac)) as usize).clamp(train_end, n - 1);

    // Offline classifier training.
    let mut clf_store = ParamStore::new();
    let clf = NodeClassifier::new(&mut clf_store, &mut rng, "clf", feat_dim, encoder.dim());
    let mut opt = Adam::new(1e-2);
    let train_x = Matrix::from_vec(
        train_end,
        feat_dim,
        feats[..train_end].iter().flatten().copied().collect(),
    );
    let train_y = Matrix::from_vec(
        train_end,
        1,
        labels[..train_end]
            .iter()
            .map(|&l| f32::from(l as u8))
            .collect(),
    );
    let mut best_val = f64::NEG_INFINITY;
    let mut best_clf = clf_store.clone();
    for _ in 0..60 {
        let mut tape = Tape::new();
        let x = tape.constant(train_x.clone());
        let logits = clf.score(&mut tape, &clf_store, x);
        let loss = tape.bce_with_logits(logits, train_y.clone());
        let grads = tape.backward(loss);
        let pg = tape.param_grads(&grads);
        opt.step(&mut clf_store, &pg);

        let val_scores = classify(&clf, &clf_store, &feats[train_end..val_end], feat_dim);
        let val_auc = metrics::roc_auc(&val_scores, &labels[train_end..val_end]);
        if val_auc > best_val {
            best_val = val_auc;
            best_clf = clf_store.clone();
        }
    }
    let test_scores = classify(&clf, &best_clf, &feats[val_end..], feat_dim);
    metrics::roc_auc(&test_scores, &labels[val_end..])
}

fn classify(clf: &NodeClassifier, store: &ParamStore, feats: &[Vec<f32>], dim: usize) -> Vec<f32> {
    if feats.is_empty() {
        return Vec::new();
    }
    let x = Matrix::from_vec(feats.len(), dim, feats.iter().flatten().copied().collect());
    let mut tape = Tape::new();
    let xv = tape.constant(x);
    let logits = clf.score(&mut tape, store, xv);
    tape.value(logits).data().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainConfig};
    use cpdg_dgnn::{DgnnConfig, EncoderKind};
    use cpdg_graph::{generate, SyntheticConfig};

    fn quick_cfg() -> FinetuneConfig {
        FinetuneConfig {
            batch_size: 100,
            epochs: 1,
            lr: 2e-2,
            ..Default::default()
        }
    }

    #[test]
    fn link_prediction_full_pipeline_runs() {
        let ds = generate(
            &SyntheticConfig {
                n_events: 900,
                ..SyntheticConfig::amazon_like(0)
            }
            .scaled(0.12),
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 16, 10_000.0);
        let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
        let head = LinkPredictor::new(&mut store, &mut rng, "pre_head", 16);
        let mut opt = Adam::new(1e-2);
        let out = pretrain(
            &mut enc,
            &head,
            &mut store,
            &mut opt,
            &ds.graph,
            &PretrainConfig {
                epochs: 1,
                batch_size: 100,
                ..Default::default()
            },
        );

        let res = finetune_link_prediction(
            &mut enc,
            &mut store,
            &ds.graph,
            &out.checkpoints,
            &quick_cfg(),
            None,
        );
        assert!(res.auc > 0.0 && res.auc <= 1.0);
        assert!(res.ap > 0.0 && res.ap <= 1.0 + 1e-6);
    }

    #[test]
    fn eie_strategies_change_head_width_and_run() {
        let ds = generate(
            &SyntheticConfig {
                n_events: 600,
                ..SyntheticConfig::amazon_like(1)
            }
            .scaled(0.1),
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
        let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
        let head = LinkPredictor::new(&mut store, &mut rng, "pre_head", 8);
        let mut opt = Adam::new(1e-2);
        let out = pretrain(
            &mut enc,
            &head,
            &mut store,
            &mut opt,
            &ds.graph,
            &PretrainConfig {
                epochs: 1,
                batch_size: 100,
                n_checkpoints: 4,
                ..Default::default()
            },
        );

        for fusion in EieFusion::all() {
            let mut s = store.clone();
            let cfg = FinetuneConfig {
                strategy: FinetuneStrategy::Eie(fusion),
                ..quick_cfg()
            };
            let res =
                finetune_link_prediction(&mut enc, &mut s, &ds.graph, &out.checkpoints, &cfg, None);
            assert!(res.auc.is_finite(), "{fusion:?}");
        }
    }

    #[test]
    fn node_classification_runs_on_labelled_data() {
        let ds = generate(
            &SyntheticConfig {
                n_events: 1200,
                ..SyntheticConfig::wikipedia_like(2)
            }
            .scaled(0.15),
        );
        assert!(!ds.graph.labels().is_empty());
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 50_000.0);
        let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
        let auc = finetune_node_classification(&mut enc, &mut store, &ds.graph, &[], &quick_cfg());
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn node_classification_without_labels_returns_half() {
        let ds = generate(
            &SyntheticConfig {
                n_events: 400,
                ..SyntheticConfig::amazon_like(3)
            }
            .scaled(0.1),
        );
        assert!(ds.graph.labels().is_empty());
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let dcfg = DgnnConfig::preset(EncoderKind::Jodie, 8, 10_000.0);
        let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
        let auc = finetune_node_classification(&mut enc, &mut store, &ds.graph, &[], &quick_cfg());
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(FinetuneStrategy::Full.name(), "Full");
        assert_eq!(FinetuneStrategy::Eie(EieFusion::Gru).name(), "EIE-GRU");
    }
}
