//! The flexible structural-temporal subgraph sampler (paper §IV-A).

pub mod bfs;
pub mod dfs;
pub mod prob;

pub use bfs::{eta_bfs, BfsConfig};
pub use dfs::{eps_dfs, DfsConfig};
pub use prob::{temporal_probs, TemporalBias};
