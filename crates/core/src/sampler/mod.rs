//! The flexible structural-temporal subgraph sampler (paper §IV-A).

pub mod batch;
pub mod bfs;
pub mod dfs;
pub mod prob;

pub use batch::{query_rng, shard_query_rng, BatchSampler, SHARD_STREAM_SALT};
pub use bfs::{eta_bfs, eta_bfs_indexed, BfsConfig};
pub use dfs::{eps_dfs, eps_dfs_indexed, DfsConfig};
pub use prob::{temporal_probs, TemporalBias};
