//! The ε-DFS sampling strategy (paper §IV-A, Eq. 5, Fig. 4).
//!
//! A recency-guided depth-first expansion: at each node, chronologically
//! sort the temporal neighbourhood and keep the ε *most recently*
//! interacted neighbours, then recurse on each, `k` levels deep. Unlike
//! η-BFS this selection is deterministic — the "discrete formulation" of
//! the same most-recent-first preference — and it is the generator of the
//! structural positive/negative subgraphs `SP_i^t` / `SN_{i'}^t`.

use cpdg_graph::{DynamicGraph, NodeId, TemporalNeighbors, Timestamp};

/// ε-DFS hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Branching width ε (most-recent neighbours per node).
    pub epsilon: usize,
    /// Recursion depth k.
    pub k: usize,
}

impl DfsConfig {
    /// A new configuration.
    pub fn new(epsilon: usize, k: usize) -> Self {
        Self { epsilon, k }
    }
}

/// Runs ε-DFS from `root` at time `t`. Returns the subgraph node set in
/// depth-first discovery order, root first, without duplicates. Only events
/// strictly before `t` are visible.
pub fn eps_dfs(graph: &DynamicGraph, root: NodeId, t: Timestamp, cfg: &DfsConfig) -> Vec<NodeId> {
    let mut seen: Vec<NodeId> = vec![root];
    expand(graph, root, t, cfg.k, cfg, &mut seen);
    seen
}

fn expand(
    graph: &DynamicGraph,
    node: NodeId,
    t: Timestamp,
    depth_left: usize,
    cfg: &DfsConfig,
    seen: &mut Vec<NodeId>,
) {
    if depth_left == 0 {
        return;
    }
    // `recent_neighbors` returns most-recent-first — exactly the ε suffix
    // of the chronologically sorted neighbourhood NS_i^t of Eq. 5.
    for entry in graph.recent_neighbors(node, t, cfg.epsilon) {
        if !seen.contains(&entry.neighbor) {
            seen.push(entry.neighbor);
            expand(graph, entry.neighbor, entry.t, depth_left - 1, cfg, seen);
        }
    }
}

/// ε-DFS against any prebuilt [`TemporalNeighbors`] lookup — a monolithic
/// `TemporalAdjacencyIndex` or a `ShardedTemporalIndex` spanning shard
/// partitions. The selection is fully deterministic, so this is
/// *identical* (not merely equivalent) to [`eps_dfs`] for the same
/// arguments; it differs only in cost — the index yields the ε most
/// recent neighbours without the per-node `Vec` allocation
/// [`DynamicGraph::recent_neighbors`] performs. Cross-shard recursion
/// needs no special casing: each child lookup is routed to its owning
/// partition by the composite index itself.
pub fn eps_dfs_indexed<I: TemporalNeighbors + ?Sized>(
    index: &I,
    root: NodeId,
    t: Timestamp,
    cfg: &DfsConfig,
) -> Vec<NodeId> {
    let mut seen: Vec<NodeId> = vec![root];
    expand_indexed(index, root, t, cfg.k, cfg, &mut seen);
    seen
}

fn expand_indexed<I: TemporalNeighbors + ?Sized>(
    index: &I,
    node: NodeId,
    t: Timestamp,
    depth_left: usize,
    cfg: &DfsConfig,
    seen: &mut Vec<NodeId>,
) {
    if depth_left == 0 {
        return;
    }
    // The ε most recent entries are the suffix of the ascending `before`
    // view, walked newest-first — the same order
    // `TemporalAdjacencyIndex::recent_before` yields.
    let view = index.before(node, t);
    let picks = view
        .neighbors
        .iter()
        .rev()
        .zip(view.times.iter().rev())
        .take(cfg.epsilon)
        .map(|(&nb, &tt)| (nb, tt));
    for (neighbor, et) in picks {
        if !seen.contains(&neighbor) {
            seen.push(neighbor);
            // Recurse at the *event* time, matching `expand`: the child sees
            // only history strictly before the edge that led to it.
            expand_indexed(index, neighbor, et, depth_left - 1, cfg, seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_graph::graph_from_triples;
    use proptest::prelude::*;

    /// Matches the paper's Fig. 4 shape: root with neighbours u1..u5 at
    /// increasing times; u4 and u5 have their own later neighbours.
    fn fig4_like_graph() -> DynamicGraph {
        // ids: 0 = root, 1..=5 = u1..u5, 6..=9 = v5..v8
        graph_from_triples(
            10,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (0, 3, 3.0),
                (0, 4, 4.0),
                (0, 5, 5.0),
                (4, 6, 3.0),
                (4, 7, 3.5),
                (5, 8, 4.2),
                (5, 9, 4.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn selects_most_recent_neighbors_like_fig4() {
        let g = fig4_like_graph();
        let nodes = eps_dfs(&g, 0, 6.0, &DfsConfig::new(2, 2));
        // 1-hop ε-neighbours must be u5 (t=5) and u4 (t=4); their most
        // recent neighbours are the v's.
        assert!(nodes.contains(&5) && nodes.contains(&4), "{nodes:?}");
        assert!(!nodes.contains(&1) && !nodes.contains(&2) && !nodes.contains(&3));
        assert!(
            nodes.contains(&8) && nodes.contains(&9),
            "v's of u5: {nodes:?}"
        );
        assert!(
            nodes.contains(&6) && nodes.contains(&7),
            "v's of u4: {nodes:?}"
        );
    }

    #[test]
    fn deterministic() {
        let g = fig4_like_graph();
        let a = eps_dfs(&g, 0, 6.0, &DfsConfig::new(2, 2));
        let b = eps_dfs(&g, 0, 6.0, &DfsConfig::new(2, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn depth_first_order() {
        let g = fig4_like_graph();
        let nodes = eps_dfs(&g, 0, 6.0, &DfsConfig::new(2, 2));
        // First expanded neighbour is u5; its children (9, 8) must appear
        // before u4.
        assert_eq!(nodes[0], 0);
        assert_eq!(nodes[1], 5);
        let pos4 = nodes.iter().position(|&n| n == 4).unwrap();
        let pos9 = nodes.iter().position(|&n| n == 9).unwrap();
        assert!(pos9 < pos4, "DFS explores u5's subtree first: {nodes:?}");
    }

    #[test]
    fn respects_query_time() {
        let g = fig4_like_graph();
        // At t = 2.5 only u1, u2 are visible.
        let nodes = eps_dfs(&g, 0, 2.5, &DfsConfig::new(3, 1));
        assert!(nodes.contains(&1) && nodes.contains(&2));
        assert!(!nodes.contains(&3) && !nodes.contains(&5));
    }

    #[test]
    fn recursion_uses_child_event_time() {
        // Child expansion sees only events before the edge that led there:
        // node 4's own neighbours at times ≥ its discovery edge time must
        // be excluded when recursing via an *older* edge.
        let g = graph_from_triples(4, &[(0, 1, 5.0), (1, 2, 3.0), (1, 3, 7.0)]).unwrap();
        let nodes = eps_dfs(&g, 0, 6.0, &DfsConfig::new(2, 2));
        // Discover 1 via edge t=5; recursing from 1 only sees events < 5:
        // node 2 (t=3) yes, node 3 (t=7) no.
        assert!(nodes.contains(&2));
        assert!(!nodes.contains(&3), "{nodes:?}");
    }

    #[test]
    fn isolated_root_is_singleton() {
        let g = graph_from_triples(3, &[(1, 2, 1.0)]).unwrap();
        assert_eq!(eps_dfs(&g, 0, 5.0, &DfsConfig::new(2, 2)), vec![0]);
    }

    #[test]
    fn indexed_dfs_matches_graph_path_exactly() {
        let g = fig4_like_graph();
        let idx = cpdg_graph::TemporalAdjacencyIndex::build(&g);
        for root in 0..10u32 {
            for t in [0.5, 2.5, 4.2, 6.0, 100.0] {
                for (eps, k) in [(1, 1), (2, 2), (3, 3)] {
                    let cfg = DfsConfig::new(eps, k);
                    assert_eq!(
                        eps_dfs(&g, root, t, &cfg),
                        eps_dfs_indexed(&idx, root, t, &cfg),
                        "root {root} t {t} eps {eps} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_index_dfs_is_bit_identical_at_any_shard_count() {
        use cpdg_graph::{ShardRouter, ShardedTemporalIndex};
        let g = fig4_like_graph();
        let idx = cpdg_graph::TemporalAdjacencyIndex::build(&g);
        for shards in [1usize, 2, 8] {
            let sharded = ShardedTemporalIndex::build(&g, ShardRouter::new(shards));
            for root in 0..10u32 {
                for t in [0.5, 2.5, 4.2, 6.0, 100.0] {
                    for (eps, k) in [(1, 1), (2, 2), (3, 3)] {
                        let cfg = DfsConfig::new(eps, k);
                        assert_eq!(
                            eps_dfs_indexed(&idx, root, t, &cfg),
                            eps_dfs_indexed(&sharded, root, t, &cfg),
                            "shards {shards} root {root} t {t} eps {eps} k {k}"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn dfs_invariants_on_random_graphs(
            edges in proptest::collection::vec((0u32..10, 0u32..10, 0.0f64..50.0), 1..50),
            eps in 1usize..4,
            k in 1usize..4,
        ) {
            let g = graph_from_triples(10, &edges).unwrap();
            let nodes = eps_dfs(&g, 0, 25.0, &DfsConfig::new(eps, k));
            prop_assert_eq!(nodes[0], 0);
            let mut d = nodes.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), nodes.len(), "no duplicates");
            let bound: usize = (0..=k).map(|h| eps.pow(h as u32)).sum();
            prop_assert!(nodes.len() <= bound);
        }
    }
}
