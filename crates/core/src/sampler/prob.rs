//! Temporal-aware sampling probabilities `f_{t→p}(·)` (paper Eqs. 6–8).
//!
//! Given the event times `T_i^t` of a node's neighbourhood, event times are
//! min-max normalised (Eq. 6) and pushed through a temperature softmax —
//! either as-is (*chronological*, Eq. 7: recent events likely) or reflected
//! (*reverse chronological*, Eq. 8: old events likely).

use cpdg_graph::Timestamp;

/// Direction of the temporal bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalBias {
    /// Eq. 7: probability grows with recency (positive temporal samples).
    Chronological,
    /// Eq. 8: probability grows with age (negative temporal samples).
    ReverseChronological,
    /// Uniform probabilities — the vanilla sampler most DGNNs use; kept as
    /// an ablation baseline.
    Uniform,
}

/// Computes the sampling probability of each event in `times` for a query
/// at time `t` (Eqs. 6–8). `tau` is the softmax temperature.
///
/// Degenerate neighbourhoods (all events at the same instant, or a single
/// event) fall back to uniform probabilities. The result always sums to 1
/// for non-empty input.
pub fn temporal_probs(times: &[Timestamp], t: Timestamp, tau: f32, bias: TemporalBias) -> Vec<f32> {
    let n = times.len();
    if n == 0 {
        return Vec::new();
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let denom = t - min;
    if matches!(bias, TemporalBias::Uniform) || denom <= 0.0 || n == 1 {
        return vec![1.0 / n as f32; n];
    }
    let tau = tau.max(1e-6);
    let logits: Vec<f32> = times
        .iter()
        .map(|&tu| {
            let hat = ((tu - min) / denom) as f32; // Eq. 6, in [0, 1]
            let score = match bias {
                TemporalBias::Chronological => hat,
                TemporalBias::ReverseChronological => 1.0 - hat,
                TemporalBias::Uniform => unreachable!("handled above"),
            };
            score / tau
        })
        .collect();
    softmax(&logits)
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chronological_prefers_recent() {
        let p = temporal_probs(&[1.0, 5.0, 9.0], 10.0, 0.5, TemporalBias::Chronological);
        assert!(p[2] > p[1] && p[1] > p[0], "{p:?}");
    }

    #[test]
    fn reverse_prefers_old() {
        let p = temporal_probs(
            &[1.0, 5.0, 9.0],
            10.0,
            0.5,
            TemporalBias::ReverseChronological,
        );
        assert!(p[0] > p[1] && p[1] > p[2], "{p:?}");
    }

    #[test]
    fn chronological_and_reverse_are_reflections() {
        // For a time set symmetric about its midpoint, the reverse
        // distribution is the chronological one read backwards (Eq. 8 is
        // Eq. 7 applied to 1 − t̂).
        let times = [1.0, 3.0, 7.0, 9.0];
        let p = temporal_probs(&times, 10.0, 0.7, TemporalBias::Chronological);
        let q = temporal_probs(&times, 10.0, 0.7, TemporalBias::ReverseChronological);
        let mut q_rev = q.clone();
        q_rev.reverse();
        for (a, b) in p.iter().zip(q_rev.iter()) {
            assert!((a - b).abs() < 1e-5, "p={p:?} q={q:?}");
        }
    }

    #[test]
    fn uniform_bias_is_uniform() {
        let p = temporal_probs(&[1.0, 5.0, 9.0], 10.0, 0.5, TemporalBias::Uniform);
        assert!(p.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn degenerate_same_time_falls_back_to_uniform() {
        let p = temporal_probs(&[5.0, 5.0], 5.0, 0.5, TemporalBias::Chronological);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn single_neighbor_gets_probability_one() {
        let p = temporal_probs(&[2.0], 10.0, 0.5, TemporalBias::Chronological);
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(temporal_probs(&[], 10.0, 0.5, TemporalBias::Chronological).is_empty());
    }

    #[test]
    fn low_temperature_sharpens() {
        let times = [1.0, 9.0];
        let sharp = temporal_probs(&times, 10.0, 0.1, TemporalBias::Chronological);
        let soft = temporal_probs(&times, 10.0, 5.0, TemporalBias::Chronological);
        assert!(sharp[1] > soft[1], "sharp {sharp:?} vs soft {soft:?}");
        assert!(soft[1] > 0.5);
    }

    proptest! {
        #[test]
        fn probabilities_sum_to_one_and_are_positive(
            times in proptest::collection::vec(0.0f64..100.0, 1..30),
            tau in 0.05f32..5.0,
        ) {
            for bias in [TemporalBias::Chronological, TemporalBias::ReverseChronological, TemporalBias::Uniform] {
                let p = temporal_probs(&times, 101.0, tau, bias);
                let sum: f32 = p.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4, "{bias:?}: sum {sum}");
                prop_assert!(p.iter().all(|&x| x > 0.0));
            }
        }

        #[test]
        fn chronological_is_monotone_in_time(
            mut times in proptest::collection::vec(0.0f64..99.0, 2..20),
        ) {
            times.sort_by(f64::total_cmp);
            times.dedup();
            prop_assume!(times.len() >= 2);
            let p = temporal_probs(&times, 100.0, 0.5, TemporalBias::Chronological);
            for w in p.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-7);
            }
        }
    }
}
