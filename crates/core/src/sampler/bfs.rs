//! The η-BFS sampling strategy (paper §IV-A, Fig. 3).
//!
//! From a root node at time `t`, sample η of its temporal neighbours
//! according to a temporal-aware probability function, then recurse on each
//! sampled neighbour, `k` levels deep. With the chronological probability
//! (Eq. 7) this yields the *recent* subgraph `TP_i^t`; with the reverse
//! chronological probability (Eq. 8) the *agelong* subgraph `TN_i^t`.

use crate::sampler::prob::{temporal_probs, TemporalBias};
use cpdg_graph::{DynamicGraph, NodeId, TemporalNeighbors, Timestamp};
use rand::rngs::StdRng;
use rand::RngExt;

/// η-BFS hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct BfsConfig {
    /// Sampling width η (neighbours sampled per expanded node).
    pub eta: usize,
    /// Sampling depth k (hops).
    pub k: usize,
    /// Softmax temperature τ of Eqs. 7–8.
    pub tau: f32,
    /// Which temporal probability to use.
    pub bias: TemporalBias,
}

impl BfsConfig {
    /// The paper's default geometry (η-BFS toy example uses η=2, k=2; the
    /// complexity analysis of §IV-D uses width 20, depth 2 — we default to
    /// a middle ground suited to the synthetic graphs).
    pub fn new(eta: usize, k: usize, tau: f32, bias: TemporalBias) -> Self {
        Self { eta, k, tau, bias }
    }
}

/// Runs η-BFS from `root` at time `t`. Returns the sampled subgraph's node
/// set: the root first, then sampled nodes in discovery order, without
/// duplicates. Only events strictly before `t` are visible (temporal
/// causality).
pub fn eta_bfs(
    graph: &DynamicGraph,
    root: NodeId,
    t: Timestamp,
    cfg: &BfsConfig,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let mut seen: Vec<NodeId> = vec![root];
    let mut frontier: Vec<NodeId> = vec![root];
    for _hop in 0..cfg.k {
        let mut next: Vec<NodeId> = Vec::new();
        for &node in &frontier {
            let neighbors = graph.neighbors_before(node, t);
            if neighbors.is_empty() {
                continue;
            }
            let times: Vec<Timestamp> = neighbors.iter().map(|e| e.t).collect();
            let probs = temporal_probs(&times, t, cfg.tau, cfg.bias);
            for idx in sample_without_replacement(&probs, cfg.eta, rng) {
                let cand = neighbors[idx].neighbor;
                if !seen.contains(&cand) {
                    seen.push(cand);
                    next.push(cand);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen
}

/// η-BFS against any prebuilt [`TemporalNeighbors`] lookup — a monolithic
/// `TemporalAdjacencyIndex` or a `ShardedTemporalIndex` spanning shard
/// partitions — instead of the graph's nested adjacency lists. Produces
/// *bit-identical* output to [`eta_bfs`] for the same `(root, t, cfg)` and
/// RNG state — every implementor serves the same entries in the same
/// time-sorted order, so the weighted draw consumes the RNG stream
/// identically — while skipping the per-node timestamp re-collection the
/// graph path pays on every frontier expansion. Cross-shard hops need no
/// special casing: each frontier node's lookup is routed to its owning
/// partition by the composite index itself.
pub fn eta_bfs_indexed<I: TemporalNeighbors + ?Sized>(
    index: &I,
    root: NodeId,
    t: Timestamp,
    cfg: &BfsConfig,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let mut seen: Vec<NodeId> = vec![root];
    let mut frontier: Vec<NodeId> = vec![root];
    for _hop in 0..cfg.k {
        let mut next: Vec<NodeId> = Vec::new();
        for &node in &frontier {
            let view = index.before(node, t);
            if view.is_empty() {
                continue;
            }
            let probs = temporal_probs(view.times, t, cfg.tau, cfg.bias);
            for idx in sample_without_replacement(&probs, cfg.eta, rng) {
                let cand = view.neighbors[idx];
                if !seen.contains(&cand) {
                    seen.push(cand);
                    next.push(cand);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen
}

/// Weighted sampling of up to `n` distinct indices without replacement
/// (Efraimidis–Spirakis exponential-keys method: draw `u^(1/w)` per item,
/// keep the `n` largest).
///
/// Degenerate inputs are handled rather than trusted away: items with
/// zero, negative, NaN, or infinite weight are excluded before any RNG
/// draw (so they can neither be selected nor poison the key ordering),
/// `n` larger than the candidate set returns every positive-weight index,
/// and the sort uses `total_cmp`, which cannot panic even if a key
/// underflows (`u^(1/w)` can reach 0.0 for tiny weights).
fn sample_without_replacement(weights: &[f32], n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut keyed: Vec<(f32, usize)> = weights
        .iter()
        .enumerate()
        .filter(|(_, &w)| w > 0.0 && w.is_finite())
        .map(|(i, &w)| {
            let u: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
            (u.powf(1.0 / w), i)
        })
        .collect();
    let take = n.min(keyed.len());
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    keyed.truncate(take);
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_graph::graph_from_triples;
    use proptest::prelude::*;
    use rand::SeedableRng;

    /// Star around node 0 with increasing event times, plus a second hop.
    fn two_hop_graph() -> DynamicGraph {
        graph_from_triples(
            8,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (0, 3, 3.0),
                (1, 4, 1.5),
                (2, 5, 2.5),
                (3, 6, 3.5),
                (6, 7, 100.0), // after query time: must never appear
            ],
        )
        .unwrap()
    }

    fn cfg(bias: TemporalBias) -> BfsConfig {
        BfsConfig::new(2, 2, 0.5, bias)
    }

    #[test]
    fn respects_temporal_causality() {
        let g = two_hop_graph();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let nodes = eta_bfs(&g, 0, 10.0, &cfg(TemporalBias::Chronological), &mut rng);
            assert!(!nodes.contains(&7), "node 7's only edge is at t=100 > 10");
        }
    }

    #[test]
    fn root_always_included_first() {
        let g = two_hop_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let nodes = eta_bfs(&g, 0, 10.0, &cfg(TemporalBias::Chronological), &mut rng);
        assert_eq!(nodes[0], 0);
    }

    #[test]
    fn no_duplicates() {
        let g = two_hop_graph();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let nodes = eta_bfs(
                &g,
                0,
                10.0,
                &cfg(TemporalBias::ReverseChronological),
                &mut rng,
            );
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), nodes.len(), "{nodes:?}");
        }
    }

    #[test]
    fn size_bounded_by_geometric_sum() {
        // |subgraph| ≤ 1 + η + η² for k = 2.
        let g = two_hop_graph();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let nodes = eta_bfs(&g, 0, 10.0, &cfg(TemporalBias::Chronological), &mut rng);
            assert!(nodes.len() <= 1 + 2 + 4);
        }
    }

    #[test]
    fn isolated_root_returns_singleton() {
        let g = graph_from_triples(3, &[(1, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let nodes = eta_bfs(&g, 0, 10.0, &cfg(TemporalBias::Chronological), &mut rng);
        assert_eq!(nodes, vec![0]);
    }

    #[test]
    fn node_with_no_history_before_t() {
        let g = two_hop_graph();
        let mut rng = StdRng::seed_from_u64(5);
        // At t = 0.5 node 0 has no events yet.
        let nodes = eta_bfs(&g, 0, 0.5, &cfg(TemporalBias::Chronological), &mut rng);
        assert_eq!(nodes, vec![0]);
    }

    #[test]
    fn chronological_bias_picks_recent_more_often() {
        // Node 0's neighbours: 1 (t=1), 2 (t=2), 3 (t=3). With η = 1 and a
        // sharp temperature, chrono should mostly select node 3; reverse
        // mostly node 1.
        let g = two_hop_graph();
        let sharp_chrono = BfsConfig::new(1, 1, 0.05, TemporalBias::Chronological);
        let sharp_rev = BfsConfig::new(1, 1, 0.05, TemporalBias::ReverseChronological);
        let mut rng = StdRng::seed_from_u64(6);
        let mut chrono_recent = 0;
        let mut rev_old = 0;
        let trials = 200;
        for _ in 0..trials {
            let c = eta_bfs(&g, 0, 4.0, &sharp_chrono, &mut rng);
            if c.contains(&3) {
                chrono_recent += 1;
            }
            let r = eta_bfs(&g, 0, 4.0, &sharp_rev, &mut rng);
            if r.contains(&1) {
                rev_old += 1;
            }
        }
        assert!(
            chrono_recent > trials * 8 / 10,
            "chrono picked recent {chrono_recent}/{trials}"
        );
        assert!(
            rev_old > trials * 8 / 10,
            "reverse picked old {rev_old}/{trials}"
        );
    }

    #[test]
    fn weighted_sample_without_replacement_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = [0.5f32, 0.3, 0.2];
        for n in 0..5 {
            let s = sample_without_replacement(&w, n, &mut rng);
            assert_eq!(s.len(), n.min(3));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), s.len());
        }
    }

    #[test]
    fn weighted_sample_all_zero_weights_is_empty() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!(sample_without_replacement(&[0.0, 0.0, 0.0], 2, &mut rng).is_empty());
        assert!(sample_without_replacement(&[], 2, &mut rng).is_empty());
    }

    #[test]
    fn weighted_sample_n_exceeding_candidates_returns_all() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = sample_without_replacement(&[0.4, 0.0, 0.6], 10, &mut rng);
        s.sort_unstable();
        assert_eq!(s, vec![0, 2], "only the positive-weight indices, each once");
    }

    #[test]
    fn weighted_sample_single_candidate() {
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(sample_without_replacement(&[1.0], 1, &mut rng), vec![0]);
        assert_eq!(sample_without_replacement(&[1.0], 5, &mut rng), vec![0]);
        assert!(sample_without_replacement(&[1.0], 0, &mut rng).is_empty());
    }

    #[test]
    fn weighted_sample_rejects_non_finite_and_negative_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = [f32::NAN, -1.0, f32::INFINITY, 0.5, f32::NEG_INFINITY];
        for _ in 0..20 {
            let s = sample_without_replacement(&w, 3, &mut rng);
            assert_eq!(s, vec![3], "only the finite positive weight survives");
        }
    }

    #[test]
    fn weighted_sample_tiny_weights_do_not_panic() {
        // u^(1/w) underflows to 0.0 for tiny w; total_cmp keeps the sort
        // well-defined where partial_cmp would have to handle equality of
        // degenerate keys.
        let mut rng = StdRng::seed_from_u64(12);
        let w = [1e-30f32, 1e-30, 1e-30, 1.0];
        for _ in 0..20 {
            let s = sample_without_replacement(&w, 2, &mut rng);
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn indexed_bfs_matches_graph_path_bitwise() {
        let g = two_hop_graph();
        let idx = cpdg_graph::TemporalAdjacencyIndex::build(&g);
        for seed in 0..20 {
            for bias in [
                TemporalBias::Chronological,
                TemporalBias::ReverseChronological,
            ] {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                let a = eta_bfs(&g, 0, 10.0, &cfg(bias), &mut r1);
                let b = eta_bfs_indexed(&idx, 0, 10.0, &cfg(bias), &mut r2);
                assert_eq!(a, b, "seed {seed} bias {bias:?}");
            }
        }
    }

    #[test]
    fn sharded_index_bfs_is_bit_identical_at_any_shard_count() {
        use cpdg_graph::{ShardRouter, ShardedTemporalIndex};
        let g = two_hop_graph();
        let idx = cpdg_graph::TemporalAdjacencyIndex::build(&g);
        for shards in [1usize, 2, 8] {
            let sharded = ShardedTemporalIndex::build(&g, ShardRouter::new(shards));
            for seed in 0..10 {
                for bias in [
                    TemporalBias::Chronological,
                    TemporalBias::ReverseChronological,
                ] {
                    let mut r1 = StdRng::seed_from_u64(seed);
                    let mut r2 = StdRng::seed_from_u64(seed);
                    let a = eta_bfs_indexed(&idx, 0, 10.0, &cfg(bias), &mut r1);
                    let b = eta_bfs_indexed(&sharded, 0, 10.0, &cfg(bias), &mut r2);
                    assert_eq!(a, b, "shards {shards} seed {seed} bias {bias:?}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sampler_invariants_on_random_graphs(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 0.0f64..50.0), 1..60),
            seed in 0u64..500,
            eta in 1usize..4,
            k in 1usize..4,
        ) {
            let triples: Vec<(u32, u32, f64)> = edges;
            let g = graph_from_triples(12, &triples).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = BfsConfig::new(eta, k, 0.5, TemporalBias::Chronological);
            let nodes = eta_bfs(&g, 0, 25.0, &cfg, &mut rng);
            // Root present, unique, bounded by Σ η^h.
            prop_assert_eq!(nodes[0], 0);
            let mut d = nodes.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), nodes.len());
            let bound: usize = (0..=k).map(|h| eta.pow(h as u32)).sum();
            prop_assert!(nodes.len() <= bound);
            // Every non-root node reachable before t=25 from sampled set.
            for &n in &nodes[1..] {
                prop_assert!(g.degree_before(n, 25.0) > 0);
            }
        }
    }
}
