//! Batched, multi-threaded subgraph sampling with per-query RNG streams.
//!
//! Pre-training asks for η-BFS / ε-DFS subgraphs in batches — one positive
//! and one negative per contrast centre (paper §IV-B). [`BatchSampler`]
//! builds a [`TemporalAdjacencyIndex`] once per graph and fans the `(root,
//! t)` queries of each batch across scoped worker threads.
//!
//! **Determinism contract.** Every query `i` of a batch draws from its own
//! RNG stream, [`query_rng`]`(batch_seed, i)` — the same splittable
//! reseeding discipline the training loop already uses per batch. A query's
//! result therefore depends only on `(batch_seed, i)` and the immutable
//! index, never on which worker ran it or in what order, so batch results
//! are bit-identical at every thread count (enforced by the
//! `sampler_determinism` suite).

use crate::sampler::bfs::{eta_bfs_indexed, BfsConfig};
use crate::sampler::dfs::{eps_dfs_indexed, DfsConfig};
use cpdg_graph::{DynamicGraph, NodeId, TemporalAdjacencyIndex, Timestamp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG stream of query `index` within a batch seeded by `batch_seed`
/// (golden-ratio mixing, matching the per-batch discipline in
/// `pretrain::batch_rng`).
pub fn query_rng(batch_seed: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(batch_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Domain-separation salt folded into [`shard_query_rng`] so a sharded
/// stream never collides with an unsharded [`query_rng`] stream for any
/// `(batch_seed, index)` pair (the shard-0 stream is salted too).
pub const SHARD_STREAM_SALT: u64 = 0x5348_4152_445F_5631; // "SHARD_V1"

/// The RNG stream of query `index` on shard `shard` — a pure function of
/// `(batch_seed, shard, index)`, extending the [`query_rng`] salt scheme
/// with a shard id (DESIGN §13). Per-shard batch work (e.g. shard-local
/// contrast sampling) draws from these streams so two shards can never
/// alias each other's randomness; the result depends only on the triple,
/// never on thread count or scheduling, preserving the bit-identity
/// discipline of [`query_rng`].
pub fn shard_query_rng(batch_seed: u64, shard: usize, index: usize) -> StdRng {
    let salted =
        batch_seed ^ SHARD_STREAM_SALT ^ (shard as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    query_rng(salted, index)
}

/// Bumps the process-wide sampler counters for one batch of `queries`
/// centre queries (observation only — never touches the RNG streams, so the
/// determinism contract above is unaffected).
fn note_batch(queries: usize) {
    cpdg_obs::counter!("sampler.batches").inc();
    cpdg_obs::counter!("sampler.queries").add(queries as u64);
}

/// Runs `f(0..n)` across `threads` scoped workers, returning results in
/// index order. Each worker owns a contiguous chunk of the output, so no
/// locks are needed and the result layout is independent of scheduling.
fn fan_out<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(threads.min(n));
    let f = &f;
    std::thread::scope(|scope| {
        for (block, chunk) in slots.chunks_mut(per).enumerate() {
            scope.spawn(move || {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(block * per + j));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("fan_out: every index below n lies in exactly one chunk"))
        .collect()
}

/// A reusable batched sampler over one graph: the temporal adjacency index
/// is built once, then every batch call fans its queries across worker
/// threads (count taken from [`cpdg_tensor::threading`] unless overridden).
pub struct BatchSampler<'g> {
    graph: &'g DynamicGraph,
    index: TemporalAdjacencyIndex,
    threads: usize,
}

impl<'g> BatchSampler<'g> {
    /// Builds the index for `graph`; worker count from
    /// [`cpdg_tensor::threading::current_threads`].
    pub fn new(graph: &'g DynamicGraph) -> Self {
        Self::with_threads(graph, cpdg_tensor::threading::current_threads())
    }

    /// Builds the index with an explicit worker count (≥ 1).
    pub fn with_threads(graph: &'g DynamicGraph, threads: usize) -> Self {
        Self {
            graph,
            index: TemporalAdjacencyIndex::build(graph),
            threads: threads.max(1),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g DynamicGraph {
        self.graph
    }

    /// The prebuilt temporal adjacency index.
    pub fn index(&self) -> &TemporalAdjacencyIndex {
        &self.index
    }

    /// Worker threads used per batch call.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// η-BFS over a batch of `(root, t)` queries; result `i` is bit-identical
    /// to `eta_bfs_indexed(index, root_i, t_i, cfg, &mut query_rng(batch_seed, i))`
    /// at any thread count.
    pub fn sample_bfs_batch(
        &self,
        queries: &[(NodeId, Timestamp)],
        cfg: &BfsConfig,
        batch_seed: u64,
    ) -> Vec<Vec<NodeId>> {
        note_batch(queries.len());
        fan_out(queries.len(), self.threads, |i| {
            let (root, t) = queries[i];
            let mut rng = query_rng(batch_seed, i);
            eta_bfs_indexed(&self.index, root, t, cfg, &mut rng)
        })
    }

    /// ε-DFS over a batch of `(root, t)` queries (deterministic; no RNG).
    pub fn sample_dfs_batch(
        &self,
        queries: &[(NodeId, Timestamp)],
        cfg: &DfsConfig,
    ) -> Vec<Vec<NodeId>> {
        note_batch(queries.len());
        fan_out(queries.len(), self.threads, |i| {
            let (root, t) = queries[i];
            eps_dfs_indexed(&self.index, root, t, cfg)
        })
    }

    /// The temporal-contrast sampling pattern: per query, a positive η-BFS
    /// (chronological bias) then a negative η-BFS (reverse bias), both drawn
    /// from query `i`'s stream in that order.
    pub fn sample_bfs_pairs(
        &self,
        queries: &[(NodeId, Timestamp)],
        pos_cfg: &BfsConfig,
        neg_cfg: &BfsConfig,
        batch_seed: u64,
    ) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
        note_batch(queries.len());
        fan_out(queries.len(), self.threads, |i| {
            let (root, t) = queries[i];
            let mut rng = query_rng(batch_seed, i);
            let pos = eta_bfs_indexed(&self.index, root, t, pos_cfg, &mut rng);
            let neg = eta_bfs_indexed(&self.index, root, t, neg_cfg, &mut rng);
            (pos, neg)
        })
    }

    /// The structural-contrast sampling pattern: per query, the positive
    /// ε-DFS rooted at the centre plus a negative ε-DFS rooted at a random
    /// pool node `≠` centre (bounded retry, falling back to any pool node
    /// when the pool holds a single distinct id).
    ///
    /// # Panics
    /// Panics if `negative_pool` is empty.
    pub fn sample_dfs_pairs(
        &self,
        queries: &[(NodeId, Timestamp)],
        negative_pool: &[NodeId],
        cfg: &DfsConfig,
        batch_seed: u64,
    ) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
        assert!(
            !negative_pool.is_empty(),
            "sample_dfs_pairs: empty negative pool"
        );
        note_batch(queries.len());
        fan_out(queries.len(), self.threads, |i| {
            let (root, t) = queries[i];
            let mut rng = query_rng(batch_seed, i);
            let pos = eps_dfs_indexed(&self.index, root, t, cfg);
            let mut other = negative_pool[rng.random_range(0..negative_pool.len())];
            for _ in 0..8 {
                if other != root {
                    break;
                }
                other = negative_pool[rng.random_range(0..negative_pool.len())];
            }
            let neg = eps_dfs_indexed(&self.index, other, t, cfg);
            (pos, neg)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::prob::TemporalBias;
    use cpdg_graph::{generate, SyntheticConfig};

    fn sampler_with(threads: usize) -> (cpdg_graph::SyntheticDataset, usize) {
        let ds = generate(&SyntheticConfig::amazon_like(21).scaled(0.05));
        (ds, threads)
    }

    fn queries(graph: &DynamicGraph, n: usize) -> Vec<(NodeId, Timestamp)> {
        let t = graph.t_max().unwrap() + 1.0;
        graph
            .active_nodes()
            .into_iter()
            .take(n)
            .map(|node| (node, t))
            .collect()
    }

    #[test]
    fn batch_matches_individual_queries() {
        let (ds, _) = sampler_with(1);
        let s = BatchSampler::with_threads(&ds.graph, 1);
        let q = queries(&ds.graph, 12);
        let cfg = BfsConfig::new(3, 2, 0.5, TemporalBias::Chronological);
        let batch = s.sample_bfs_batch(&q, &cfg, 77);
        for (i, &(root, t)) in q.iter().enumerate() {
            let mut rng = query_rng(77, i);
            let solo = eta_bfs_indexed(s.index(), root, t, &cfg, &mut rng);
            assert_eq!(batch[i], solo, "query {i}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (ds, _) = sampler_with(1);
        let q = queries(&ds.graph, 16);
        let bfs = BfsConfig::new(3, 2, 0.5, TemporalBias::Chronological);
        let rev = BfsConfig::new(3, 2, 0.5, TemporalBias::ReverseChronological);
        let dfs = DfsConfig::new(3, 2);
        let pool = ds.graph.active_nodes();
        let reference = BatchSampler::with_threads(&ds.graph, 1);
        let want_bfs = reference.sample_bfs_pairs(&q, &bfs, &rev, 5);
        let want_dfs = reference.sample_dfs_pairs(&q, &pool, &dfs, 5);
        for threads in [2, 3, 8] {
            let s = BatchSampler::with_threads(&ds.graph, threads);
            assert_eq!(
                s.sample_bfs_pairs(&q, &bfs, &rev, 5),
                want_bfs,
                "{threads} threads"
            );
            assert_eq!(
                s.sample_dfs_pairs(&q, &pool, &dfs, 5),
                want_dfs,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn different_batch_seeds_differ() {
        let (ds, _) = sampler_with(1);
        let s = BatchSampler::with_threads(&ds.graph, 2);
        let q = queries(&ds.graph, 16);
        let cfg = BfsConfig::new(3, 2, 0.5, TemporalBias::Chronological);
        let a = s.sample_bfs_batch(&q, &cfg, 1);
        let b = s.sample_bfs_batch(&q, &cfg, 2);
        assert_ne!(a, b, "distinct batch seeds must explore differently");
    }

    #[test]
    fn shard_streams_are_pure_and_domain_separated() {
        // Pure: same (seed, shard, index) triple, same stream.
        let a: Vec<u64> = {
            let mut rng = shard_query_rng(9, 3, 5);
            (0..8).map(|_| rng.random::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = shard_query_rng(9, 3, 5);
            (0..8).map(|_| rng.random::<u64>()).collect()
        };
        assert_eq!(a, b, "shard streams must be pure functions of the triple");
        // Every coordinate of the triple separates streams.
        for (seed, shard, index) in [(10u64, 3usize, 5usize), (9, 4, 5), (9, 3, 6)] {
            let mut rng = shard_query_rng(seed, shard, index);
            let other: Vec<u64> = (0..8).map(|_| rng.random::<u64>()).collect();
            assert_ne!(
                a, other,
                "({seed}, {shard}, {index}) must not alias (9, 3, 5)"
            );
        }
        // Shard 0 is salted too: no collision with the unsharded stream.
        let mut sharded = shard_query_rng(9, 0, 5);
        let mut unsharded = query_rng(9, 5);
        let s: Vec<u64> = (0..8).map(|_| sharded.random::<u64>()).collect();
        let u: Vec<u64> = (0..8).map(|_| unsharded.random::<u64>()).collect();
        assert_ne!(s, u, "shard-0 streams must not alias query_rng streams");
    }

    #[test]
    fn dfs_batch_is_seed_free_and_deterministic() {
        let (ds, _) = sampler_with(1);
        let q = queries(&ds.graph, 10);
        let cfg = DfsConfig::new(2, 2);
        let a = BatchSampler::with_threads(&ds.graph, 1).sample_dfs_batch(&q, &cfg);
        let b = BatchSampler::with_threads(&ds.graph, 4).sample_dfs_batch(&q, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (ds, _) = sampler_with(1);
        let s = BatchSampler::with_threads(&ds.graph, 4);
        let cfg = BfsConfig::new(2, 1, 0.5, TemporalBias::Chronological);
        assert!(s.sample_bfs_batch(&[], &cfg, 0).is_empty());
        assert!(s.sample_dfs_batch(&[], &DfsConfig::new(2, 1)).is_empty());
    }

    #[test]
    fn negative_roots_avoid_center_when_pool_allows() {
        let (ds, _) = sampler_with(1);
        let s = BatchSampler::with_threads(&ds.graph, 2);
        let q = queries(&ds.graph, 8);
        let pool: Vec<NodeId> = q.iter().map(|&(n, _)| n).collect();
        let pairs = s.sample_dfs_pairs(&q, &pool, &DfsConfig::new(2, 2), 9);
        for (i, (pos, neg)) in pairs.iter().enumerate() {
            assert_eq!(pos[0], q[i].0, "positive rooted at the centre");
            assert_ne!(
                neg[0],
                q[i].0,
                "negative root must differ (pool has {} ids)",
                pool.len()
            );
        }
    }
}
