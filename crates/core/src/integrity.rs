//! CRC32 integrity footers for on-disk artifacts.
//!
//! Atomic publishes ([`Storage::write_atomic`](crate::storage::Storage))
//! guarantee a file is either the old version or the new one — but they
//! cannot detect bytes altered *after* the rename (bit rot, a foreign tool
//! truncating the file in place, a bad disk sector). The integrity footer
//! closes that gap: writers append a fixed-width CRC32 trailer over the
//! payload, and loaders recompute it before parsing.
//!
//! The footer is deliberately JSON-inert — a trailing comment-style line —
//! so a human inspecting the file sees the checksum, and tooling that
//! strips it recovers the exact original payload:
//!
//! ```text
//! {"version":1, ...}
//! #crc32:9a8b7c6d
//! ```
//!
//! Legacy files written before this footer existed load unchanged: a
//! missing footer is tolerated with a one-time warning and a
//! `integrity.legacy_loads` counter bump, so fleets can find un-resealed
//! artifacts without breaking them.

use crate::error::{CpdgError, CpdgResult};
use std::path::Path;
use std::sync::Once;

/// Footer prefix: newline so the payload's final byte is untouched, then a
/// comment-style marker no JSON payload can end with.
const FOOTER_PREFIX: &[u8] = b"\n#crc32:";
/// Total footer width: prefix + 8 lowercase hex digits + trailing newline.
const FOOTER_LEN: usize = FOOTER_PREFIX.len() + 8 + 1;

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
/// Table-free bitwise form — artifact files are small enough that the
/// simplicity beats a 1 KiB table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends the integrity footer to `payload`, producing the bytes to hand
/// to [`Storage::write_atomic`](crate::storage::Storage::write_atomic).
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FOOTER_LEN);
    out.extend_from_slice(payload);
    out.extend_from_slice(FOOTER_PREFIX);
    out.extend_from_slice(format!("{:08x}", crc32(payload)).as_bytes());
    out.push(b'\n');
    out
}

/// Splits `bytes` into payload + verified footer.
///
/// * Footer present and CRC matches → the payload slice.
/// * Footer present and CRC differs → [`CpdgError::CorruptArtifact`].
/// * No footer (legacy file) → the whole input, with a one-time warning
///   and an `integrity.legacy_loads` counter bump per occurrence.
pub fn unseal<'a>(bytes: &'a [u8], path: &Path) -> CpdgResult<&'a [u8]> {
    let Some((payload, footer_crc)) = split_footer(bytes) else {
        static LEGACY_WARN: Once = Once::new();
        LEGACY_WARN.call_once(|| {
            cpdg_obs::warn!(
                "core.integrity",
                "loading artifact without integrity footer (legacy format); re-save to seal it";
                path = path.display().to_string(),
            );
        });
        cpdg_obs::counter!("integrity.legacy_loads").inc();
        return Ok(bytes);
    };
    let computed = crc32(payload);
    if computed != footer_crc {
        cpdg_obs::counter!("integrity.crc_failures").inc();
        return Err(CpdgError::CorruptArtifact {
            path: path.to_path_buf(),
            expected: footer_crc,
            found: computed,
        });
    }
    Ok(payload)
}

/// Like [`unseal`], but refuses legacy (unfootered) bytes.
///
/// Scrub-managed artifacts — WAL checkpoints, epoch files, the promoted
/// pointer, replicas — are *always* written sealed, so a missing or
/// unparseable footer there is corruption (a flip landing inside the
/// footer marker destroys it), never a legacy file. The error carries the
/// artifact path like every other integrity refusal.
pub fn unseal_strict<'a>(bytes: &'a [u8], path: &Path) -> CpdgResult<&'a [u8]> {
    if split_footer(bytes).is_none() {
        cpdg_obs::counter!("integrity.crc_failures").inc();
        return Err(CpdgError::corrupt(
            path,
            "integrity footer missing or unparseable on an always-sealed artifact",
        ));
    }
    unseal(bytes, path)
}

/// Parses the trailing footer, if one is present and well-formed.
fn split_footer(bytes: &[u8]) -> Option<(&[u8], u32)> {
    if bytes.len() < FOOTER_LEN || bytes.last() != Some(&b'\n') {
        return None;
    }
    let footer_start = bytes.len() - FOOTER_LEN;
    let footer = &bytes[footer_start..];
    if !footer.starts_with(FOOTER_PREFIX) {
        return None;
    }
    let hex = &footer[FOOTER_PREFIX.len()..FOOTER_LEN - 1];
    let hex = std::str::from_utf8(hex).ok()?;
    let crc = u32::from_str_radix(hex, 16).ok()?;
    Some((&bytes[..footer_start], crc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seal_unseal_round_trips() {
        let payload = br#"{"version":1,"params":{}}"#;
        let sealed = seal(payload);
        assert_eq!(sealed.len(), payload.len() + FOOTER_LEN);
        let back = unseal(&sealed, Path::new("/x.json")).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn flipped_bit_is_detected() {
        let mut sealed = seal(b"important model bytes");
        sealed[3] ^= 0x40;
        let err = unseal(&sealed, Path::new("/m.json")).unwrap_err();
        match err {
            CpdgError::CorruptArtifact {
                path,
                expected,
                found,
            } => {
                assert_eq!(path, PathBuf::from("/m.json"));
                assert_ne!(expected, found);
            }
            other => panic!("expected CorruptArtifact, got {other}"),
        }
    }

    #[test]
    fn tampered_footer_is_detected() {
        let sealed = seal(b"payload");
        // Rewrite the recorded checksum to a different valid hex string.
        let mut forged = sealed.clone();
        let at = forged.len() - 2;
        forged[at] = if forged[at] == b'0' { b'1' } else { b'0' };
        assert!(matches!(
            unseal(&forged, Path::new("/m.json")),
            Err(CpdgError::CorruptArtifact { .. })
        ));
    }

    #[test]
    fn legacy_unfootered_bytes_pass_through() {
        let legacy = br#"{"version":1}"#;
        let back = unseal(legacy, Path::new("/legacy.json")).unwrap();
        assert_eq!(back, legacy.as_slice());
        // Short inputs never index out of bounds.
        assert_eq!(unseal(b"", Path::new("/e")).unwrap(), b"");
        assert_eq!(unseal(b"\n", Path::new("/n")).unwrap(), b"\n");
    }

    #[test]
    fn payload_ending_in_footer_lookalike_still_verifies() {
        // A payload whose own tail mimics the footer marker must survive a
        // seal/unseal round trip untouched (the real footer wins).
        let tricky = b"data\n#crc32:deadbeef\n";
        let sealed = seal(tricky);
        assert_eq!(unseal(&sealed, Path::new("/t")).unwrap(), tricky.as_slice());
    }
}
