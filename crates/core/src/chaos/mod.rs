//! Deterministic fault injection for the whole CPDG pipeline.
//!
//! The chaos harness turns "does the pipeline survive flaky I/O?" from a
//! production anecdote into a CI assertion. It has four pieces:
//!
//! * [`FaultPlan`] ([`fault`]) — a seedable description of *where* (named
//!   [`FaultPoint`]s: `storage.write`, `storage.read`, `loader.row`,
//!   `sampler.batch`, `memory.update`, `ckpt.save`, `ckpt.load`, the
//!   serving points `serve.accept`/`serve.infer`/`serve.reload`/
//!   `serve.worker`, and the durability points
//!   `wal.append`/`wal.fsync`/`wal.replay`) and *when* (nth-hit,
//!   every-k, seeded probability) to raise typed transient or permanent
//!   faults. Plans serialise to JSON so a chaos run is reproducible from
//!   a `--chaos-plan` file.
//! * [`FaultHook`] ([`hook`]) — the lightweight handle threaded through
//!   the [`Storage`](crate::storage::Storage) trait (via
//!   [`ChaosStorage`]), the checkpoint manager
//!   ([`crate::checkpoint::CheckpointManager`]), ingestion, and the
//!   trainer loops. With no plan installed, [`FaultHook::check`] is a
//!   single `Option` test — a no-op on every hot path.
//! * [`RetryPolicy`] ([`retry`]) — bounded attempts with deterministic
//!   exponential backoff, applied to all storage and checkpoint I/O.
//!   Counters: `chaos.injected`, `retry.attempts`, `retry.gave_up`.
//! * [`ingest`] — chaos-aware JODIE ingestion: reads through the fault
//!   points, optionally injects malformed rows (which lenient loading
//!   quarantines), and enforces resource guards.
//!
//! **Determinism contract.** Every trigger decision is a pure function of
//! `(plan seed, fault point, hit index)`; no wall clock, no OS entropy.
//! Combined with the per-batch RNG reseeding of `pretrain` (PR 2), a run
//! that survives its faults — by retrying transients, resuming from a
//! checkpoint after a crash, or quarantining injected rows — produces
//! *bit-identical* final parameters and metrics to the fault-free run
//! with the same seed. The `chaos_suite` integration tests enforce this
//! as a recovery-correctness oracle.

pub mod fault;
pub mod hook;
pub mod ingest;
pub mod retry;

pub use fault::{FaultKind, FaultPlan, FaultPoint, FaultSpec, Trigger};
pub use hook::{ChaosStorage, Fault, FaultHook};
pub use ingest::load_jodie_chaos;
pub use retry::RetryPolicy;
