//! Chaos-aware JODIE ingestion.
//!
//! [`load_jodie_chaos`] is the hardened front door for dataset loading:
//! the raw bytes come through the [`Storage`] trait under a
//! [`RetryPolicy`] (with `storage.read` fault checks), the `loader.row`
//! fault point can corrupt the row stream with injected malformed lines,
//! and the parse itself honours [`LoadOptions`] — so a lenient load
//! quarantines exactly the injected corruption while strict loading
//! aborts on it.
//!
//! Injection adds junk *lines* rather than mutating valid rows: every
//! original row still parses, so a lenient load under a `loader.row`
//! plan produces the same graph (and therefore bit-identical downstream
//! metrics) as the fault-free load — the property the chaos suite
//! asserts.

use super::fault::FaultPoint;
use super::hook::{Fault, FaultHook};
use super::retry::RetryPolicy;
use crate::error::{CpdgError, CpdgResult};
use crate::storage::Storage;
use cpdg_graph::loader::{load_jodie_csv_with, LoadOptions, LoadedGraph};
use std::path::Path;

/// The malformed line spliced into the stream by a fired `loader.row`
/// fault (its `user_id` field can never parse).
pub const INJECTED_ROW: &str = "chaos,injected,malformed,row";

/// Loads a JODIE CSV through the chaos harness: storage reads are
/// retried under `retry` and consult the `storage.read` fault point;
/// each data row consults `loader.row`, and fired faults splice a
/// malformed line ([`INJECTED_ROW`]) into the stream before that row.
///
/// With an inert hook and [`RetryPolicy::none`] this is exactly
/// `storage.read` + [`load_jodie_csv_with`].
pub fn load_jodie_chaos(
    storage: &dyn Storage,
    path: &Path,
    opts: &LoadOptions,
    retry: &RetryPolicy,
    hook: &FaultHook,
) -> CpdgResult<LoadedGraph> {
    let bytes = retry
        .run(FaultPoint::StorageRead.name(), || {
            hook.check(FaultPoint::StorageRead)
                .map_err(Fault::into_io)?;
            storage.read(path)
        })
        .map_err(|e| CpdgError::io(path, e))?;
    let bytes = if hook.is_active() {
        inject_row_faults(&bytes, hook)
    } else {
        bytes
    };
    load_jodie_csv_with(&bytes[..], opts).map_err(CpdgError::from)
}

/// Consults `loader.row` once per data line; fired faults (of either
/// kind — a corrupted row is a corrupted row) prepend a junk line.
fn inject_row_faults(bytes: &[u8], hook: &FaultHook) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len());
    for (i, line) in bytes.split_inclusive(|&b| b == b'\n').enumerate() {
        let blank = line.iter().all(|&b| b == b'\n' || b == b'\r' || b == b' ');
        if i > 0 && !blank && hook.check(FaultPoint::LoaderRow).is_err() {
            out.extend_from_slice(INJECTED_ROW.as_bytes());
            out.push(b'\n');
        }
        out.extend_from_slice(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::fault::{FaultKind, FaultPlan, Trigger};
    use crate::storage::FS_STORAGE;
    use std::path::PathBuf;

    const SAMPLE: &str = "\
user_id,item_id,timestamp,state_label
0,0,0.0,0
0,1,10.0,0
1,0,20.0,1
";

    fn write_sample(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpdg_ingest_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        path
    }

    #[test]
    fn inert_hook_loads_identically_to_plain_loader() {
        let path = write_sample("inert");
        let chaos = load_jodie_chaos(
            &FS_STORAGE,
            &path,
            &LoadOptions::strict(),
            &RetryPolicy::none(),
            &FaultHook::none(),
        )
        .unwrap();
        let plain = cpdg_graph::loader::load_jodie_csv(SAMPLE.as_bytes()).unwrap();
        assert_eq!(chaos.graph.num_events(), plain.graph.num_events());
        assert_eq!(chaos.num_users, plain.num_users);
        assert!(chaos.quarantine.is_empty());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn row_faults_are_quarantined_leniently_without_changing_the_graph() {
        let path = write_sample("lenient");
        let plan = FaultPlan::new(3).with(
            FaultPoint::LoaderRow,
            FaultKind::Transient,
            Trigger::Every { k: 2 },
        );
        let hook = FaultHook::install(&plan);
        let loaded = load_jodie_chaos(
            &FS_STORAGE,
            &path,
            &LoadOptions::lenient(),
            &RetryPolicy::none(),
            &hook,
        )
        .unwrap();
        // 3 data rows hit loader.row; every 2nd fires → 1 injected line.
        assert_eq!(hook.injected_at(FaultPoint::LoaderRow), 1);
        assert_eq!(loaded.quarantine.total, 1);
        assert!(loaded.quarantine.rows[0].reason.contains("bad user_id"));
        // The injected junk is quarantined; the real rows all survive.
        assert_eq!(loaded.graph.num_events(), 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn row_faults_abort_strict_loads() {
        let path = write_sample("strict");
        let plan = FaultPlan::new(0).with(
            FaultPoint::LoaderRow,
            FaultKind::Permanent,
            Trigger::Nth { n: 1 },
        );
        let err = load_jodie_chaos(
            &FS_STORAGE,
            &path,
            &LoadOptions::strict(),
            &RetryPolicy::none(),
            &FaultHook::install(&plan),
        )
        .unwrap_err();
        assert!(matches!(err, CpdgError::Data(_)), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn transient_read_faults_clear_under_retry() {
        let path = write_sample("retry");
        let plan = FaultPlan::new(0).with(
            FaultPoint::StorageRead,
            FaultKind::Transient,
            Trigger::Nth { n: 1 },
        );
        let hook = FaultHook::install(&plan);
        let loaded = load_jodie_chaos(
            &FS_STORAGE,
            &path,
            &LoadOptions::strict(),
            &RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 0,
                max_delay_ms: 0,
            },
            &hook,
        )
        .unwrap();
        assert_eq!(loaded.graph.num_events(), 3);
        assert_eq!(hook.injected_at(FaultPoint::StorageRead), 1);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn permanent_read_faults_surface_as_io_errors() {
        let path = write_sample("perm");
        let plan = FaultPlan::new(0).with(
            FaultPoint::StorageRead,
            FaultKind::Permanent,
            Trigger::Nth { n: 1 },
        );
        let err = load_jodie_chaos(
            &FS_STORAGE,
            &path,
            &LoadOptions::strict(),
            &RetryPolicy::default(),
            &FaultHook::install(&plan),
        )
        .unwrap_err();
        assert!(matches!(err, CpdgError::Io { .. }), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
