//! The fault hook threaded through the pipeline, and the chaos storage
//! wrapper that injects faults into raw byte I/O.

use super::fault::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
use crate::storage::Storage;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An injected fault: which point raised it and whether it is worth
/// retrying. Converts to [`io::Error`] for the storage-shaped call sites
/// (transient → [`io::ErrorKind::Interrupted`], the kind
/// [`RetryPolicy`](super::RetryPolicy) retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The fault point that raised this fault.
    pub point: FaultPoint,
    /// Transient (retryable) or permanent.
    pub kind: FaultKind,
}

impl Fault {
    /// Whether a retry can clear this fault.
    pub fn is_transient(self) -> bool {
        self.kind == FaultKind::Transient
    }

    /// Renders the fault as an [`io::Error`]: transient faults map to
    /// [`io::ErrorKind::Interrupted`] (retryable), permanent ones to
    /// [`io::ErrorKind::Other`].
    pub fn into_io(self) -> io::Error {
        let kind = match self.kind {
            FaultKind::Transient => io::ErrorKind::Interrupted,
            FaultKind::Permanent => io::ErrorKind::Other,
        };
        io::Error::new(
            kind,
            format!("injected {} fault at {}", kind_name(self.kind), self.point),
        )
    }
}

fn kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Transient => "transient",
        FaultKind::Permanent => "permanent",
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault at {}",
            kind_name(self.kind),
            self.point
        )
    }
}

/// Per-spec runtime state: the spec plus how often its point has fired it.
struct SpecState {
    spec: FaultSpec,
    injected: AtomicU64,
}

/// Shared trigger state for one installed plan.
struct PlanState {
    seed: u64,
    specs: Vec<SpecState>,
    /// Hit counts per fault point, indexed by `FaultPoint as usize` order
    /// in [`FaultPoint::ALL`].
    hits: [AtomicU64; FaultPoint::ALL.len()],
}

fn point_index(point: FaultPoint) -> usize {
    FaultPoint::ALL
        .iter()
        .position(|p| *p == point)
        .expect("FaultPoint::ALL covers every variant")
}

impl PlanState {
    fn check(&self, point: FaultPoint) -> Result<(), Fault> {
        let hit = self.hits[point_index(point)].fetch_add(1, Ordering::Relaxed) + 1;
        for s in &self.specs {
            if s.spec.point == point && s.spec.trigger.fires(self.seed, point, hit) {
                s.injected.fetch_add(1, Ordering::Relaxed);
                cpdg_obs::counter!("chaos.injected").inc();
                cpdg_obs::debug!(
                    "core.chaos",
                    "fault injected";
                    point = point.name(),
                    kind = kind_name(s.spec.kind),
                    hit = hit,
                );
                return Err(Fault {
                    point,
                    kind: s.spec.kind,
                });
            }
        }
        Ok(())
    }
}

/// The handle production code consults at each fault point. Cloning is
/// cheap (an `Option<Arc>`), and all clones share trigger state, so hit
/// counts advance globally no matter which component consults.
///
/// With no plan installed ([`FaultHook::none`], the `Default`),
/// [`FaultHook::check`] is one `Option` discriminant test — effectively
/// free on hot paths.
#[derive(Clone, Default)]
pub struct FaultHook(Option<Arc<PlanState>>);

impl FaultHook {
    /// The inert hook: every check passes, nothing is counted.
    pub fn none() -> Self {
        Self(None)
    }

    /// Installs `plan`, returning a hook that injects its faults.
    pub fn install(plan: &FaultPlan) -> Self {
        Self(Some(Arc::new(PlanState {
            seed: plan.seed,
            specs: plan
                .faults
                .iter()
                .map(|&spec| SpecState {
                    spec,
                    injected: AtomicU64::new(0),
                })
                .collect(),
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }

    /// Whether a plan is installed.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Registers one hit of `point` and raises a fault if a rule fires.
    #[inline]
    pub fn check(&self, point: FaultPoint) -> Result<(), Fault> {
        match &self.0 {
            None => Ok(()),
            Some(state) => state.check(point),
        }
    }

    /// Total hits registered at `point` (0 when no plan is installed).
    pub fn hits(&self, point: FaultPoint) -> u64 {
        self.0
            .as_ref()
            .map(|s| s.hits[point_index(point)].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total faults injected across all rules (0 when no plan installed).
    pub fn injected(&self) -> u64 {
        self.0
            .as_ref()
            .map(|s| {
                s.specs
                    .iter()
                    .map(|x| x.injected.load(Ordering::Relaxed))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Faults injected at `point` across all rules targeting it.
    pub fn injected_at(&self, point: FaultPoint) -> u64 {
        self.0
            .as_ref()
            .map(|s| {
                s.specs
                    .iter()
                    .filter(|x| x.spec.point == point)
                    .map(|x| x.injected.load(Ordering::Relaxed))
                    .sum()
            })
            .unwrap_or(0)
    }
}

impl fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("FaultHook(none)"),
            Some(s) => write!(f, "FaultHook({} rules, seed {})", s.specs.len(), s.seed),
        }
    }
}

/// Wraps a [`Storage`] and consults the hook before every raw read and
/// write (`storage.read` / `storage.write` fault points). Injected faults
/// surface as [`io::Error`]s exactly where a flaky disk would raise them —
/// inside the atomic-publish protocol for writes — so crash-safety
/// machinery above is exercised for real.
pub struct ChaosStorage<'a> {
    inner: &'a dyn Storage,
    hook: FaultHook,
}

impl<'a> ChaosStorage<'a> {
    /// Wraps `inner`, injecting faults from `hook`.
    pub fn new(inner: &'a dyn Storage, hook: FaultHook) -> Self {
        Self { inner, hook }
    }
}

impl Storage for ChaosStorage<'_> {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.hook
            .check(FaultPoint::StorageWrite)
            .map_err(Fault::into_io)?;
        self.inner.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.hook
            .check(FaultPoint::StorageRead)
            .map_err(Fault::into_io)?;
        self.inner.read(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::fault::Trigger;
    use crate::storage::FS_STORAGE;

    #[test]
    fn inert_hook_always_passes() {
        let hook = FaultHook::none();
        for p in FaultPoint::ALL {
            assert!(hook.check(p).is_ok());
        }
        assert!(!hook.is_active());
        assert_eq!(hook.injected(), 0);
        assert_eq!(hook.hits(FaultPoint::CkptSave), 0);
    }

    #[test]
    fn nth_trigger_fires_once_and_counts() {
        let plan = FaultPlan::new(0).with(
            FaultPoint::CkptSave,
            FaultKind::Permanent,
            Trigger::Nth { n: 2 },
        );
        let hook = FaultHook::install(&plan);
        assert!(hook.check(FaultPoint::CkptSave).is_ok());
        let fault = hook.check(FaultPoint::CkptSave).unwrap_err();
        assert_eq!(fault.point, FaultPoint::CkptSave);
        assert!(!fault.is_transient());
        assert!(hook.check(FaultPoint::CkptSave).is_ok());
        assert_eq!(hook.hits(FaultPoint::CkptSave), 3);
        assert_eq!(hook.injected(), 1);
        assert_eq!(hook.injected_at(FaultPoint::CkptSave), 1);
        assert_eq!(hook.injected_at(FaultPoint::CkptLoad), 0);
    }

    #[test]
    fn clones_share_trigger_state() {
        let plan = FaultPlan::new(0).with(
            FaultPoint::MemoryUpdate,
            FaultKind::Transient,
            Trigger::Nth { n: 2 },
        );
        let a = FaultHook::install(&plan);
        let b = a.clone();
        assert!(a.check(FaultPoint::MemoryUpdate).is_ok());
        // The clone sees hit 2 — counts are global to the plan.
        assert!(b.check(FaultPoint::MemoryUpdate).is_err());
        assert_eq!(a.injected(), 1);
    }

    #[test]
    fn transient_fault_maps_to_interrupted_io_error() {
        let t = Fault {
            point: FaultPoint::StorageWrite,
            kind: FaultKind::Transient,
        }
        .into_io();
        assert_eq!(t.kind(), io::ErrorKind::Interrupted);
        assert!(t.to_string().contains("storage.write"), "{t}");
        let p = Fault {
            point: FaultPoint::StorageRead,
            kind: FaultKind::Permanent,
        }
        .into_io();
        assert_ne!(p.kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn chaos_storage_injects_on_write_and_read() {
        let dir = std::env::temp_dir().join(format!("cpdg_chaos_storage_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.bin");
        let plan = FaultPlan::new(0)
            .with(
                FaultPoint::StorageWrite,
                FaultKind::Transient,
                Trigger::Nth { n: 1 },
            )
            .with(
                FaultPoint::StorageRead,
                FaultKind::Permanent,
                Trigger::Nth { n: 2 },
            );
        let storage = ChaosStorage::new(&FS_STORAGE, FaultHook::install(&plan));
        // First write faults; the atomic protocol cleans up after itself.
        let err = storage.write_atomic(&path, b"payload").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(!path.exists());
        // Second write passes; first read passes; second read faults.
        storage.write_atomic(&path, b"payload").unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"payload");
        assert!(storage.read(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
