//! Bounded retries with deterministic exponential backoff.
//!
//! All storage and checkpoint I/O in the pipeline runs through a
//! [`RetryPolicy`], so a transient fault — injected by the chaos harness
//! or raised by a genuinely flaky disk — is absorbed instead of killing a
//! multi-hour run. Only *transient* error kinds are retried; permanent
//! failures surface immediately so crash/resume machinery (not retry
//! loops) handles them.
//!
//! Observability: every re-attempt bumps the `retry.attempts` counter, and
//! exhausting the budget bumps `retry.gave_up` and logs exactly one error
//! record on the `core.retry` target naming the fault point that gave up.

use std::io;
use std::time::Duration;

/// Bounded retry with deterministic exponential backoff.
///
/// The backoff schedule is a pure function of the attempt index
/// (`base_delay_ms << (attempt - 1)`, capped at `max_delay_ms`) — no
/// jitter, no wall clock — so chaos runs replay identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first try included (≥ 1; 0 behaves as 1).
    pub max_attempts: u32,
    /// Delay before the first re-attempt, in milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    /// Four attempts with 5 ms → 10 ms → 20 ms backoff, capped at 500 ms.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay_ms: 5,
            max_delay_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no delay.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// Whether `err` is worth retrying. Transient kinds are the ones the
    /// chaos harness raises for [`FaultKind::Transient`](super::FaultKind)
    /// plus the classic flaky-syscall kinds.
    pub fn is_transient(err: &io::Error) -> bool {
        matches!(
            err.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }

    /// The deterministic delay before re-attempt number `attempt`
    /// (1-based: the delay after the first failure is `backoff_delay(1)`).
    ///
    /// The exponential shift is clamped to 63 so `1u64 << shift` stays
    /// defined for any attempt count (a shift of ≥ 64 is undefined
    /// behaviour on u64), and the multiply saturates before the
    /// `max_delay_ms` cap is applied — `attempt = u32::MAX` is as safe as
    /// `attempt = 2`.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(63);
        let ms = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        Duration::from_millis(ms)
    }

    /// Runs `op` up to `max_attempts` times, backing off between transient
    /// failures. `what` names the operation (a fault-point name like
    /// `ckpt.save`) for the give-up error record.
    ///
    /// Non-transient errors return immediately without retrying or
    /// logging — they are the caller's to classify and report.
    pub fn run<T>(&self, what: &str, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let budget = self.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if !Self::is_transient(&e) => return Err(e),
                Err(e) if attempt >= budget => {
                    cpdg_obs::counter!("retry.gave_up").inc();
                    cpdg_obs::error!(
                        "core.retry",
                        "transient failures exhausted retry budget";
                        point = what,
                        attempts = budget,
                        error = e.to_string(),
                    );
                    return Err(e);
                }
                Err(e) => {
                    cpdg_obs::counter!("retry.attempts").inc();
                    cpdg_obs::debug!(
                        "core.retry",
                        "transient failure, retrying";
                        point = what,
                        attempt = attempt,
                        error = e.to_string(),
                    );
                    let delay = self.backoff_delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "flaky")
    }

    fn permanent() -> io::Error {
        io::Error::other("dead")
    }

    fn fast(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 5,
            max_delay_ms: 35,
        };
        assert_eq!(p.backoff_delay(1), Duration::from_millis(5));
        assert_eq!(p.backoff_delay(2), Duration::from_millis(10));
        assert_eq!(p.backoff_delay(3), Duration::from_millis(20));
        assert_eq!(p.backoff_delay(4), Duration::from_millis(35));
        assert_eq!(
            p.backoff_delay(60),
            Duration::from_millis(35),
            "huge attempts stay capped"
        );
    }

    #[test]
    fn backoff_shift_boundary_cannot_overflow() {
        // Attempts at and beyond the 64-bit shift boundary: with the shift
        // clamped to 63 and a saturating multiply, every attempt count maps
        // to the configured ceiling instead of overflowing (attempt 64
        // would otherwise shift by 64 — undefined on u64 — and attempt 65+
        // would wrap to tiny delays).
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay_ms: 5,
            max_delay_ms: 500,
        };
        for attempt in [63, 64, 65, 1_000, u32::MAX] {
            assert_eq!(
                p.backoff_delay(attempt),
                Duration::from_millis(500),
                "attempt {attempt} must hit the cap, not overflow"
            );
        }
        // Even a degenerate policy with no ceiling saturates instead of
        // wrapping: the delay is monotone non-decreasing in the attempt.
        let unbounded = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay_ms: 3,
            max_delay_ms: u64::MAX,
        };
        let mut last = Duration::ZERO;
        for attempt in [1, 2, 62, 63, 64, 65, u32::MAX] {
            let d = unbounded.backoff_delay(attempt);
            assert!(
                d >= last,
                "backoff regressed at attempt {attempt}: {d:?} < {last:?}"
            );
            last = d;
        }
    }

    #[test]
    fn transient_failures_clear_within_budget() {
        let mut calls = 0;
        let out = fast(4).run("test.retry.clears", || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let mut calls = 0;
        let out: io::Result<()> = fast(4).run("test.retry.permanent", || {
            calls += 1;
            Err(permanent())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "permanent errors must surface immediately");
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let mut calls = 0;
        let out: io::Result<()> = RetryPolicy::none().run("test.retry.none", || {
            calls += 1;
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn gave_up_logs_exactly_one_error_naming_the_point() {
        let cap = cpdg_obs::capture();
        let before = cpdg_obs::counter!("retry.gave_up").get();
        let out: io::Result<()> = fast(3).run("test.retry.gaveup", || Err(transient()));
        assert!(out.is_err());
        assert_eq!(cpdg_obs::counter!("retry.gave_up").get(), before + 1);
        // Exactly one error record for this give-up, carrying the point
        // name — concurrent tests are filtered out by the unique field.
        let errors: Vec<_> = cap
            .records_for("core.retry")
            .into_iter()
            .filter(|r| {
                r.level == cpdg_obs::Level::Error
                    && matches!(r.field("point"), Some(cpdg_obs::Value::Str(p))
                        if p == "test.retry.gaveup")
            })
            .collect();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].field("attempts"), Some(&cpdg_obs::Value::U64(3)));
    }

    #[test]
    fn attempts_counter_advances_per_retry() {
        let before = cpdg_obs::counter!("retry.attempts").get();
        let mut calls = 0;
        let _ = fast(4).run("test.retry.counter", || {
            calls += 1;
            if calls < 4 {
                Err(transient())
            } else {
                Ok(())
            }
        });
        // 3 re-attempts were made; other tests may add more in parallel.
        assert!(cpdg_obs::counter!("retry.attempts").get() >= before + 3);
    }
}
