//! Fault plans: where and when to inject which kind of fault.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The named places in the pipeline where faults can be injected. Each
/// point corresponds to one consult of the [`FaultHook`](super::FaultHook)
/// in production code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultPoint {
    /// A raw byte write through the [`Storage`](crate::storage::Storage)
    /// trait (including the temp-file leg of atomic publishes).
    #[serde(rename = "storage.write")]
    StorageWrite,
    /// A raw byte read through the `Storage` trait.
    #[serde(rename = "storage.read")]
    StorageRead,
    /// One data row of JODIE CSV ingestion (a fired fault corrupts the
    /// row stream with a malformed line; see [`super::ingest`]).
    #[serde(rename = "loader.row")]
    LoaderRow,
    /// One contrast-subgraph sampling batch inside the pre-training loop.
    #[serde(rename = "sampler.batch")]
    SamplerBatch,
    /// One encoder memory commit inside the pre-training loop.
    #[serde(rename = "memory.update")]
    MemoryUpdate,
    /// One checkpoint publish (the whole atomic save, pointer included).
    #[serde(rename = "ckpt.save")]
    CkptSave,
    /// One checkpoint candidate read during resume.
    #[serde(rename = "ckpt.load")]
    CkptLoad,
    /// Admission of one request into the serving queue (a fired fault
    /// sheds the request with a typed `Overloaded` rejection).
    #[serde(rename = "serve.accept")]
    ServeAccept,
    /// One full-path inference attempt inside the serving engine (a fired
    /// fault counts as an inference failure toward the circuit breaker).
    #[serde(rename = "serve.infer")]
    ServeInfer,
    /// One hot model reload attempt (a fired fault aborts the swap and
    /// keeps the previous model epoch live).
    #[serde(rename = "serve.reload")]
    ServeReload,
    /// One write-ahead-log record append (before the frame bytes hit the
    /// segment file; a fired fault rejects the event, leaving it in
    /// neither memory nor the log).
    #[serde(rename = "wal.append")]
    WalAppend,
    /// One WAL fsync per the configured policy (a fired fault rolls the
    /// segment back to its pre-append length — exactly-once semantics).
    #[serde(rename = "wal.fsync")]
    WalFsync,
    /// One WAL record visited during startup replay (a fired permanent
    /// fault aborts recovery with a typed error).
    #[serde(rename = "wal.replay")]
    WalReplay,
    /// One job drained by a serving worker thread (a fired fault panics
    /// the worker, exercising the supervisor restart path).
    #[serde(rename = "serve.worker")]
    ServeWorker,
    /// Routing one `EVENT` to its owning shard in the sharded serving
    /// engine (a fired fault rejects the event before the WAL append, so
    /// it lands in neither memory nor any shard's log).
    #[serde(rename = "shard.route")]
    ShardRoute,
    /// One windowed contrastive step of the continual trainer (a fired
    /// fault aborts the training cycle; the supervisor backs off and
    /// retries, and the serving epoch is untouched).
    #[serde(rename = "trainer.step")]
    TrainerStep,
    /// One candidate-epoch publish by the continual trainer (a fired
    /// fault quarantines the candidate before any bytes are written).
    #[serde(rename = "trainer.emit")]
    TrainerEmit,
    /// One promotion attempt of a validated candidate epoch into the
    /// serving engine (a fired fault quarantines the candidate and keeps
    /// the last-good epoch live).
    #[serde(rename = "trainer.promote")]
    TrainerPromote,
    /// One artifact read by the integrity scrubber (a fired fault fails
    /// that artifact's scan; the scrub cycle continues with the next
    /// artifact and the supervisor retries on its cadence).
    #[serde(rename = "scrub.read")]
    ScrubRead,
    /// One repair attempt — rewriting a corrupt copy from a verified
    /// replica (a fired fault leaves the bad copy in place; the next
    /// scrub cycle or unseal fall-through retries the repair).
    #[serde(rename = "scrub.repair")]
    ScrubRepair,
    /// One replicated sealed-artifact read (a fired fault flips one
    /// deterministically-chosen byte of the bytes just read, simulating
    /// bit rot on any artifact class — the seeded corruption half of the
    /// scrub oracle).
    #[serde(rename = "integrity.bitflip")]
    IntegrityBitflip,
}

impl FaultPoint {
    /// Every fault point, in catalogue order.
    pub const ALL: [FaultPoint; 21] = [
        FaultPoint::StorageWrite,
        FaultPoint::StorageRead,
        FaultPoint::LoaderRow,
        FaultPoint::SamplerBatch,
        FaultPoint::MemoryUpdate,
        FaultPoint::CkptSave,
        FaultPoint::CkptLoad,
        FaultPoint::ServeAccept,
        FaultPoint::ServeInfer,
        FaultPoint::ServeReload,
        FaultPoint::WalAppend,
        FaultPoint::WalFsync,
        FaultPoint::WalReplay,
        FaultPoint::ServeWorker,
        FaultPoint::ShardRoute,
        FaultPoint::TrainerStep,
        FaultPoint::TrainerEmit,
        FaultPoint::TrainerPromote,
        FaultPoint::ScrubRead,
        FaultPoint::ScrubRepair,
        FaultPoint::IntegrityBitflip,
    ];

    /// The dotted wire name (`storage.write`, `ckpt.save`, …) used in plan
    /// files, log fields, and error messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::StorageWrite => "storage.write",
            FaultPoint::StorageRead => "storage.read",
            FaultPoint::LoaderRow => "loader.row",
            FaultPoint::SamplerBatch => "sampler.batch",
            FaultPoint::MemoryUpdate => "memory.update",
            FaultPoint::CkptSave => "ckpt.save",
            FaultPoint::CkptLoad => "ckpt.load",
            FaultPoint::ServeAccept => "serve.accept",
            FaultPoint::ServeInfer => "serve.infer",
            FaultPoint::ServeReload => "serve.reload",
            FaultPoint::WalAppend => "wal.append",
            FaultPoint::WalFsync => "wal.fsync",
            FaultPoint::WalReplay => "wal.replay",
            FaultPoint::ServeWorker => "serve.worker",
            FaultPoint::ShardRoute => "shard.route",
            FaultPoint::TrainerStep => "trainer.step",
            FaultPoint::TrainerEmit => "trainer.emit",
            FaultPoint::TrainerPromote => "trainer.promote",
            FaultPoint::ScrubRead => "scrub.read",
            FaultPoint::ScrubRepair => "scrub.repair",
            FaultPoint::IntegrityBitflip => "integrity.bitflip",
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultPoint {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultPoint::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown fault point {s:?}"))
    }
}

/// Whether an injected fault is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// Goes away on retry (flaky disk, transient EINTR). Retried by
    /// [`RetryPolicy`](super::RetryPolicy) up to its attempt budget.
    Transient,
    /// Sticks: retrying is pointless (dead disk, killed process). Surfaces
    /// immediately as an error — the crash half of crash/resume drills.
    Permanent,
}

/// When a fault fires, counted in *hits* of its fault point (retries hit
/// the point again, so a transient `Nth` fault clears itself on retry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "when", rename_all = "snake_case")]
pub enum Trigger {
    /// Fires exactly once, on the `n`-th hit (1-based).
    Nth {
        /// 1-based hit index that fires.
        n: u64,
    },
    /// Fires on every `k`-th hit (hit `k`, `2k`, `3k`, …).
    Every {
        /// Period in hits (≥ 1; 0 is treated as 1).
        k: u64,
    },
    /// Fires with probability `p` per hit, decided by a deterministic
    /// seeded hash of `(plan seed, point, hit index)` — never OS entropy.
    Prob {
        /// Fire probability in `[0, 1]`.
        p: f64,
    },
}

impl Trigger {
    /// Whether the trigger fires on 1-based hit `hit` of `point` under
    /// `seed`. Pure: same inputs, same answer, on every thread and host.
    pub fn fires(self, seed: u64, point: FaultPoint, hit: u64) -> bool {
        match self {
            Trigger::Nth { n } => hit == n.max(1),
            Trigger::Every { k } => hit % k.max(1) == 0,
            Trigger::Prob { p } => {
                if p <= 0.0 {
                    return false;
                }
                if p >= 1.0 {
                    return true;
                }
                let mixed = splitmix64(
                    seed ^ (point as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ hit.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                // Map the hash to [0, 1) and compare against p.
                (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
            }
        }
    }
}

/// SplitMix64 finaliser — the standard avalanche mix used for the seeded
/// probability trigger.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One injection rule: raise a `kind` fault at `point` whenever `trigger`
/// fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Where to inject.
    pub point: FaultPoint,
    /// Transient or permanent.
    pub kind: FaultKind,
    /// When to fire, in hits of `point`.
    pub trigger: Trigger,
}

/// A complete, seedable fault schedule. Serialises to JSON for
/// `--chaos-plan` files:
///
/// ```json
/// {
///   "seed": 7,
///   "faults": [
///     {"point": "storage.write", "kind": "transient", "trigger": {"when": "every", "k": 3}},
///     {"point": "ckpt.save", "kind": "permanent", "trigger": {"when": "nth", "n": 2}}
///   ]
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the probability triggers (irrelevant to `nth`/`every`).
    #[serde(default)]
    pub seed: u64,
    /// The injection rules, consulted in order (first firing rule wins).
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan under `seed` — extend with [`FaultPlan::with`].
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one injection rule (builder style).
    pub fn with(mut self, point: FaultPoint, kind: FaultKind, trigger: Trigger) -> Self {
        self.faults.push(FaultSpec {
            point,
            kind,
            trigger,
        });
        self
    }

    /// Parses a plan from its JSON representation.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid chaos plan: {e}"))
    }

    /// Renders the plan as JSON (the `--chaos-plan` file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plans are plain data")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_names_round_trip() {
        for p in FaultPoint::ALL {
            assert_eq!(p.name().parse::<FaultPoint>().unwrap(), p);
        }
        assert!("disk.melt".parse::<FaultPoint>().is_err());
    }

    #[test]
    fn nth_fires_exactly_once() {
        let t = Trigger::Nth { n: 3 };
        let fired: Vec<u64> = (1..=10)
            .filter(|&h| t.fires(0, FaultPoint::CkptSave, h))
            .collect();
        assert_eq!(fired, vec![3]);
    }

    #[test]
    fn every_k_is_periodic() {
        let t = Trigger::Every { k: 4 };
        let fired: Vec<u64> = (1..=12)
            .filter(|&h| t.fires(0, FaultPoint::StorageWrite, h))
            .collect();
        assert_eq!(fired, vec![4, 8, 12]);
        // k = 0 degrades to every hit, not a division panic.
        assert!(Trigger::Every { k: 0 }.fires(0, FaultPoint::StorageWrite, 1));
    }

    #[test]
    fn prob_is_deterministic_and_seed_sensitive() {
        let t = Trigger::Prob { p: 0.5 };
        let a: Vec<bool> = (1..=64)
            .map(|h| t.fires(1, FaultPoint::LoaderRow, h))
            .collect();
        let b: Vec<bool> = (1..=64)
            .map(|h| t.fires(1, FaultPoint::LoaderRow, h))
            .collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        let c: Vec<bool> = (1..=64)
            .map(|h| t.fires(2, FaultPoint::LoaderRow, h))
            .collect();
        assert_ne!(a, c, "different seeds must differ");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (10..=54).contains(&fired),
            "p=0.5 over 64 hits fired {fired} times"
        );
        // Degenerate probabilities are exact.
        assert!(!Trigger::Prob { p: 0.0 }.fires(0, FaultPoint::LoaderRow, 1));
        assert!(Trigger::Prob { p: 1.0 }.fires(0, FaultPoint::LoaderRow, 1));
    }

    #[test]
    fn plan_json_round_trips() {
        let plan = FaultPlan::new(7)
            .with(
                FaultPoint::StorageWrite,
                FaultKind::Transient,
                Trigger::Every { k: 3 },
            )
            .with(
                FaultPoint::CkptSave,
                FaultKind::Permanent,
                Trigger::Nth { n: 2 },
            )
            .with(
                FaultPoint::LoaderRow,
                FaultKind::Transient,
                Trigger::Prob { p: 0.25 },
            );
        let json = plan.to_json();
        assert!(json.contains("\"storage.write\""), "{json}");
        assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
    }

    #[test]
    fn plan_json_rejects_unknown_points() {
        let err = FaultPlan::from_json(
            r#"{"seed":0,"faults":[{"point":"gpu.melt","kind":"transient","trigger":{"when":"nth","n":1}}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("invalid chaos plan"), "{err}");
    }

    #[test]
    fn empty_plan_parses_from_minimal_json() {
        let plan = FaultPlan::from_json("{}").unwrap();
        assert!(plan.faults.is_empty());
        assert_eq!(plan.seed, 0);
    }
}
