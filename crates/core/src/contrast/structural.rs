//! Structural Contrast (SC) — paper §IV-B, Eqs. 12–14.
//!
//! Instance discrimination over ε-DFS subgraphs: the subgraph rooted at the
//! centre node `i` is the positive `SP_i^t`; the subgraph rooted at a
//! random other node `i' ≠ i` is the negative `SN_{i'}^t`. The same
//! mean-pool readout and triplet margin loss as temporal contrast apply
//! (Eq. 14), teaching the encoder discriminative per-node structural
//! signatures.

use crate::contrast::temporal::readout_with;
use crate::sampler::batch::BatchSampler;
use crate::sampler::dfs::DfsConfig;
use cpdg_dgnn::DgnnEncoder;
use cpdg_graph::{NodeId, Timestamp};
use cpdg_tensor::loss::triplet_margin;
use cpdg_tensor::{Matrix, ParamStore, Tape, Var};

/// Structural-contrast hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct StructuralContrastConfig {
    /// ε-DFS branching width.
    pub epsilon: usize,
    /// ε-DFS depth.
    pub k: usize,
    /// Triplet margin α₁ (Eq. 14).
    pub margin: f32,
    /// Subgraph readout pooling (Eqs. 12–13; the paper uses mean).
    pub readout: crate::contrast::ReadoutKind,
}

impl Default for StructuralContrastConfig {
    fn default() -> Self {
        Self {
            epsilon: 3,
            k: 2,
            margin: 1.0,
            readout: Default::default(),
        }
    }
}

/// Computes the SC loss `L_ε` (Eq. 14) for a batch of centre nodes.
///
/// `negative_pool` supplies the candidate `i'` roots (typically all nodes
/// active in the pre-training graph); it must contain at least two distinct
/// nodes for the discrimination to be meaningful. The positive/negative
/// subgraph pairs are sampled by `sampler` across its worker threads, each
/// centre drawing its negative root from a private stream derived from
/// `batch_seed` — the result is independent of the thread count.
pub fn structural_contrast_loss(
    tape: &mut Tape,
    encoder: &DgnnEncoder,
    store: &ParamStore,
    sampler: &BatchSampler<'_>,
    centers: &[(NodeId, Timestamp)],
    z: Var,
    negative_pool: &[NodeId],
    cfg: &StructuralContrastConfig,
    batch_seed: u64,
) -> Var {
    assert_eq!(
        tape.value(z).rows(),
        centers.len(),
        "structural_contrast_loss: row mismatch"
    );
    assert!(
        !negative_pool.is_empty(),
        "structural_contrast_loss: empty negative pool"
    );
    let dim = encoder.dim();
    let dfs = DfsConfig::new(cfg.epsilon, cfg.k);

    let pairs = sampler.sample_dfs_pairs(centers, negative_pool, &dfs, batch_seed);
    let mut pos = Matrix::zeros(centers.len(), dim);
    let mut neg = Matrix::zeros(centers.len(), dim);
    for (row, (sp, sn)) in pairs.iter().enumerate() {
        pos.set_row(row, readout_with(encoder, store, sp, cfg.readout).row(0));
        neg.set_row(row, readout_with(encoder, store, sn, cfg.readout).row(0));
    }
    let pos = tape.constant(pos);
    let neg = tape.constant(neg);
    triplet_margin(tape, z, pos, neg, cfg.margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contrast::temporal::readout;
    use crate::sampler::dfs::eps_dfs;
    use cpdg_dgnn::{DgnnConfig, EncoderKind};
    use cpdg_graph::{graph_from_triples, DynamicGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, DgnnEncoder, DynamicGraph) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 1.0);
        let graph = graph_from_triples(
            6,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (2, 3, 3.0),
                (1, 4, 1.5),
                (3, 5, 3.5),
            ],
        )
        .unwrap();
        let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", 6, cfg);
        enc.replay(&store, &graph, 2);
        (store, enc, graph)
    }

    #[test]
    fn loss_is_finite_non_negative_scalar() {
        let (store, enc, graph) = setup();
        let sampler = BatchSampler::new(&graph);
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        let centers = [(0u32, 5.0f64), (2, 5.0)];
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &[0, 2], &[5.0, 5.0]);
        let pool: Vec<NodeId> = (0..6).collect();
        let loss = structural_contrast_loss(
            &mut tape,
            &enc,
            &store,
            &sampler,
            &centers,
            z,
            &pool,
            &StructuralContrastConfig::default(),
            1,
        );
        assert_eq!(tape.value(loss).shape(), (1, 1));
        let v = tape.value(loss).get(0, 0);
        assert!(v.is_finite() && v >= 0.0);
    }

    #[test]
    fn gradient_reaches_encoder() {
        let (store, enc, graph) = setup();
        let sampler = BatchSampler::new(&graph);
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &[0], &[5.0]);
        let pool: Vec<NodeId> = (0..6).collect();
        let cfg = StructuralContrastConfig {
            margin: 100.0,
            ..Default::default()
        };
        let loss = structural_contrast_loss(
            &mut tape,
            &enc,
            &store,
            &sampler,
            &[(0, 5.0)],
            z,
            &pool,
            &cfg,
            2,
        );
        let grads = tape.backward(loss);
        assert!(!tape.param_grads(&grads).is_empty());
    }

    #[test]
    fn negative_root_differs_from_center() {
        // With a two-node pool, the sampled negative root must be the other
        // node — verified indirectly: positive and negative readouts differ
        // when the two nodes' neighbourhoods differ.
        let (store, enc, graph) = setup();
        let dfs = DfsConfig::new(3, 2);
        let sp = eps_dfs(&graph, 0, 5.0, &dfs);
        let sn = eps_dfs(&graph, 3, 5.0, &dfs);
        assert_ne!(sp, sn);
        let rp = readout(&enc, &store, &sp);
        let rn = readout(&enc, &store, &sn);
        assert!(rp.max_abs_diff(&rn) > 1e-7);
    }

    #[test]
    #[should_panic(expected = "empty negative pool")]
    fn rejects_empty_pool() {
        let (store, enc, graph) = setup();
        let sampler = BatchSampler::new(&graph);
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &[0], &[5.0]);
        structural_contrast_loss(
            &mut tape,
            &enc,
            &store,
            &sampler,
            &[(0, 5.0)],
            z,
            &[],
            &StructuralContrastConfig::default(),
            3,
        );
    }
}
