//! Structural-temporal contrastive pre-training losses (paper §IV-B).

pub mod structural;
pub mod temporal;

pub use structural::{structural_contrast_loss, StructuralContrastConfig};
pub use temporal::{readout, readout_with, temporal_contrast_loss, TemporalContrastConfig};

use cpdg_tensor::Matrix;

/// The subgraph readout pooling (paper Eqs. 9–10: "a kind of graph pooling
/// operation, such as min, max, and weighted pooling. In this paper, we
/// use mean pooling for simplicity"). Mean is the paper's default; Max is
/// provided for the readout ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadoutKind {
    /// Column-wise mean (the paper's choice).
    #[default]
    Mean,
    /// Column-wise max.
    Max,
}

impl ReadoutKind {
    /// Pools an `m × d` state matrix into `1 × d`.
    pub fn pool(self, states: &Matrix) -> Matrix {
        match self {
            ReadoutKind::Mean => states.mean_rows(),
            ReadoutKind::Max => states.max_rows(),
        }
    }

    /// Display name for ablation tables.
    pub fn name(self) -> &'static str {
        match self {
            ReadoutKind::Mean => "mean",
            ReadoutKind::Max => "max",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_variants() {
        let m = Matrix::from_rows(&[&[1.0, 4.0], &[3.0, 2.0]]);
        assert_eq!(ReadoutKind::Mean.pool(&m), Matrix::row_vec(vec![2.0, 3.0]));
        assert_eq!(ReadoutKind::Max.pool(&m), Matrix::row_vec(vec![3.0, 4.0]));
        assert_eq!(ReadoutKind::default(), ReadoutKind::Mean);
    }
}
