//! Temporal Contrast (TC) — paper §IV-B, Eqs. 9–11.
//!
//! For an interaction event rooted at node `i` at time `t`, the *recent*
//! subgraph sampled by η-BFS with the chronological probability is the
//! positive (`TP_i^t`); the *agelong* subgraph sampled with the reverse
//! chronological probability is the negative (`TN_i^t`). Subgraph node
//! states are pooled from memory with a mean readout, and a triplet margin
//! loss pulls the centre embedding `z_i^t` toward the recent pool and away
//! from the agelong one — the short-term-fluctuation signal. Long-term
//! stability is carried by the memory module itself.
//!
//! Readout inputs are memory states (plus static identity embeddings) read
//! as constants, mirroring TGN's treatment of out-of-batch nodes; gradient
//! flows through the centre embeddings into the encoder.

use crate::sampler::batch::BatchSampler;
use crate::sampler::bfs::BfsConfig;
use crate::sampler::prob::TemporalBias;
use cpdg_dgnn::DgnnEncoder;
use cpdg_graph::{NodeId, Timestamp};
use cpdg_tensor::loss::triplet_margin;
use cpdg_tensor::{Matrix, ParamStore, Tape, Var};

/// Temporal-contrast hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TemporalContrastConfig {
    /// η-BFS width.
    pub eta: usize,
    /// η-BFS depth.
    pub k: usize,
    /// Softmax temperature τ (Eqs. 7–8).
    pub tau: f32,
    /// Triplet margin α₁ (Eq. 11).
    pub margin: f32,
    /// Subgraph readout pooling (Eqs. 9–10; the paper uses mean).
    pub readout: crate::contrast::ReadoutKind,
    /// Sampling bias of the positive subgraph (paper: chronological). The
    /// ablation bench sets both biases to `Uniform` to measure what the
    /// temporal-aware probabilities contribute.
    pub pos_bias: TemporalBias,
    /// Sampling bias of the negative subgraph (paper: reverse).
    pub neg_bias: TemporalBias,
}

impl Default for TemporalContrastConfig {
    fn default() -> Self {
        Self {
            eta: 5,
            k: 2,
            tau: 0.5,
            margin: 1.0,
            readout: Default::default(),
            pos_bias: TemporalBias::Chronological,
            neg_bias: TemporalBias::ReverseChronological,
        }
    }
}

/// Mean-pool readout (Eqs. 9–10) over a subgraph's node representations,
/// as a plain `1 × dim` row.
pub fn readout(encoder: &DgnnEncoder, store: &ParamStore, nodes: &[NodeId]) -> Matrix {
    readout_with(encoder, store, nodes, crate::contrast::ReadoutKind::Mean)
}

/// Readout with an explicit pooling choice.
pub fn readout_with(
    encoder: &DgnnEncoder,
    store: &ParamStore,
    nodes: &[NodeId],
    kind: crate::contrast::ReadoutKind,
) -> Matrix {
    kind.pool(&encoder.node_repr_values(store, nodes))
}

/// Computes the TC loss `L_η` (Eq. 11) for a batch of centre nodes.
///
/// * `sampler` — the batched sampler over the pre-training graph; both
///   subgraph fans run across its worker threads.
/// * `centers` — `(node, t)` pairs, row-aligned with `z` (`m × dim`
///   embeddings already on the tape).
/// * `batch_seed` — seeds centre `i`'s private RNG stream
///   ([`crate::sampler::query_rng`]), making the loss a pure function of
///   `(inputs, batch_seed)` at any thread count.
/// * Returns a `1×1` scalar loss variable.
pub fn temporal_contrast_loss(
    tape: &mut Tape,
    encoder: &DgnnEncoder,
    store: &ParamStore,
    sampler: &BatchSampler<'_>,
    centers: &[(NodeId, Timestamp)],
    z: Var,
    cfg: &TemporalContrastConfig,
    batch_seed: u64,
) -> Var {
    assert_eq!(
        tape.value(z).rows(),
        centers.len(),
        "temporal_contrast_loss: row mismatch"
    );
    let dim = encoder.dim();
    let chrono = BfsConfig::new(cfg.eta, cfg.k, cfg.tau, cfg.pos_bias);
    let reverse = BfsConfig::new(cfg.eta, cfg.k, cfg.tau, cfg.neg_bias);

    let pairs = sampler.sample_bfs_pairs(centers, &chrono, &reverse, batch_seed);
    let mut pos = Matrix::zeros(centers.len(), dim);
    let mut neg = Matrix::zeros(centers.len(), dim);
    for (row, (tp, tn)) in pairs.iter().enumerate() {
        pos.set_row(row, readout_with(encoder, store, tp, cfg.readout).row(0));
        neg.set_row(row, readout_with(encoder, store, tn, cfg.readout).row(0));
    }
    let pos = tape.constant(pos);
    let neg = tape.constant(neg);
    triplet_margin(tape, z, pos, neg, cfg.margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_dgnn::{DgnnConfig, EncoderKind};
    use cpdg_graph::{graph_from_triples, DynamicGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, DgnnEncoder, DynamicGraph) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 1.0);
        let graph = graph_from_triples(
            6,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (0, 3, 3.0),
                (1, 4, 1.5),
                (3, 5, 3.5),
            ],
        )
        .unwrap();
        let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", 6, cfg);
        enc.replay(&store, &graph, 2);
        (store, enc, graph)
    }

    #[test]
    fn loss_is_finite_scalar() {
        let (store, enc, graph) = setup();
        let sampler = BatchSampler::new(&graph);
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        let centers = [(0u32, 5.0f64), (1, 5.0)];
        let nodes: Vec<NodeId> = centers.iter().map(|c| c.0).collect();
        let times: Vec<Timestamp> = centers.iter().map(|c| c.1).collect();
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &nodes, &times);
        let loss = temporal_contrast_loss(
            &mut tape,
            &enc,
            &store,
            &sampler,
            &centers,
            z,
            &TemporalContrastConfig::default(),
            1,
        );
        assert_eq!(tape.value(loss).shape(), (1, 1));
        assert!(tape.value(loss).get(0, 0).is_finite());
        assert!(
            tape.value(loss).get(0, 0) >= 0.0,
            "hinge loss is non-negative"
        );
    }

    #[test]
    fn gradient_reaches_encoder_params() {
        let (store, enc, graph) = setup();
        let sampler = BatchSampler::new(&graph);
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        let centers = [(0u32, 5.0f64)];
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &[0], &[5.0]);
        // Large margin guarantees the hinge is active.
        let cfg = TemporalContrastConfig {
            margin: 100.0,
            ..Default::default()
        };
        let loss = temporal_contrast_loss(&mut tape, &enc, &store, &sampler, &centers, z, &cfg, 2);
        let grads = tape.backward(loss);
        let pg = tape.param_grads(&grads);
        assert!(!pg.is_empty(), "TC must train the encoder");
        let _ = ctx;
    }

    #[test]
    fn readout_is_mean_of_representations() {
        let (store, enc, _) = setup();
        let r_single = readout(&enc, &store, &[0]);
        let r0 = enc.node_repr_values(&store, &[0]);
        assert_eq!(r_single, r0.mean_rows());
        let r_pair = readout(&enc, &store, &[0, 1]);
        let both = enc.node_repr_values(&store, &[0, 1]);
        assert_eq!(r_pair, both.mean_rows());
    }

    #[test]
    fn isolated_center_contributes_margin_not_nan() {
        // A node with no history: TP = TN = {node}; d_pos == d_neg so the
        // per-row loss equals the margin, and gradients stay finite.
        let (store, enc, graph) = setup();
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        // Node 4 at t = 1.0 has no events strictly before.
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &[4], &[1.0]);
        let sampler = BatchSampler::new(&graph);
        let cfg = TemporalContrastConfig {
            margin: 0.7,
            ..Default::default()
        };
        let loss =
            temporal_contrast_loss(&mut tape, &enc, &store, &sampler, &[(4, 1.0)], z, &cfg, 3);
        let v = tape.value(loss).get(0, 0);
        assert!((v - 0.7).abs() < 1e-5, "expected margin, got {v}");
        let grads = tape.backward(loss);
        for (_, g) in tape.param_grads(&grads) {
            assert!(g.all_finite());
        }
    }
}
