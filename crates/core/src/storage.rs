//! Pluggable byte storage with crash-safe atomic writes.
//!
//! All model/checkpoint persistence goes through the [`Storage`] trait so
//! that fault-injection tests (and drills) can simulate mid-write crashes,
//! torn writes, and full disks without touching a real kernel. The
//! production implementation, [`FsStorage`], writes through a temp file +
//! `fsync` + atomic rename, so a crash at any instant leaves either the
//! previous file version or the new one — never a truncated hybrid.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The production filesystem storage (shared, stateless).
pub static FS_STORAGE: FsStorage = FsStorage;

/// Byte-level persistence primitives.
///
/// `write` and `rename` are the raw fault-injection points;
/// [`Storage::write_atomic`] composes them into the crash-safe publish
/// protocol and is what all save paths use.
pub trait Storage {
    /// Writes `bytes` to `path` non-atomically (creating or truncating).
    /// Implementations should flush to stable storage before returning.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes a file (errors if absent).
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Lists the files directly inside `dir`, sorted by file name.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Crash-safe publish: write to a temp sibling, then atomically rename
    /// over `path`. On any failure the temp file is removed (best effort)
    /// and the previous contents of `path` remain intact.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_sibling(path);
        match self
            .write(&tmp, bytes)
            .and_then(|()| self.rename(&tmp, path))
        {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = self.remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// The temp-file name used by [`Storage::write_atomic`] for `path`.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp"))
}

/// Real filesystem storage with durable writes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStorage;

impl Storage for FsStorage {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        // Flush file contents to stable storage before the caller renames
        // over the destination — the ordering that makes the publish atomic
        // under power loss.
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        out.sort();
        Ok(out)
    }
}

pub mod fault {
    //! Fault-injecting storage implementations for crash-safety tests.

    use super::{FsStorage, Storage};
    use std::cell::Cell;
    use std::io::{self, Error, ErrorKind};
    use std::path::{Path, PathBuf};

    /// Wraps [`FsStorage`] and simulates the process dying partway through
    /// a raw `write`: once armed, the next write persists only the first
    /// `n` bytes and then fails. Under the atomic publish protocol this
    /// tears the *temp* file, so the destination must survive untouched.
    #[derive(Debug, Default)]
    pub struct CrashingStorage {
        inner: FsStorage,
        budget: Cell<Option<usize>>,
        crashes: Cell<usize>,
    }

    impl CrashingStorage {
        /// A storage that behaves normally until armed.
        pub fn new() -> Self {
            Self::default()
        }

        /// Arms the next `write` to persist only `bytes` bytes, then fail.
        pub fn crash_after(&self, bytes: usize) {
            self.budget.set(Some(bytes));
        }

        /// How many simulated crashes have fired.
        pub fn crashes(&self) -> usize {
            self.crashes.get()
        }
    }

    impl Storage for CrashingStorage {
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            match self.budget.take() {
                Some(n) => {
                    self.crashes.set(self.crashes.get() + 1);
                    let cut = n.min(bytes.len());
                    // Persist the torn prefix exactly as a dying process
                    // would, then report the crash.
                    self.inner.write(path, &bytes[..cut])?;
                    Err(simulated_crash())
                }
                None => self.inner.write(path, bytes),
            }
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.inner.rename(from, to)
        }

        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.inner.read(path)
        }

        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            self.inner.create_dir_all(path)
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            self.inner.remove_file(path)
        }

        fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            self.inner.list(dir)
        }
    }

    /// Simulates the *legacy* non-atomic writer dying mid-write: bytes are
    /// truncated and land directly on the destination path, bypassing the
    /// temp-file protocol. Used to prove the loader rejects such residue
    /// with a typed error instead of parsing garbage.
    #[derive(Debug, Default)]
    pub struct TornWriteStorage {
        inner: FsStorage,
        budget: Cell<Option<usize>>,
    }

    impl TornWriteStorage {
        /// A storage that behaves normally until armed.
        pub fn new() -> Self {
            Self::default()
        }

        /// Arms the next atomic write to instead tear the destination file
        /// at `bytes` bytes.
        pub fn tear_after(&self, bytes: usize) {
            self.budget.set(Some(bytes));
        }
    }

    impl Storage for TornWriteStorage {
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            self.inner.write(path, bytes)
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.inner.rename(from, to)
        }

        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.inner.read(path)
        }

        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            self.inner.create_dir_all(path)
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            self.inner.remove_file(path)
        }

        fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            self.inner.list(dir)
        }

        fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            match self.budget.take() {
                Some(n) => {
                    let cut = n.min(bytes.len());
                    self.inner.write(path, &bytes[..cut])?;
                    Err(simulated_crash())
                }
                None => {
                    let tmp = super::tmp_sibling(path);
                    self.inner.write(&tmp, bytes)?;
                    self.inner.rename(&tmp, path)
                }
            }
        }
    }

    fn simulated_crash() -> io::Error {
        Error::new(ErrorKind::Interrupted, "simulated mid-write crash")
    }
}

#[cfg(test)]
mod tests {
    use super::fault::{CrashingStorage, TornWriteStorage};
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpdg_storage_{name}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = test_dir("atomic");
        let path = dir.join("a.json");
        FS_STORAGE.write_atomic(&path, b"hello").unwrap();
        assert_eq!(FS_STORAGE.read(&path).unwrap(), b"hello");
        // Overwrite is also atomic.
        FS_STORAGE.write_atomic(&path, b"world").unwrap();
        assert_eq!(FS_STORAGE.read(&path).unwrap(), b"world");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_during_atomic_write_preserves_previous_version() {
        let dir = test_dir("crash");
        let path = dir.join("m.json");
        let storage = CrashingStorage::new();
        storage.write_atomic(&path, b"version-one").unwrap();
        storage.crash_after(3);
        let err = storage.write_atomic(&path, b"version-two").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(storage.crashes(), 1);
        // Destination untouched; no temp residue left behind.
        assert_eq!(storage.read(&path).unwrap(), b"version-one");
        assert!(!tmp_sibling(&path).exists(), "temp file must be cleaned up");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_leaves_truncated_destination() {
        let dir = test_dir("torn");
        let path = dir.join("m.json");
        let storage = TornWriteStorage::new();
        storage.write_atomic(&path, b"full contents").unwrap();
        storage.tear_after(4);
        storage.write_atomic(&path, b"replacement!!").unwrap_err();
        assert_eq!(storage.read(&path).unwrap(), b"repl");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_is_sorted_and_files_only() {
        let dir = test_dir("list");
        FS_STORAGE.write(&dir.join("b.txt"), b"b").unwrap();
        FS_STORAGE.write(&dir.join("a.txt"), b"a").unwrap();
        FS_STORAGE.create_dir_all(&dir.join("sub")).unwrap();
        let names: Vec<String> = FS_STORAGE
            .list(&dir)
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.txt", "b.txt"]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_sibling_stays_in_same_directory() {
        let t = tmp_sibling(Path::new("/x/y/model.json"));
        assert_eq!(t, Path::new("/x/y/.model.json.tmp"));
    }
}
