//! Streaming continual pre-training: overlapping time-window slicing, a
//! windowed cross-window contrastive trainer, candidate-epoch emission,
//! and the validation gate that decides whether a candidate may be
//! promoted into serving.
//!
//! The design follows CLDG's observation that timespan-sliced views of a
//! dynamic graph are strong contrastive pairs: the live event stream (the
//! serving engine's WAL, replayed into its in-memory graph — the two are
//! bit-identical by the recovery oracle) is sliced into overlapping time
//! windows, and the embeddings of a node at the ends of two *adjacent*
//! windows are treated as a positive pair while other nodes from the later
//! window are negatives — the same triplet-margin InfoNCE shape
//! [`crate::contrast`] uses for the paper's offline objective (Eqs.
//! 11/14).
//!
//! Robustness contract (the reason this module exists at all):
//!
//! * every training step runs under the PR 1 [`TrainGuard`] — NaN/Inf
//!   losses and exploding gradients are skipped or surface as a typed
//!   [`CpdgError::Diverged`], never silently folded into parameters;
//! * candidate epochs are ordinary [`ModelFile`]s published through the
//!   CRC-sealed atomic [`ModelFile::save_with`] path, so a crash mid-emit
//!   leaves either no candidate or a whole one — never a torn file;
//! * candidates must pass [`validate_candidate`] (finite parameters,
//!   bounded held-out loss vs. the serving epoch) before the serving side
//!   may promote them;
//! * the `trainer.step` and `trainer.emit` fault points plug the whole
//!   loop into the deterministic chaos harness ([`crate::chaos`]).

use crate::chaos::{FaultHook, FaultPoint};
use crate::error::{CpdgError, CpdgResult};
use crate::model_io::ModelFile;
use crate::storage::Storage;
use cpdg_dgnn::trainer::eval_link_prediction;
use cpdg_dgnn::{
    DgnnConfig, DgnnEncoder, GuardConfig, LinkPredictor, StepVerdict, TrainConfig, TrainGuard,
};
use cpdg_graph::{DynamicGraph, NodeId, Timestamp};
use cpdg_tensor::loss::triplet_margin;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::path::Path;

/// Hard cap on the number of windows one slicing call may produce — a
/// mis-configured stride over a long stream fails loudly instead of
/// allocating without bound.
pub const MAX_WINDOWS: usize = 1_000_000;

/// Overlapping time-window geometry. `span` is each window's length in
/// stream time units; `stride` is the distance between consecutive window
/// starts. `stride <= span` makes adjacent windows overlap (the CLDG
/// setting); `stride == span` tiles the stream exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Window length in stream time units (must be finite and positive).
    pub span: f64,
    /// Distance between consecutive window starts (finite, positive, and
    /// `<= span` so no event can fall between windows).
    pub stride: f64,
}

impl WindowConfig {
    /// A validated window geometry.
    pub fn new(span: f64, stride: f64) -> CpdgResult<Self> {
        let cfg = Self { span, stride };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the geometry invariants: both finite and positive, and
    /// `stride <= span` (a gap between windows would let events escape
    /// every training view).
    pub fn validate(&self) -> CpdgResult<()> {
        if !self.span.is_finite() || self.span <= 0.0 {
            return Err(CpdgError::Invalid(format!(
                "window span must be finite and positive, got {}",
                self.span
            )));
        }
        if !self.stride.is_finite() || self.stride <= 0.0 {
            return Err(CpdgError::Invalid(format!(
                "window stride must be finite and positive, got {}",
                self.stride
            )));
        }
        if self.stride > self.span {
            return Err(CpdgError::Invalid(format!(
                "window stride {} exceeds span {}: windows would leave gaps",
                self.stride, self.span
            )));
        }
        Ok(())
    }
}

/// One time window over a chronologically sorted event stream. Because the
/// stream is sorted, a window's events form one contiguous index range
/// `lo..hi` (half-open) into the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventWindow {
    /// Window ordinal (0-based; window `k` starts at `t0 + k * stride`).
    pub index: usize,
    /// Inclusive start time.
    pub start: f64,
    /// Exclusive end time (`start + span`).
    pub end: f64,
    /// First stream index with `t >= start`.
    pub lo: usize,
    /// One past the last stream index with `t < end`.
    pub hi: usize,
}

impl EventWindow {
    /// Number of events inside the window.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the window holds no events.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Whether time `t` falls inside the half-open interval
    /// `[start, end)` — the membership rule `lo..hi` materialises.
    pub fn contains_time(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }
}

/// Slices a chronologically sorted timestamp stream into overlapping
/// windows: window `k` covers `[t0 + k*stride, t0 + k*stride + span)`
/// where `t0` is the first timestamp. Windows are generated while their
/// start does not exceed the last timestamp — plus, as a floating-point
/// safety net, until the final window actually covers the last event — so
/// **every event lands in at least one window** and (with
/// `stride == span`) in exactly one. Duplicate timestamps land in the
/// same windows; an empty stream yields no windows.
///
/// Fails with [`CpdgError::Invalid`] on invalid geometry, an unsorted
/// stream, a non-finite timestamp, or a geometry that would produce more
/// than [`MAX_WINDOWS`] windows.
pub fn slice_windows(times: &[Timestamp], cfg: &WindowConfig) -> CpdgResult<Vec<EventWindow>> {
    cfg.validate()?;
    if times.is_empty() {
        return Ok(Vec::new());
    }
    for (i, &t) in times.iter().enumerate() {
        if !t.is_finite() {
            return Err(CpdgError::Invalid(format!(
                "window slicing requires finite timestamps (index {i} is {t})"
            )));
        }
        if i > 0 && t < times[i - 1] {
            return Err(CpdgError::Invalid(format!(
                "window slicing requires a chronologically sorted stream \
                 ({} then {t} at index {i})",
                times[i - 1]
            )));
        }
    }
    let t0 = times[0];
    let t_last = *times.last().expect("non-empty");
    let n = times.len();
    let mut windows: Vec<EventWindow> = Vec::new();
    let mut k = 0usize;
    loop {
        let start = t0 + k as f64 * cfg.stride;
        let within = start <= t_last;
        // The tail guard: if rounding left the last event uncovered
        // (`end <= t_last` for every in-range window), keep extending —
        // `stride <= span` guarantees the very next window reaches it.
        let tail_uncovered = windows.last().map(|w| w.hi < n).unwrap_or(true);
        if !within && !tail_uncovered {
            break;
        }
        if k >= MAX_WINDOWS {
            return Err(CpdgError::Invalid(format!(
                "window geometry (span {}, stride {}) would produce more \
                 than {MAX_WINDOWS} windows over [{t0}, {t_last}]",
                cfg.span, cfg.stride
            )));
        }
        let end = start + cfg.span;
        let lo = times.partition_point(|&t| t < start);
        let hi = times.partition_point(|&t| t < end);
        windows.push(EventWindow {
            index: k,
            start,
            end,
            lo,
            hi,
        });
        k += 1;
    }
    Ok(windows)
}

/// Validation-gate thresholds for candidate epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// A candidate passes when its held-out loss is at most
    /// `max_loss_ratio * serving_loss + epsilon`.
    pub max_loss_ratio: f64,
    /// Absolute slack added to the ratio bound (guards the near-zero-loss
    /// regime where a pure ratio is hypersensitive).
    pub epsilon: f64,
    /// Below this many held-out scored events the loss comparison is
    /// statistically meaningless: the gate degrades to the finite-params
    /// check only (and says so in its report).
    pub min_holdout: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            max_loss_ratio: 1.5,
            epsilon: 0.05,
            min_holdout: 8,
        }
    }
}

/// What the validation gate decided about one candidate epoch, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Whether every candidate parameter value is finite.
    pub finite: bool,
    /// Candidate held-out loss (NaN when not evaluated).
    pub candidate_loss: f64,
    /// Serving-epoch held-out loss (NaN when not evaluated).
    pub serving_loss: f64,
    /// Number of held-out events scored.
    pub scored: usize,
    /// The verdict: `true` means the candidate may be promoted.
    pub pass: bool,
    /// Human-readable justification, logged and surfaced in errors.
    pub reason: String,
}

/// Hyper-parameters of the continual trainer.
#[derive(Debug, Clone)]
pub struct ContinualConfig {
    /// Window geometry for slicing the stream.
    pub window: WindowConfig,
    /// Cap on the number of shared nodes contrasted per window pair.
    pub batch_cap: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Triplet margin for the cross-window contrastive loss.
    pub margin: f32,
    /// Seed for everything stochastic (parameter init tie-break order,
    /// held-out negative sampling).
    pub seed: u64,
    /// Divergence watchdog policy.
    pub guard: GuardConfig,
    /// Streams shorter than this are not trained on at all.
    pub min_events: usize,
    /// Promotion gate thresholds.
    pub gate: GateConfig,
}

impl Default for ContinualConfig {
    fn default() -> Self {
        Self {
            window: WindowConfig {
                span: 16.0,
                stride: 8.0,
            },
            batch_cap: 64,
            lr: 1e-3,
            grad_clip: 5.0,
            margin: 1.0,
            seed: 0,
            guard: GuardConfig::default(),
            min_events: 32,
            gate: GateConfig::default(),
        }
    }
}

/// Outcome of one training cycle over a stream snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleReport {
    /// Windows the stream was sliced into.
    pub windows: usize,
    /// Window-pair contrastive steps whose update was applied.
    pub steps: usize,
    /// Steps the guard skipped (poisoned loss/gradient) or that had too
    /// few shared nodes to contrast.
    pub skipped: usize,
    /// Mean loss over applied steps (NaN when none were applied).
    pub mean_loss: f32,
    /// First stream index never committed during training — the start of
    /// the held-out slice [`validate_candidate`] scores.
    pub holdout_from: usize,
}

/// The windowed cross-window contrastive trainer. Owns its own parameter
/// store (initialised from a [`ModelFile`], typically the serving epoch),
/// so a diverging or crashing trainer can never corrupt serving state —
/// its only output is a sealed candidate file.
pub struct ContinualTrainer {
    cfg: ContinualConfig,
    encoder_cfg: DgnnConfig,
    num_nodes: usize,
    store: ParamStore,
    encoder: DgnnEncoder,
    head: LinkPredictor,
    opt: Adam,
    guard: TrainGuard,
    checkpoints: Vec<cpdg_dgnn::MemorySnapshot>,
    step: usize,
    windows_trained: u64,
}

impl ContinualTrainer {
    /// Builds a trainer whose parameters start from `model` (the namespaces
    /// match the serving engine's, so an emitted candidate hot-loads
    /// cleanly).
    pub fn from_model(model: &ModelFile, cfg: ContinualConfig) -> CpdgResult<Self> {
        cfg.window.validate()?;
        if cfg.batch_cap < 2 {
            return Err(CpdgError::Invalid(format!(
                "continual batch cap must be at least 2 (one positive and \
                 one negative), got {}",
                cfg.batch_cap
            )));
        }
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut encoder = DgnnEncoder::new(
            &mut store,
            &mut rng,
            "enc",
            model.num_nodes,
            model.encoder_config.clone(),
        );
        let head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", encoder.dim());
        let loaded = store.load_matching(&model.params);
        if loaded == 0 && model.params.len() > 0 {
            cpdg_obs::warn!(
                "continual.trainer",
                "no parameters matched the base model; training from init";
                model_params = model.params.len(),
            );
        }
        encoder.reset_state();
        Ok(Self {
            opt: Adam::new(cfg.lr),
            guard: TrainGuard::new(cfg.guard.clone()),
            encoder_cfg: model.encoder_config.clone(),
            num_nodes: model.num_nodes,
            checkpoints: model.checkpoints.clone(),
            cfg,
            store,
            encoder,
            head,
            step: 0,
            windows_trained: 0,
        })
    }

    /// Total window-pair steps applied over the trainer's lifetime.
    pub fn windows_trained(&self) -> u64 {
        self.windows_trained
    }

    /// One full training cycle over a stream snapshot: slice into windows,
    /// replay chronologically, and for each adjacent window pair run one
    /// guarded contrastive step treating cross-window embeddings of the
    /// same node as positives. The final window is **never trained on**
    /// (events past `holdout_from` stay out of every commit) so the gate
    /// has a held-out slice to score.
    ///
    /// Failure modes are all typed: a fired `trainer.step` fault aborts
    /// the cycle with [`CpdgError::Fault`]; guard divergence surfaces as
    /// [`CpdgError::Diverged`]. Either way the serving engine is
    /// untouched — this store is private to the trainer.
    pub fn train_cycle(
        &mut self,
        graph: &DynamicGraph,
        hook: &FaultHook,
    ) -> CpdgResult<CycleReport> {
        let events = graph.events();
        let times: Vec<Timestamp> = events.iter().map(|e| e.t).collect();
        let windows = slice_windows(&times, &self.cfg.window)?;
        let idle = CycleReport {
            windows: windows.len(),
            steps: 0,
            skipped: 0,
            mean_loss: f32::NAN,
            holdout_from: events.len(),
        };
        if events.len() < self.cfg.min_events || windows.len() < 3 {
            return Ok(idle);
        }
        // Train on pairs among windows[..n-1]; everything at or past the
        // penultimate window's end is the held-out slice.
        let last_trained = windows.len() - 2;
        let holdout_from = windows[last_trained].hi;
        self.encoder.reset_state();
        let mut committed = 0usize;
        let mut steps = 0usize;
        let mut skipped = 0usize;
        let mut total = 0.0f64;
        for k in 1..=last_trained {
            hook.check(FaultPoint::TrainerStep)
                .map_err(|f| CpdgError::Fault {
                    point: FaultPoint::TrainerStep.name().to_string(),
                    reason: f.to_string(),
                })?;
            let (wa, wb) = (&windows[k - 1], &windows[k]);
            let chunk = &events[committed..wb.hi.max(committed)];
            let shared = shared_nodes(events, wa, wb, self.cfg.batch_cap);
            if shared.len() < 2 {
                // Nothing to contrast: still advance memory through the
                // chunk so later windows see a current state.
                let mut tape = Tape::new();
                let ctx = self.encoder.apply_pending(&mut tape, &self.store, graph);
                self.encoder.commit(&tape, ctx, chunk);
                committed = wb.hi.max(committed);
                skipped += 1;
                continue;
            }
            let mut tape = Tape::new();
            let ctx = self.encoder.apply_pending(&mut tape, &self.store, graph);
            let times_a: Vec<Timestamp> = shared.iter().map(|_| wa.end).collect();
            let times_b: Vec<Timestamp> = shared.iter().map(|_| wb.end).collect();
            let z_a =
                self.encoder
                    .embed_many(&mut tape, &self.store, &ctx, graph, &shared, &times_a);
            let z_b =
                self.encoder
                    .embed_many(&mut tape, &self.store, &ctx, graph, &shared, &times_b);
            // Negatives: the later-window embeddings rotated by one row,
            // so each anchor is pushed away from a *different* node's
            // cross-window view.
            let rot: Vec<usize> = (0..shared.len()).map(|i| (i + 1) % shared.len()).collect();
            let z_neg = tape.gather_rows(z_b, &rot);
            let loss = triplet_margin(&mut tape, z_a, z_b, z_neg, self.cfg.margin);
            let loss_val = tape.value(loss).get(0, 0);
            let grads = tape.backward(loss);
            let mut pg = tape.param_grads(&grads);
            let pre_norm = clip_global_norm(&mut pg, self.cfg.grad_clip);
            match self.guard.inspect(self.step, loss_val, pre_norm) {
                Ok(StepVerdict::Proceed) => {
                    total += f64::from(loss_val);
                    steps += 1;
                    let base_lr = self.opt.lr;
                    self.opt.lr = base_lr * self.guard.lr_scale();
                    self.opt.step(&mut self.store, &pg);
                    self.opt.lr = base_lr;
                    self.encoder.commit(&tape, ctx, chunk);
                    self.windows_trained += 1;
                }
                Ok(StepVerdict::Skip) => {
                    self.encoder.skip_commit(chunk);
                    skipped += 1;
                }
                Err(report) => return Err(CpdgError::Diverged(report)),
            }
            committed = wb.hi.max(committed);
            self.step += 1;
        }
        Ok(CycleReport {
            windows: windows.len(),
            steps,
            skipped,
            mean_loss: if steps > 0 {
                (total / steps as f64) as f32
            } else {
                f32::NAN
            },
            holdout_from,
        })
    }

    /// Publishes the trainer's current parameters as a candidate epoch at
    /// `path` — an ordinary [`ModelFile`] written through the CRC-sealed
    /// atomic save, so the file either exists whole or not at all. A
    /// fired `trainer.emit` fault aborts before any bytes are written.
    pub fn emit_candidate(
        &self,
        storage: &dyn Storage,
        path: &Path,
        hook: &FaultHook,
    ) -> CpdgResult<()> {
        hook.check(FaultPoint::TrainerEmit)
            .map_err(|f| CpdgError::Fault {
                point: FaultPoint::TrainerEmit.name().to_string(),
                reason: f.to_string(),
            })?;
        let model = ModelFile::new(
            self.encoder_cfg.clone(),
            self.num_nodes,
            self.store.clone(),
            self.checkpoints.clone(),
        );
        model.save_with(storage, path)
    }
}

/// Shared endpoints of two windows, sorted and capped deterministically.
fn shared_nodes(
    events: &[cpdg_graph::Interaction],
    a: &EventWindow,
    b: &EventWindow,
    cap: usize,
) -> Vec<NodeId> {
    let in_a: HashSet<NodeId> = events[a.lo..a.hi]
        .iter()
        .flat_map(|e| e.endpoints())
        .collect();
    let mut shared: Vec<NodeId> = events[b.lo..b.hi]
        .iter()
        .flat_map(|e| e.endpoints())
        .filter(|n| in_a.contains(n))
        .collect();
    shared.sort_unstable();
    shared.dedup();
    shared.truncate(cap);
    shared
}

/// Whether every parameter value in `model` is finite.
pub fn params_all_finite(model: &ModelFile) -> bool {
    model
        .params
        .ids()
        .all(|id| model.params.value(id).data().iter().all(|v| v.is_finite()))
}

/// Mean link-prediction BCE of `model` over the held-out slice of
/// `graph` (events with index `>= score_from`), replaying the stream
/// chronologically from a fresh memory. Returns `(loss, scored)`;
/// `loss` is NaN when nothing was scored. Deterministic given `seed`.
pub fn holdout_loss(
    model: &ModelFile,
    graph: &DynamicGraph,
    score_from: usize,
    seed: u64,
) -> CpdgResult<(f64, usize)> {
    if graph.num_nodes() > model.num_nodes {
        return Err(CpdgError::NodeCountMismatch {
            data_nodes: graph.num_nodes(),
            model_nodes: model.num_nodes,
        });
    }
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut encoder = DgnnEncoder::new(
        &mut store,
        &mut rng,
        "enc",
        model.num_nodes,
        model.encoder_config.clone(),
    );
    let head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", encoder.dim());
    store.load_matching(&model.params);
    encoder.reset_state();
    let cfg = TrainConfig {
        batch_size: 128,
        epochs: 1,
        seed,
        ..TrainConfig::default()
    };
    let scores = eval_link_prediction(&mut encoder, &head, &store, graph, score_from, &cfg, None);
    let scored = scores.pos.len() + scores.neg.len();
    if scored == 0 {
        return Ok((f64::NAN, 0));
    }
    // Stable softplus: ln(1 + e^x) = max(x, 0) + ln(1 + e^{-|x|}).
    let softplus = |x: f64| x.max(0.0) + (-x.abs()).exp().ln_1p();
    let pos: f64 = scores.pos.iter().map(|&l| softplus(-f64::from(l))).sum();
    let neg: f64 = scores.neg.iter().map(|&l| softplus(f64::from(l))).sum();
    Ok(((pos + neg) / scored as f64, scored))
}

/// The promotion gate: a candidate epoch may replace the serving epoch
/// only if (a) every parameter is finite and (b) its held-out loss is
/// bounded by the serving epoch's under `gate`'s ratio + slack. With
/// fewer than `gate.min_holdout` scored events the loss leg is skipped
/// (and the report says so). Never promotes a non-finite candidate.
pub fn validate_candidate(
    candidate: &ModelFile,
    serving: &ModelFile,
    graph: &DynamicGraph,
    score_from: usize,
    gate: &GateConfig,
    seed: u64,
) -> CpdgResult<GateReport> {
    if !params_all_finite(candidate) {
        return Ok(GateReport {
            finite: false,
            candidate_loss: f64::NAN,
            serving_loss: f64::NAN,
            scored: 0,
            pass: false,
            reason: "candidate has non-finite parameters".to_string(),
        });
    }
    let (cand_loss, scored) = holdout_loss(candidate, graph, score_from, seed)?;
    if scored < gate.min_holdout {
        return Ok(GateReport {
            finite: true,
            candidate_loss: cand_loss,
            serving_loss: f64::NAN,
            scored,
            pass: true,
            reason: format!(
                "holdout too small ({scored} < {}): finite-params gate only",
                gate.min_holdout
            ),
        });
    }
    let (serv_loss, _) = holdout_loss(serving, graph, score_from, seed)?;
    if !cand_loss.is_finite() {
        return Ok(GateReport {
            finite: true,
            candidate_loss: cand_loss,
            serving_loss: serv_loss,
            scored,
            pass: false,
            reason: "candidate held-out loss is non-finite".to_string(),
        });
    }
    let bound = serv_loss * gate.max_loss_ratio + gate.epsilon;
    let pass = cand_loss <= bound;
    Ok(GateReport {
        finite: true,
        candidate_loss: cand_loss,
        serving_loss: serv_loss,
        scored,
        pass,
        reason: if pass {
            format!("candidate loss {cand_loss:.6} within bound {bound:.6}")
        } else {
            format!(
                "candidate loss {cand_loss:.6} exceeds bound {bound:.6} (serving {serv_loss:.6})"
            )
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultPlan, Trigger};
    use crate::storage::FS_STORAGE;
    use cpdg_dgnn::EncoderKind;
    use std::path::PathBuf;

    const NODES: usize = 12;
    const DIM: usize = 8;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cpdg-continual-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_model(seed: u64) -> ModelFile {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, DIM, 100.0);
        let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", NODES, cfg.clone());
        let _head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", enc.dim());
        ModelFile::new(cfg, NODES, store, Vec::new())
    }

    /// A stream with enough cross-window node recurrence to contrast:
    /// node pairs cycle over a fixed rotation, one event per time unit.
    fn stream_graph(n_events: usize) -> DynamicGraph {
        let mut g = DynamicGraph::empty(NODES);
        for i in 0..n_events {
            let src = (i % (NODES / 2)) as NodeId;
            let dst = (NODES / 2 + (i % (NODES / 2))) as NodeId;
            g.push_event(src, dst, i as f64, 0).unwrap();
        }
        g
    }

    fn trainer_cfg() -> ContinualConfig {
        ContinualConfig {
            window: WindowConfig {
                span: 20.0,
                stride: 10.0,
            },
            min_events: 16,
            lr: 1e-3,
            seed: 7,
            ..ContinualConfig::default()
        }
    }

    #[test]
    fn window_geometry_validates() {
        assert!(WindowConfig::new(10.0, 5.0).is_ok());
        assert!(
            WindowConfig::new(10.0, 10.0).is_ok(),
            "exact tiling is legal"
        );
        assert!(WindowConfig::new(0.0, 1.0).is_err(), "zero span");
        assert!(WindowConfig::new(10.0, 0.0).is_err(), "zero stride");
        assert!(WindowConfig::new(10.0, 11.0).is_err(), "gapped windows");
        assert!(WindowConfig::new(f64::NAN, 1.0).is_err());
        assert!(WindowConfig::new(10.0, f64::INFINITY).is_err());
    }

    #[test]
    fn slicing_rejects_bad_streams() {
        let cfg = WindowConfig {
            span: 4.0,
            stride: 2.0,
        };
        assert!(slice_windows(&[1.0, 0.5], &cfg).is_err(), "unsorted");
        assert!(slice_windows(&[0.0, f64::NAN], &cfg).is_err(), "NaN time");
        assert!(slice_windows(&[], &cfg).unwrap().is_empty(), "empty stream");
    }

    #[test]
    fn slicing_covers_every_event_at_least_once() {
        let times: Vec<f64> = vec![0.0, 0.0, 1.5, 2.0, 2.0, 2.0, 5.0, 7.5, 7.5, 10.0];
        let cfg = WindowConfig {
            span: 4.0,
            stride: 2.0,
        };
        let windows = slice_windows(&times, &cfg).unwrap();
        assert!(!windows.is_empty());
        for (i, &t) in times.iter().enumerate() {
            let covering: Vec<&EventWindow> =
                windows.iter().filter(|w| w.lo <= i && i < w.hi).collect();
            assert!(!covering.is_empty(), "event {i} at t={t} uncovered");
            for w in &covering {
                assert!(w.contains_time(t), "index range disagrees with time test");
            }
        }
        // Index ranges and the time-membership rule agree exactly.
        for w in &windows {
            for (i, &t) in times.iter().enumerate() {
                assert_eq!(
                    w.lo <= i && i < w.hi,
                    w.contains_time(t),
                    "window {}",
                    w.index
                );
            }
        }
    }

    #[test]
    fn exact_tiling_covers_every_event_exactly_once() {
        let times: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let cfg = WindowConfig {
            span: 5.0,
            stride: 5.0,
        };
        let windows = slice_windows(&times, &cfg).unwrap();
        for i in 0..times.len() {
            let count = windows.iter().filter(|w| w.lo <= i && i < w.hi).count();
            assert_eq!(
                count, 1,
                "event {i} covered {count} times under exact tiling"
            );
        }
    }

    #[test]
    fn single_timestamp_stream_gets_one_covering_window() {
        let cfg = WindowConfig {
            span: 3.0,
            stride: 1.0,
        };
        let windows = slice_windows(&[42.0, 42.0, 42.0], &cfg).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!((windows[0].lo, windows[0].hi), (0, 3));
    }

    #[test]
    fn cycle_trains_and_candidate_passes_gate() {
        let model = base_model(3);
        let graph = stream_graph(120);
        let mut trainer = ContinualTrainer::from_model(&model, trainer_cfg()).unwrap();
        let hook = FaultHook::none();
        let report = trainer.train_cycle(&graph, &hook).unwrap();
        assert!(report.steps > 0, "no contrastive steps ran: {report:?}");
        assert!(report.mean_loss.is_finite());
        assert!(
            report.holdout_from < graph.events().len(),
            "a held-out slice exists"
        );
        assert_eq!(trainer.windows_trained(), report.steps as u64);

        let dir = test_dir("gate");
        let path = dir.join("candidate-000001.json");
        trainer.emit_candidate(&FS_STORAGE, &path, &hook).unwrap();
        let candidate = ModelFile::load(&path).unwrap();
        assert!(params_all_finite(&candidate));
        let gate = GateConfig::default();
        let verdict =
            validate_candidate(&candidate, &model, &graph, report.holdout_from, &gate, 7).unwrap();
        assert!(verdict.finite);
        assert!(
            verdict.pass,
            "one gentle cycle must stay inside the gate bound: {verdict:?}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn short_streams_are_idle_cycles() {
        let model = base_model(1);
        let graph = stream_graph(8);
        let mut trainer = ContinualTrainer::from_model(&model, trainer_cfg()).unwrap();
        let report = trainer.train_cycle(&graph, &FaultHook::none()).unwrap();
        assert_eq!(report.steps, 0);
        assert_eq!(trainer.windows_trained(), 0);
    }

    #[test]
    fn step_fault_aborts_cycle_with_typed_error() {
        let model = base_model(2);
        let graph = stream_graph(120);
        let mut trainer = ContinualTrainer::from_model(&model, trainer_cfg()).unwrap();
        let plan = FaultPlan::new(0).with(
            FaultPoint::TrainerStep,
            FaultKind::Permanent,
            Trigger::Nth { n: 1 },
        );
        let hook = FaultHook::install(&plan);
        let err = trainer.train_cycle(&graph, &hook).unwrap_err();
        match err {
            CpdgError::Fault { point, .. } => assert_eq!(point, "trainer.step"),
            other => panic!("expected trainer.step fault, got {other}"),
        }
        assert_eq!(
            trainer.windows_trained(),
            0,
            "fault fired before any update"
        );
    }

    #[test]
    fn emit_fault_leaves_no_candidate_file() {
        let model = base_model(4);
        let trainer = ContinualTrainer::from_model(&model, trainer_cfg()).unwrap();
        let plan = FaultPlan::new(0).with(
            FaultPoint::TrainerEmit,
            FaultKind::Permanent,
            Trigger::Nth { n: 1 },
        );
        let hook = FaultHook::install(&plan);
        let dir = test_dir("emit-fault");
        let path = dir.join("candidate.json");
        let err = trainer
            .emit_candidate(&FS_STORAGE, &path, &hook)
            .unwrap_err();
        match err {
            CpdgError::Fault { point, .. } => assert_eq!(point, "trainer.emit"),
            other => panic!("expected trainer.emit fault, got {other}"),
        }
        assert!(!path.exists(), "no bytes may hit disk on an emit fault");
        // Retry without the fault succeeds and round-trips.
        trainer
            .emit_candidate(&FS_STORAGE, &path, &FaultHook::none())
            .unwrap();
        assert!(ModelFile::load(&path).is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn divergence_surfaces_as_typed_error() {
        let model = base_model(5);
        let graph = stream_graph(120);
        let cfg = ContinualConfig {
            guard: GuardConfig {
                max_grad_norm: 0.0,
                max_retries: 1,
                ..GuardConfig::default()
            },
            ..trainer_cfg()
        };
        let mut trainer = ContinualTrainer::from_model(&model, cfg).unwrap();
        let err = trainer.train_cycle(&graph, &FaultHook::none()).unwrap_err();
        assert!(
            matches!(err, CpdgError::Diverged(_)),
            "zero grad budget must diverge, got {err}"
        );
    }

    #[test]
    fn gate_rejects_non_finite_candidate() {
        let mut candidate = base_model(6);
        let serving = base_model(6);
        let graph = stream_graph(60);
        let id = candidate.params.ids().next().unwrap();
        candidate.params.value_mut(id).data_mut()[0] = f32::NAN;
        let verdict =
            validate_candidate(&candidate, &serving, &graph, 40, &GateConfig::default(), 0)
                .unwrap();
        assert!(!verdict.finite);
        assert!(!verdict.pass);
    }

    #[test]
    fn gate_degrades_to_finite_check_on_tiny_holdout() {
        let candidate = base_model(8);
        let serving = base_model(9);
        let graph = stream_graph(60);
        // Hold out nothing: score_from beyond the stream.
        let verdict = validate_candidate(
            &candidate,
            &serving,
            &graph,
            graph.events().len(),
            &GateConfig::default(),
            0,
        )
        .unwrap();
        assert!(verdict.pass, "finite-only gate passes: {verdict:?}");
        assert_eq!(verdict.scored, 0);
        assert!(verdict.reason.contains("holdout too small"));
    }
}
