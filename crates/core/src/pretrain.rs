//! The CPDG pre-trainer (paper §IV-B): chronological batch loop combining
//! the temporal-contrast, structural-contrast, and temporal-link-prediction
//! pretext losses under Eq. 17, with uniform memory checkpointing for the
//! EIE fine-tuning module (Eq. 18).
//!
//! Two entry points share one loop:
//!
//! - [`pretrain`] — the legacy infallible API: no persistence, poisoned
//!   steps are skipped forever (never a divergence error).
//! - [`pretrain_resumable`] — the fault-tolerant runtime: a
//!   [`TrainGuard`] watches every step for NaN/Inf losses and exploding
//!   gradients (skipping poisoned updates with learning-rate backoff and
//!   declaring [`CpdgError::Diverged`] once the retry budget is spent), and
//!   an optional [`CheckpointConfig`] snapshots the full training state
//!   every N steps through crash-safe atomic writes so an interrupted run
//!   continues from its newest valid checkpoint.
//!
//! Resume determinism: instead of one RNG threaded through the whole run,
//! each batch derives its RNG from `(cfg.seed, global step)`, so a resumed
//! run samples exactly the negatives/contrast paths the uninterrupted run
//! would have. Contrast subgraphs are drawn by a [`BatchSampler`] (built
//! once per run over a flattened temporal adjacency index) that fans each
//! batch's centre queries across worker threads; per-centre RNG streams
//! derive from the batch seed, so the trajectory is bit-identical at any
//! thread count.

use crate::chaos::{ChaosStorage, Fault, FaultHook, FaultPoint, RetryPolicy};
use crate::checkpoint::{CheckpointConfig, CheckpointManager, TrainCheckpoint, CHECKPOINT_VERSION};
use crate::contrast::structural::{structural_contrast_loss, StructuralContrastConfig};
use crate::contrast::temporal::{temporal_contrast_loss, TemporalContrastConfig};
use crate::error::{CpdgError, CpdgResult};
use crate::objective::CpdgObjective;
use crate::sampler::batch::BatchSampler;
use crate::storage::{Storage, FS_STORAGE};
use cpdg_dgnn::trainer::NegativeSampler;
use cpdg_dgnn::{DgnnEncoder, GuardConfig, LinkPredictor, MemorySnapshot, StepVerdict, TrainGuard};
use cpdg_graph::{DynamicGraph, NodeId, Timestamp};
use cpdg_tensor::loss::link_prediction_loss;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Pre-training hyper-parameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Events per batch.
    pub batch_size: usize,
    /// Passes over the pre-training stream.
    pub epochs: usize,
    /// Objective weights/toggles (Eq. 17).
    pub objective: CpdgObjective,
    /// Temporal-contrast settings.
    pub tc: TemporalContrastConfig,
    /// Structural-contrast settings.
    pub sc: StructuralContrastConfig,
    /// Maximum contrast centre nodes per batch (bounds sampling cost; the
    /// paper's Monte-Carlo batching trick, §IV-D).
    pub contrast_centers: usize,
    /// Number of uniformly spaced memory checkpoints `l` to record
    /// (paper default 10).
    pub n_checkpoints: usize,
    /// Gradient clipping (global L2).
    pub grad_clip: f32,
    /// Seed for sampling.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            batch_size: 200,
            epochs: 1,
            objective: CpdgObjective::default(),
            tc: TemporalContrastConfig::default(),
            sc: StructuralContrastConfig::default(),
            contrast_centers: 24,
            n_checkpoints: 10,
            grad_clip: 5.0,
            seed: 0,
        }
    }
}

/// Per-epoch loss breakdown.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LossBreakdown {
    /// Temporal link prediction pretext (Eq. 16).
    pub tlp: f32,
    /// Temporal contrast (Eq. 11).
    pub tc: f32,
    /// Structural contrast (Eq. 14).
    pub sc: f32,
    /// Combined objective (Eq. 17).
    pub total: f32,
}

/// Fault-tolerance policy for [`pretrain_resumable`]: divergence guarding,
/// checkpoint persistence, resume, and an optional step budget.
pub struct PretrainRuntime<'s> {
    /// Divergence watchdog thresholds and backoff policy.
    pub guard: GuardConfig,
    /// Where/how often to checkpoint; `None` disables persistence.
    pub checkpoint: Option<CheckpointConfig>,
    /// Byte storage used for checkpoints (swap in a fault-injecting
    /// implementation in tests).
    pub storage: &'s dyn Storage,
    /// Continue from the newest valid checkpoint in `checkpoint.dir`
    /// instead of starting fresh.
    pub resume: bool,
    /// Stop with [`CpdgError::Interrupted`] after this many steps *in this
    /// invocation* (used by kill-and-resume tests and time-boxed jobs).
    pub step_limit: Option<usize>,
    /// Fault-injection hook (inert by default). When a plan is installed,
    /// `storage.*`, `sampler.batch`, `memory.update`, and `ckpt.*` fault
    /// points are consulted throughout the run.
    pub chaos: FaultHook,
    /// Retry policy for storage/checkpoint I/O and transient injected
    /// faults.
    pub retry: RetryPolicy,
    /// Cooperative stop flag, polled between batches. When it becomes
    /// non-zero (conventionally the signal number a handler stored), the
    /// loop publishes a final checkpoint and returns
    /// [`CpdgError::Signalled`] — the graceful-SIGTERM path of
    /// `cpdg pretrain`.
    pub stop: Option<&'s std::sync::atomic::AtomicI32>,
}

impl Default for PretrainRuntime<'static> {
    fn default() -> Self {
        Self {
            guard: GuardConfig::default(),
            checkpoint: None,
            storage: &FS_STORAGE,
            resume: false,
            step_limit: None,
            chaos: FaultHook::none(),
            retry: RetryPolicy::default(),
            stop: None,
        }
    }
}

/// Artifacts of a pre-training run.
#[derive(Debug)]
pub struct PretrainOutput {
    /// The `l` uniformly spaced memory checkpoints `[S^1, …, S^l]`.
    pub checkpoints: Vec<MemorySnapshot>,
    /// Mean loss breakdown per epoch (healthy batches only).
    pub epoch_losses: Vec<LossBreakdown>,
    /// Poisoned steps the divergence guard skipped.
    pub skipped_steps: usize,
}

/// Decorrelates the structural-contrast stream from the temporal-contrast
/// stream of the same batch (both derive from [`batch_seed`]).
const SC_STREAM_SALT: u64 = 0x5343_5343_5343_5343;

/// The deterministic seed of batch `step` under run seed `seed`
/// (golden-ratio mixing). Resumed runs replay the exact sampling sequence,
/// and the batched contrast samplers derive per-query streams from it.
fn batch_seed(seed: u64, step: usize) -> u64 {
    seed ^ (step as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The per-batch RNG: a deterministic function of the run seed and the
/// global step, so resumed runs replay the exact sampling sequence.
fn batch_rng(seed: u64, step: usize) -> StdRng {
    StdRng::seed_from_u64(batch_seed(seed, step))
}

/// Pre-trains `(encoder, head)` with the CPDG objective over `graph`.
///
/// The encoder's memory is reset at each epoch; checkpoints are captured
/// uniformly across the whole run (all epochs) so the sequence reflects the
/// full evolution of pre-training, and the final state is always the last
/// checkpoint.
///
/// This entry point is infallible: it never persists anything and skips
/// poisoned steps indefinitely instead of erroring. Use
/// [`pretrain_resumable`] for crash-safe, divergence-bounded runs.
pub fn pretrain(
    encoder: &mut DgnnEncoder,
    head: &LinkPredictor,
    store: &mut ParamStore,
    opt: &mut Adam,
    graph: &DynamicGraph,
    cfg: &PretrainConfig,
) -> PretrainOutput {
    let runtime = PretrainRuntime {
        guard: GuardConfig::never_diverge(),
        ..PretrainRuntime::default()
    };
    pretrain_resumable(encoder, head, store, opt, graph, cfg, &runtime)
        .expect("guard never diverges and no storage is touched")
}

/// Fault-tolerant pre-training: divergence-guarded, optionally checkpointed
/// every N steps, optionally resuming from the newest valid checkpoint.
///
/// On resume, `(encoder, head, store, opt)` must be freshly built with the
/// same architecture/seed as the original run; parameters, optimiser
/// moments, encoder memory, guard posture, and the epoch/step cursor are
/// then restored from the checkpoint.
///
/// # Errors
/// - [`CpdgError::Diverged`] when the guard's consecutive-failure budget is
///   exhausted (partial progress is still in the last saved checkpoint).
/// - [`CpdgError::Interrupted`] when `step_limit` pauses the run mid-stream.
/// - [`CpdgError::NoCheckpoint`] when `resume` finds nothing usable.
/// - IO/corruption errors from checkpoint persistence.
#[allow(clippy::too_many_lines)]
pub fn pretrain_resumable(
    encoder: &mut DgnnEncoder,
    head: &LinkPredictor,
    store: &mut ParamStore,
    opt: &mut Adam,
    graph: &DynamicGraph,
    cfg: &PretrainConfig,
    runtime: &PretrainRuntime<'_>,
) -> CpdgResult<PretrainOutput> {
    let sampler = NegativeSampler::from_graph(graph);
    let negative_pool: Vec<NodeId> = graph.active_nodes();
    // Built once per run: the temporal adjacency index plus the worker pool
    // that fans each batch's contrast queries across threads.
    let contrast_sampler = BatchSampler::new(graph);

    let batch_size = cfg.batch_size.max(1);
    let n_batches = graph.events().chunks(batch_size).count();
    let total_steps = (cfg.epochs * n_batches).max(1);
    let l = cfg.n_checkpoints.max(1);

    // With a chaos plan installed, every raw byte read/write goes through
    // the fault-injecting wrapper; otherwise the caller's storage is used
    // directly (zero overhead).
    let chaos_storage;
    let storage: &dyn Storage = if runtime.chaos.is_active() {
        chaos_storage = ChaosStorage::new(runtime.storage, runtime.chaos.clone());
        &chaos_storage
    } else {
        runtime.storage
    };
    // A non-storage fault point (sampler.batch / memory.update) raising a
    // transient fault is retried by re-consulting the point — the hit
    // counter advances, so an `nth`-triggered fault clears itself.
    // Unrecovered faults surface as typed `CpdgError::Fault`s.
    let consult = |point: FaultPoint| -> CpdgResult<()> {
        if !runtime.chaos.is_active() {
            return Ok(());
        }
        runtime
            .retry
            .run(point.name(), || {
                runtime.chaos.check(point).map_err(Fault::into_io)
            })
            .map_err(|e| CpdgError::Fault {
                point: point.name().into(),
                reason: e.to_string(),
            })
    };

    let manager = match &runtime.checkpoint {
        Some(c) => Some(CheckpointManager::with_chaos(
            c.clone(),
            storage,
            runtime.chaos.clone(),
            runtime.retry,
        )?),
        None => None,
    };

    let mut guard = TrainGuard::new(runtime.guard.clone());
    let mut next_cp = 1usize;
    let mut step = 0usize; // global steps completed (across epochs)
    let mut start_epoch = 0usize;
    let mut skip_batches = 0usize;
    let mut checkpoints: Vec<MemorySnapshot> = Vec::with_capacity(l);
    let mut epoch_losses: Vec<LossBreakdown> = Vec::with_capacity(cfg.epochs);
    let mut sums = LossBreakdown::default();
    let mut batches = 0usize;
    let mut resumed = false;

    if runtime.resume {
        let dir = runtime
            .checkpoint
            .as_ref()
            .map(|c| c.dir.clone())
            .ok_or_else(|| CpdgError::Invalid("resume requires a checkpoint directory".into()))?;
        let (ckpt, path) =
            CheckpointManager::load_latest_with(storage, &dir, &runtime.chaos, &runtime.retry)?
                .ok_or(CpdgError::NoCheckpoint { dir })?;

        let copied = store.load_matching(&ckpt.params);
        if copied != store.len() {
            return Err(CpdgError::corrupt(
                &path,
                format!(
                    "checkpoint covers {copied} of {} model parameters",
                    store.len()
                ),
            ));
        }
        encoder
            .restore_state(ckpt.encoder)
            .map_err(|e| CpdgError::corrupt(&path, e))?;
        *opt = ckpt.opt;
        guard = ckpt.guard;
        checkpoints = ckpt.eie_checkpoints;
        epoch_losses = ckpt.epoch_losses;
        sums = ckpt.partial_sums;
        batches = ckpt.partial_batches;
        step = ckpt.step;
        next_cp = ckpt.next_cp;
        start_epoch = ckpt.epoch;
        skip_batches = step
            .checked_sub(start_epoch.saturating_mul(n_batches))
            .filter(|s| *s <= n_batches && step <= total_steps)
            .ok_or_else(|| {
                CpdgError::corrupt(&path, "epoch/step cursor inconsistent with this dataset")
            })?;
        resumed = true;
        cpdg_obs::info!(
            "core.pretrain",
            "resuming pre-training from checkpoint";
            path = path.display().to_string(),
            step = step,
            total_steps = total_steps,
            epoch = start_epoch,
        );
    }

    let mut steps_this_run = 0usize;

    for epoch in start_epoch..cfg.epochs {
        let continuing = resumed && epoch == start_epoch;
        if !continuing {
            encoder.reset_state();
            sums = LossBreakdown::default();
            batches = 0;
        }
        let to_skip = if continuing { skip_batches } else { 0 };
        let counters_at_epoch_start = cpdg_obs::counters_snapshot();
        let step_at_epoch_start = step;
        let epoch_started = std::time::Instant::now();

        for (batch_idx, chunk) in graph.events().chunks(batch_size).enumerate() {
            if batch_idx < to_skip {
                continue;
            }
            if let Some(limit) = runtime.step_limit {
                if steps_this_run >= limit {
                    return Err(CpdgError::Interrupted { step, total_steps });
                }
            }
            if let Some(flag) = runtime.stop {
                let signal = flag.load(std::sync::atomic::Ordering::Relaxed);
                if signal != 0 {
                    // Publish the state reached so far, then stop with the
                    // typed graceful-signal error (exit code 8). The save
                    // is best-effort ordered before the return so `--resume`
                    // continues from this exact batch boundary.
                    if let Some(mgr) = &manager {
                        mgr.save(&TrainCheckpoint {
                            version: CHECKPOINT_VERSION,
                            step,
                            epoch,
                            next_cp,
                            params: store.clone(),
                            opt: opt.clone(),
                            encoder: encoder.export_state(),
                            guard: guard.clone(),
                            eie_checkpoints: checkpoints.clone(),
                            epoch_losses: epoch_losses.clone(),
                            partial_sums: sums,
                            partial_batches: batches,
                        })?;
                    }
                    cpdg_obs::info!(
                        "core.pretrain",
                        "stopping gracefully on signal";
                        signal = signal,
                        step = step,
                        total_steps = total_steps,
                    );
                    return Err(CpdgError::Signalled { signal, step });
                }
            }
            let _step_timer = cpdg_obs::span("pretrain.step_us");
            consult(FaultPoint::SamplerBatch)?;
            let mut rng = batch_rng(cfg.seed, step);

            let mut tape = Tape::new();
            let ctx = encoder.apply_pending(&mut tape, store, graph);

            let srcs: Vec<NodeId> = chunk.iter().map(|e| e.src).collect();
            let dsts: Vec<NodeId> = chunk.iter().map(|e| e.dst).collect();
            let times: Vec<Timestamp> = chunk.iter().map(|e| e.t).collect();
            let negs: Vec<NodeId> = chunk.iter().map(|_| sampler.sample(&mut rng)).collect();

            let z_src = encoder.embed_many(&mut tape, store, &ctx, graph, &srcs, &times);
            let z_dst = encoder.embed_many(&mut tape, store, &ctx, graph, &dsts, &times);
            let z_neg = encoder.embed_many(&mut tape, store, &ctx, graph, &negs, &times);

            // Pretext: temporal link prediction (Eq. 16).
            let pos_logits = head.score(&mut tape, store, z_src, z_dst);
            let neg_logits = head.score(&mut tape, store, z_src, z_neg);
            let tlp = link_prediction_loss(&mut tape, pos_logits, neg_logits);

            // Contrast centres: the first occurrences of distinct sources
            // in the batch, capped at `contrast_centers`.
            let mut center_rows: Vec<usize> = Vec::new();
            let mut seen: Vec<NodeId> = Vec::new();
            for (row, &s) in srcs.iter().enumerate() {
                if !seen.contains(&s) {
                    seen.push(s);
                    center_rows.push(row);
                    if center_rows.len() >= cfg.contrast_centers {
                        break;
                    }
                }
            }
            let centers: Vec<(NodeId, Timestamp)> =
                center_rows.iter().map(|&r| (srcs[r], times[r])).collect();

            let (tc_loss, sc_loss) = if centers.is_empty() {
                (None, None)
            } else {
                let z_centers = tape.gather_rows(z_src, &center_rows);
                let bseed = batch_seed(cfg.seed, step);
                let tc = cfg.objective.use_tc.then(|| {
                    temporal_contrast_loss(
                        &mut tape,
                        encoder,
                        store,
                        &contrast_sampler,
                        &centers,
                        z_centers,
                        &cfg.tc,
                        bseed,
                    )
                });
                let sc = cfg.objective.use_sc.then(|| {
                    structural_contrast_loss(
                        &mut tape,
                        encoder,
                        store,
                        &contrast_sampler,
                        &centers,
                        z_centers,
                        &negative_pool,
                        &cfg.sc,
                        bseed ^ SC_STREAM_SALT,
                    )
                });
                (tc, sc)
            };

            let total = cfg.objective.combine(&mut tape, tlp, tc_loss, sc_loss);
            let loss_val = tape.value(total).get(0, 0);

            let grads = tape.backward(total);
            let mut pg = tape.param_grads(&grads);
            let pre_norm = clip_global_norm(&mut pg, cfg.grad_clip);

            match guard.inspect(step, loss_val, pre_norm) {
                Ok(StepVerdict::Proceed) => {
                    consult(FaultPoint::MemoryUpdate)?;
                    let base_lr = opt.lr;
                    opt.lr = base_lr * guard.lr_scale();
                    opt.step(store, &pg);
                    opt.lr = base_lr;
                    encoder.commit(&tape, ctx, chunk);

                    sums.tlp += tape.value(tlp).get(0, 0);
                    sums.tc += tc_loss.map(|v| tape.value(v).get(0, 0)).unwrap_or(0.0);
                    sums.sc += sc_loss.map(|v| tape.value(v).get(0, 0)).unwrap_or(0.0);
                    sums.total += loss_val;
                    batches += 1;
                }
                Ok(StepVerdict::Skip) => {
                    // Drop gradients and state writes, but keep chronology:
                    // the batch's events still become pending messages.
                    encoder.skip_commit(chunk);
                }
                Err(report) => return Err(CpdgError::Diverged(report)),
            }

            // Uniform checkpointing across the full run (Eq. 18's [S^1…S^l]).
            step += 1;
            steps_this_run += 1;
            while next_cp <= l && step * l >= next_cp * total_steps {
                checkpoints.push(encoder.memory.snapshot(step as f64 / total_steps as f64));
                next_cp += 1;
            }

            if let Some(mgr) = &manager {
                if mgr.should_save(step) {
                    mgr.save(&TrainCheckpoint {
                        version: CHECKPOINT_VERSION,
                        step,
                        epoch,
                        next_cp,
                        params: store.clone(),
                        opt: opt.clone(),
                        encoder: encoder.export_state(),
                        guard: guard.clone(),
                        eie_checkpoints: checkpoints.clone(),
                        epoch_losses: epoch_losses.clone(),
                        partial_sums: sums,
                        partial_batches: batches,
                    })?;
                }
            }
        }

        let inv = 1.0 / batches.max(1) as f32;
        let eb = LossBreakdown {
            tlp: sums.tlp * inv,
            tc: sums.tc * inv,
            sc: sums.sc * inv,
            total: sums.total * inv,
        };
        epoch_losses.push(eb);

        // One metric record per epoch: losses, throughput, and how far
        // every counter moved during the epoch (run directories persist
        // these to metrics.jsonl; see cpdg-obs).
        let epoch_secs = epoch_started.elapsed().as_secs_f64();
        let epoch_steps = step - step_at_epoch_start;
        let mut fields: Vec<(String, cpdg_obs::Value)> = vec![
            ("epoch".into(), (epoch as u64).into()),
            ("loss_tlp".into(), eb.tlp.into()),
            ("loss_tc".into(), eb.tc.into()),
            ("loss_sc".into(), eb.sc.into()),
            ("loss_total".into(), eb.total.into()),
            ("batches".into(), batches.into()),
            ("steps".into(), epoch_steps.into()),
            ("secs".into(), epoch_secs.into()),
            (
                "steps_per_sec".into(),
                (epoch_steps as f64 / epoch_secs.max(1e-9)).into(),
            ),
        ];
        for (name, delta) in cpdg_obs::counter_deltas(&counters_at_epoch_start) {
            fields.push((format!("d_{name}"), delta.into()));
        }
        cpdg_obs::emit_metrics("pretrain_epoch", fields);
    }

    // Terminal checkpoint so a completed run is also its own snapshot.
    if let Some(mgr) = &manager {
        mgr.save(&TrainCheckpoint {
            version: CHECKPOINT_VERSION,
            step,
            epoch: cfg.epochs,
            next_cp,
            params: store.clone(),
            opt: opt.clone(),
            encoder: encoder.export_state(),
            guard: guard.clone(),
            eie_checkpoints: checkpoints.clone(),
            epoch_losses: epoch_losses.clone(),
            partial_sums: LossBreakdown::default(),
            partial_batches: 0,
        })?;
    }

    Ok(PretrainOutput {
        checkpoints,
        epoch_losses,
        skipped_steps: guard.skipped(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_dgnn::{DgnnConfig, EncoderKind};
    use cpdg_graph::{generate, SyntheticConfig};
    use rand::SeedableRng;

    fn tiny_dataset(seed: u64) -> cpdg_graph::SyntheticDataset {
        generate(
            &SyntheticConfig {
                n_events: 800,
                ..SyntheticConfig::amazon_like(seed)
            }
            .scaled(0.12),
        )
    }

    fn build(num_nodes: usize, seed: u64) -> (ParamStore, DgnnEncoder, LinkPredictor) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, 16, 10_000.0);
        let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", num_nodes, cfg);
        let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
        (store, enc, head)
    }

    #[test]
    fn produces_requested_checkpoints() {
        let ds = tiny_dataset(0);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 0);
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig {
            epochs: 2,
            n_checkpoints: 5,
            batch_size: 100,
            ..Default::default()
        };
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        assert_eq!(out.checkpoints.len(), 5);
        // Progress stamps increase and end at 1.0.
        let p: Vec<f64> = out.checkpoints.iter().map(|c| c.progress).collect();
        assert!(p.windows(2).all(|w| w[0] <= w[1]), "{p:?}");
        assert!((p.last().unwrap() - 1.0).abs() < 1e-9);
        // Later checkpoints contain non-trivial state.
        assert!(out.checkpoints.last().unwrap().states.frobenius_norm() > 0.0);
        assert_eq!(out.skipped_steps, 0, "healthy run skips nothing");
    }

    #[test]
    fn loss_breakdown_populated_and_finite() {
        let ds = tiny_dataset(1);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 1);
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig {
            epochs: 1,
            batch_size: 100,
            ..Default::default()
        };
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        let e = &out.epoch_losses[0];
        for v in [e.tlp, e.tc, e.sc, e.total] {
            assert!(v.is_finite() && v >= 0.0, "{e:?}");
        }
        assert!(e.tc > 0.0, "TC term should be active");
        assert!(e.sc > 0.0, "SC term should be active");
        // Eq. 17 consistency (up to float error):
        let recon = e.tlp + (1.0 - cfg.objective.beta) * e.tc + cfg.objective.beta * e.sc;
        assert!((recon - e.total).abs() < 1e-3, "{recon} vs {}", e.total);
    }

    #[test]
    fn ablation_toggles_zero_their_terms() {
        let ds = tiny_dataset(2);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 2);
        let mut opt = Adam::new(1e-2);
        let mut cfg = PretrainConfig {
            epochs: 1,
            batch_size: 100,
            ..Default::default()
        };
        cfg.objective.use_tc = false;
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        assert_eq!(out.epoch_losses[0].tc, 0.0);
        assert!(out.epoch_losses[0].sc > 0.0);
    }

    #[test]
    fn multi_epoch_loss_decreases() {
        let ds = tiny_dataset(3);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 3);
        let mut opt = Adam::new(2e-2);
        let cfg = PretrainConfig {
            epochs: 4,
            batch_size: 100,
            ..Default::default()
        };
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        let first = out.epoch_losses.first().unwrap().total;
        let last = out.epoch_losses.last().unwrap().total;
        assert!(last < first, "pretrain loss should drop: {first} → {last}");
    }

    #[test]
    fn zero_explosion_threshold_freezes_parameters() {
        // A guard that poisons every step (any finite grad norm > 0.0 trips
        // the explosion check) must leave parameters bit-identical.
        let ds = tiny_dataset(4);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 4);
        let before = store.to_json();
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig {
            epochs: 1,
            batch_size: 200,
            ..Default::default()
        };
        let runtime = PretrainRuntime {
            guard: GuardConfig {
                max_grad_norm: 0.0,
                max_retries: usize::MAX,
                ..GuardConfig::default()
            },
            ..PretrainRuntime::default()
        };
        let out = pretrain_resumable(
            &mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg, &runtime,
        )
        .expect("never-diverging guard cannot fail");
        assert!(out.skipped_steps > 0);
        assert_eq!(
            store.to_json(),
            before,
            "skipped steps must not touch parameters"
        );
        // No healthy batches → epoch loss reads zero, not NaN.
        assert_eq!(out.epoch_losses[0].total, 0.0);
    }

    #[test]
    fn step_limit_interrupts_with_cursor() {
        let ds = tiny_dataset(5);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 5);
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig {
            epochs: 1,
            batch_size: 100,
            ..Default::default()
        };
        let runtime = PretrainRuntime {
            step_limit: Some(2),
            ..PretrainRuntime::default()
        };
        let err = pretrain_resumable(
            &mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg, &runtime,
        )
        .unwrap_err();
        match err {
            CpdgError::Interrupted { step, total_steps } => {
                assert_eq!(step, 2);
                assert!(total_steps >= step);
            }
            other => panic!("expected Interrupted, got {other}"),
        }
    }

    #[test]
    fn stop_flag_checkpoints_then_surfaces_signalled() {
        use std::sync::atomic::{AtomicI32, Ordering};
        let ds = tiny_dataset(7);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 7);
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig {
            epochs: 1,
            batch_size: 100,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join(format!("cpdg_sigstop_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // The flag is already set when the loop starts: the very first
        // batch boundary must checkpoint and stop.
        let flag = AtomicI32::new(15);
        let runtime = PretrainRuntime {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            stop: Some(&flag),
            ..PretrainRuntime::default()
        };
        let err = pretrain_resumable(
            &mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg, &runtime,
        )
        .unwrap_err();
        match err {
            CpdgError::Signalled { signal, step } => {
                assert_eq!(signal, 15);
                assert_eq!(step, 0);
            }
            other => panic!("expected Signalled, got {other}"),
        }
        // A checkpoint was published before exiting; resuming with the flag
        // cleared completes the run.
        let (ckpt, _) = CheckpointManager::load_latest(&FS_STORAGE, &dir)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.step, 0);
        flag.store(0, Ordering::Relaxed);
        let (mut store2, mut enc2, head2) = build(ds.graph.num_nodes(), 7);
        let mut opt2 = Adam::new(1e-2);
        let runtime2 = PretrainRuntime {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            stop: Some(&flag),
            ..PretrainRuntime::default()
        };
        pretrain_resumable(
            &mut enc2,
            &head2,
            &mut store2,
            &mut opt2,
            &ds.graph,
            &cfg,
            &runtime2,
        )
        .expect("cleared flag resumes and completes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_checkpoints_is_a_typed_error() {
        let ds = tiny_dataset(6);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 6);
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig {
            epochs: 1,
            batch_size: 100,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join(format!("cpdg_noresume_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let runtime = PretrainRuntime {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            resume: true,
            ..PretrainRuntime::default()
        };
        let err = pretrain_resumable(
            &mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg, &runtime,
        )
        .unwrap_err();
        assert!(matches!(err, CpdgError::NoCheckpoint { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
