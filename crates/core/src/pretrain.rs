//! The CPDG pre-trainer (paper §IV-B): chronological batch loop combining
//! the temporal-contrast, structural-contrast, and temporal-link-prediction
//! pretext losses under Eq. 17, with uniform memory checkpointing for the
//! EIE fine-tuning module (Eq. 18).

use crate::contrast::structural::{structural_contrast_loss, StructuralContrastConfig};
use crate::contrast::temporal::{temporal_contrast_loss, TemporalContrastConfig};
use crate::objective::CpdgObjective;
use cpdg_dgnn::trainer::NegativeSampler;
use cpdg_dgnn::{DgnnEncoder, LinkPredictor, MemorySnapshot};
use cpdg_graph::{DynamicGraph, NodeId, Timestamp};
use cpdg_tensor::loss::link_prediction_loss;
use cpdg_tensor::optim::{clip_global_norm, Adam};
use cpdg_tensor::{ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pre-training hyper-parameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Events per batch.
    pub batch_size: usize,
    /// Passes over the pre-training stream.
    pub epochs: usize,
    /// Objective weights/toggles (Eq. 17).
    pub objective: CpdgObjective,
    /// Temporal-contrast settings.
    pub tc: TemporalContrastConfig,
    /// Structural-contrast settings.
    pub sc: StructuralContrastConfig,
    /// Maximum contrast centre nodes per batch (bounds sampling cost; the
    /// paper's Monte-Carlo batching trick, §IV-D).
    pub contrast_centers: usize,
    /// Number of uniformly spaced memory checkpoints `l` to record
    /// (paper default 10).
    pub n_checkpoints: usize,
    /// Gradient clipping (global L2).
    pub grad_clip: f32,
    /// Seed for sampling.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            batch_size: 200,
            epochs: 1,
            objective: CpdgObjective::default(),
            tc: TemporalContrastConfig::default(),
            sc: StructuralContrastConfig::default(),
            contrast_centers: 24,
            n_checkpoints: 10,
            grad_clip: 5.0,
            seed: 0,
        }
    }
}

/// Per-epoch loss breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossBreakdown {
    /// Temporal link prediction pretext (Eq. 16).
    pub tlp: f32,
    /// Temporal contrast (Eq. 11).
    pub tc: f32,
    /// Structural contrast (Eq. 14).
    pub sc: f32,
    /// Combined objective (Eq. 17).
    pub total: f32,
}

/// Artifacts of a pre-training run.
#[derive(Debug)]
pub struct PretrainOutput {
    /// The `l` uniformly spaced memory checkpoints `[S^1, …, S^l]`.
    pub checkpoints: Vec<MemorySnapshot>,
    /// Mean loss breakdown per epoch.
    pub epoch_losses: Vec<LossBreakdown>,
}

/// Pre-trains `(encoder, head)` with the CPDG objective over `graph`.
///
/// The encoder's memory is reset at each epoch; checkpoints are captured
/// uniformly across the whole run (all epochs) so the sequence reflects the
/// full evolution of pre-training, and the final state is always the last
/// checkpoint.
pub fn pretrain(
    encoder: &mut DgnnEncoder,
    head: &LinkPredictor,
    store: &mut ParamStore,
    opt: &mut Adam,
    graph: &DynamicGraph,
    cfg: &PretrainConfig,
) -> PretrainOutput {
    let sampler = NegativeSampler::from_graph(graph);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let negative_pool: Vec<NodeId> = graph.active_nodes();

    let n_batches = graph.events().chunks(cfg.batch_size.max(1)).count();
    let total_steps = (cfg.epochs * n_batches).max(1);
    let l = cfg.n_checkpoints.max(1);
    let mut next_cp = 1usize;
    let mut step = 0usize;

    let mut checkpoints: Vec<MemorySnapshot> = Vec::with_capacity(l);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _epoch in 0..cfg.epochs {
        encoder.reset_state();
        let mut sums = LossBreakdown::default();
        let mut batches = 0usize;

        for chunk in graph.events().chunks(cfg.batch_size.max(1)) {
            let mut tape = Tape::new();
            let ctx = encoder.apply_pending(&mut tape, store, graph);

            let srcs: Vec<NodeId> = chunk.iter().map(|e| e.src).collect();
            let dsts: Vec<NodeId> = chunk.iter().map(|e| e.dst).collect();
            let times: Vec<Timestamp> = chunk.iter().map(|e| e.t).collect();
            let negs: Vec<NodeId> = chunk.iter().map(|_| sampler.sample(&mut rng)).collect();

            let z_src = encoder.embed_many(&mut tape, store, &ctx, graph, &srcs, &times);
            let z_dst = encoder.embed_many(&mut tape, store, &ctx, graph, &dsts, &times);
            let z_neg = encoder.embed_many(&mut tape, store, &ctx, graph, &negs, &times);

            // Pretext: temporal link prediction (Eq. 16).
            let pos_logits = head.score(&mut tape, store, z_src, z_dst);
            let neg_logits = head.score(&mut tape, store, z_src, z_neg);
            let tlp = link_prediction_loss(&mut tape, pos_logits, neg_logits);

            // Contrast centres: the first occurrences of distinct sources
            // in the batch, capped at `contrast_centers`.
            let mut center_rows: Vec<usize> = Vec::new();
            let mut seen: Vec<NodeId> = Vec::new();
            for (row, &s) in srcs.iter().enumerate() {
                if !seen.contains(&s) {
                    seen.push(s);
                    center_rows.push(row);
                    if center_rows.len() >= cfg.contrast_centers {
                        break;
                    }
                }
            }
            let centers: Vec<(NodeId, Timestamp)> =
                center_rows.iter().map(|&r| (srcs[r], times[r])).collect();

            let (tc_loss, sc_loss) = if centers.is_empty() {
                (None, None)
            } else {
                let z_centers = tape.gather_rows(z_src, &center_rows);
                let tc = cfg.objective.use_tc.then(|| {
                    temporal_contrast_loss(
                        &mut tape, encoder, store, graph, &centers, z_centers, &cfg.tc, &mut rng,
                    )
                });
                let sc = cfg.objective.use_sc.then(|| {
                    structural_contrast_loss(
                        &mut tape, encoder, store, graph, &centers, z_centers, &negative_pool,
                        &cfg.sc, &mut rng,
                    )
                });
                (tc, sc)
            };

            let total = cfg.objective.combine(&mut tape, tlp, tc_loss, sc_loss);

            sums.tlp += tape.value(tlp).get(0, 0);
            sums.tc += tc_loss.map(|v| tape.value(v).get(0, 0)).unwrap_or(0.0);
            sums.sc += sc_loss.map(|v| tape.value(v).get(0, 0)).unwrap_or(0.0);
            sums.total += tape.value(total).get(0, 0);
            batches += 1;

            let grads = tape.backward(total);
            let mut pg = tape.param_grads(&grads);
            clip_global_norm(&mut pg, cfg.grad_clip);
            opt.step(store, &pg);
            encoder.commit(&tape, ctx, chunk);

            // Uniform checkpointing across the full run (Eq. 18's [S^1…S^l]).
            step += 1;
            while next_cp <= l && step * l >= next_cp * total_steps {
                checkpoints.push(encoder.memory.snapshot(step as f64 / total_steps as f64));
                next_cp += 1;
            }
        }

        let inv = 1.0 / batches.max(1) as f32;
        epoch_losses.push(LossBreakdown {
            tlp: sums.tlp * inv,
            tc: sums.tc * inv,
            sc: sums.sc * inv,
            total: sums.total * inv,
        });
    }

    PretrainOutput { checkpoints, epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_dgnn::{DgnnConfig, EncoderKind};
    use cpdg_graph::{generate, SyntheticConfig};
    use rand::SeedableRng;

    fn tiny_dataset(seed: u64) -> cpdg_graph::SyntheticDataset {
        generate(&SyntheticConfig { n_events: 800, ..SyntheticConfig::amazon_like(seed) }.scaled(0.12))
    }

    fn build(num_nodes: usize, seed: u64) -> (ParamStore, DgnnEncoder, LinkPredictor) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = DgnnConfig::preset(EncoderKind::Tgn, 16, 10_000.0);
        let enc = DgnnEncoder::new(&mut store, &mut rng, "enc", num_nodes, cfg);
        let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
        (store, enc, head)
    }

    #[test]
    fn produces_requested_checkpoints() {
        let ds = tiny_dataset(0);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 0);
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig { epochs: 2, n_checkpoints: 5, batch_size: 100, ..Default::default() };
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        assert_eq!(out.checkpoints.len(), 5);
        // Progress stamps increase and end at 1.0.
        let p: Vec<f64> = out.checkpoints.iter().map(|c| c.progress).collect();
        assert!(p.windows(2).all(|w| w[0] <= w[1]), "{p:?}");
        assert!((p.last().unwrap() - 1.0).abs() < 1e-9);
        // Later checkpoints contain non-trivial state.
        assert!(out.checkpoints.last().unwrap().states.frobenius_norm() > 0.0);
    }

    #[test]
    fn loss_breakdown_populated_and_finite() {
        let ds = tiny_dataset(1);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 1);
        let mut opt = Adam::new(1e-2);
        let cfg = PretrainConfig { epochs: 1, batch_size: 100, ..Default::default() };
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        let e = &out.epoch_losses[0];
        for v in [e.tlp, e.tc, e.sc, e.total] {
            assert!(v.is_finite() && v >= 0.0, "{e:?}");
        }
        assert!(e.tc > 0.0, "TC term should be active");
        assert!(e.sc > 0.0, "SC term should be active");
        // Eq. 17 consistency (up to float error):
        let recon = e.tlp + (1.0 - cfg.objective.beta) * e.tc + cfg.objective.beta * e.sc;
        assert!((recon - e.total).abs() < 1e-3, "{recon} vs {}", e.total);
    }

    #[test]
    fn ablation_toggles_zero_their_terms() {
        let ds = tiny_dataset(2);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 2);
        let mut opt = Adam::new(1e-2);
        let mut cfg = PretrainConfig { epochs: 1, batch_size: 100, ..Default::default() };
        cfg.objective.use_tc = false;
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        assert_eq!(out.epoch_losses[0].tc, 0.0);
        assert!(out.epoch_losses[0].sc > 0.0);
    }

    #[test]
    fn multi_epoch_loss_decreases() {
        let ds = tiny_dataset(3);
        let (mut store, mut enc, head) = build(ds.graph.num_nodes(), 3);
        let mut opt = Adam::new(2e-2);
        let cfg = PretrainConfig { epochs: 4, batch_size: 100, ..Default::default() };
        let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
        let first = out.epoch_losses.first().unwrap().total;
        let last = out.epoch_losses.last().unwrap().total;
        assert!(last < first, "pretrain loss should drop: {first} → {last}");
    }
}
