//! Evolution Information Enhanced (EIE) fine-tuning — paper §IV-C.
//!
//! During pre-training, `l` uniformly spaced memory checkpoints
//! `[S^1, …, S^l]` are recorded. At fine-tuning time they are fused per
//! node into evolution information `EI = f_EI([S^1, …, S^l])` (Eq. 18) —
//! with `f_EI` one of mean pooling, attention, or a GRU — transformed by a
//! two-layer MLP, and concatenated onto the downstream temporal embeddings
//! (Eq. 19): `Z_EIE = [Z_down ‖ MLP(EI)]`.
//!
//! Checkpoints are constants (pre-training artifacts); the fusion
//! parameters (attention/GRU) and the adapter MLP train with the
//! downstream task.

use cpdg_dgnn::MemorySnapshot;
use cpdg_graph::NodeId;
use cpdg_tensor::nn::{Activation, GruCell, Mlp, NeighborAttention};
use cpdg_tensor::{Matrix, ParamStore, Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The checkpoint-sequence fusion `f_EI(·)` (Eq. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EieFusion {
    /// Mean pooling over checkpoints (EIE-mean).
    Mean,
    /// Attention over checkpoints, queried by the latest one (EIE-attn).
    Attn,
    /// GRU scan over the checkpoint sequence (EIE-GRU — the paper's best).
    Gru,
}

impl EieFusion {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            EieFusion::Mean => "EIE-mean",
            EieFusion::Attn => "EIE-attn",
            EieFusion::Gru => "EIE-GRU",
        }
    }

    /// All variants, in the paper's Table X order.
    pub fn all() -> [EieFusion; 3] {
        [EieFusion::Mean, EieFusion::Attn, EieFusion::Gru]
    }
}

/// The EIE module: fusion + adapter MLP.
#[derive(Debug, Clone)]
pub struct EieModule {
    fusion: EieFusion,
    mlp: Mlp,
    attn: Option<NeighborAttention>,
    gru: Option<GruCell>,
    dim: usize,
}

impl EieModule {
    /// Registers a new module under `name` for `dim`-wide memory states.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut (impl Rng + ?Sized),
        name: &str,
        dim: usize,
        fusion: EieFusion,
    ) -> Self {
        let mlp = Mlp::new(
            store,
            rng,
            &format!("{name}.adapter"),
            &[dim, dim, dim],
            Activation::Relu,
        );
        let attn = matches!(fusion, EieFusion::Attn).then(|| {
            NeighborAttention::new(store, rng, &format!("{name}.attn"), dim, dim, dim, dim)
        });
        let gru = matches!(fusion, EieFusion::Gru)
            .then(|| GruCell::new(store, rng, &format!("{name}.gru"), dim, dim));
        Self {
            fusion,
            mlp,
            attn,
            gru,
            dim,
        }
    }

    /// Which fusion this module applies.
    pub fn fusion(&self) -> EieFusion {
        self.fusion
    }

    /// Width of the enhanced embedding `[z ‖ MLP(EI)]`.
    pub fn enhanced_dim(&self) -> usize {
        2 * self.dim
    }

    /// Fuses the checkpoint sequence for `nodes` (Eq. 18), producing an
    /// `m × dim` variable.
    pub fn fuse(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        checkpoints: &[MemorySnapshot],
        nodes: &[NodeId],
    ) -> Var {
        assert!(!checkpoints.is_empty(), "EIE: need at least one checkpoint");
        assert!(!nodes.is_empty(), "EIE: empty node set");
        let idx: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();
        match self.fusion {
            EieFusion::Mean => {
                let mut acc = Matrix::zeros(nodes.len(), self.dim);
                for cp in checkpoints {
                    acc.add_assign(&cp.states.gather_rows(&idx));
                }
                acc.scale_inplace(1.0 / checkpoints.len() as f32);
                tape.constant(acc)
            }
            EieFusion::Gru => {
                let gru = self.gru.as_ref().expect("gru fusion");
                let mut h = tape.constant(Matrix::zeros(nodes.len(), self.dim));
                for cp in checkpoints {
                    let x = tape.constant(cp.states.gather_rows(&idx));
                    h = gru.forward(tape, store, x, h);
                }
                h
            }
            EieFusion::Attn => {
                let attn = self.attn.as_ref().expect("attn fusion");
                let rows: Vec<Var> = idx
                    .iter()
                    .map(|&i| {
                        let seq: Vec<f32> = checkpoints
                            .iter()
                            .flat_map(|cp| cp.states.row(i).iter().copied())
                            .collect();
                        let kv = tape.constant(Matrix::from_vec(checkpoints.len(), self.dim, seq));
                        let q = tape.constant(Matrix::from_vec(
                            1,
                            self.dim,
                            checkpoints
                                .last()
                                .expect("non-empty")
                                .states
                                .row(i)
                                .to_vec(),
                        ));
                        attn.forward_one(tape, store, q, kv)
                    })
                    .collect();
                tape.stack_rows(&rows)
            }
        }
    }

    /// Eq. 19: `Z_EIE = [z_down ‖ MLP(EI)]`, producing `m × 2·dim`.
    pub fn enhance(&self, tape: &mut Tape, store: &ParamStore, z_down: Var, ei: Var) -> Var {
        assert_eq!(
            tape.value(z_down).cols(),
            self.dim,
            "enhance: embedding width mismatch"
        );
        assert_eq!(
            tape.value(ei).cols(),
            self.dim,
            "enhance: EI width mismatch"
        );
        let adapted = self.mlp.forward(tape, store, ei);
        tape.concat_cols(z_down, adapted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checkpoints(l: usize, n: usize, d: usize) -> Vec<MemorySnapshot> {
        (0..l)
            .map(|i| MemorySnapshot {
                states: Matrix::full(n, d, i as f32 + 1.0),
                progress: (i + 1) as f64 / l as f64,
            })
            .collect()
    }

    fn module(fusion: EieFusion, d: usize) -> (ParamStore, EieModule) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = EieModule::new(&mut store, &mut rng, "eie", d, fusion);
        (store, m)
    }

    #[test]
    fn mean_fusion_is_exact_average() {
        let (store, m) = module(EieFusion::Mean, 4);
        let cps = checkpoints(3, 5, 4); // values 1, 2, 3 → mean 2
        let mut tape = Tape::new();
        let ei = m.fuse(&mut tape, &store, &cps, &[0, 4]);
        assert_eq!(tape.value(ei), &Matrix::full(2, 4, 2.0));
    }

    #[test]
    fn gru_fusion_shape_and_trainability() {
        let (store, m) = module(EieFusion::Gru, 4);
        let cps = checkpoints(5, 6, 4);
        let mut tape = Tape::new();
        let ei = m.fuse(&mut tape, &store, &cps, &[1, 2, 3]);
        assert_eq!(tape.value(ei).shape(), (3, 4));
        let loss = tape.mean_all(ei);
        let grads = tape.backward(loss);
        assert!(
            !tape.param_grads(&grads).is_empty(),
            "GRU fusion must be trainable"
        );
    }

    #[test]
    fn gru_fusion_depends_on_order() {
        let (store, m) = module(EieFusion::Gru, 4);
        let cps = checkpoints(3, 2, 4);
        let mut rev = cps.clone();
        rev.reverse();
        let mut tape = Tape::new();
        let a = m.fuse(&mut tape, &store, &cps, &[0]);
        let b = m.fuse(&mut tape, &store, &rev, &[0]);
        assert!(
            tape.value(a).max_abs_diff(tape.value(b)) > 1e-6,
            "GRU must be order-sensitive"
        );
    }

    #[test]
    fn attn_fusion_shape() {
        let (store, m) = module(EieFusion::Attn, 4);
        let cps = checkpoints(4, 3, 4);
        let mut tape = Tape::new();
        let ei = m.fuse(&mut tape, &store, &cps, &[0, 1]);
        assert_eq!(tape.value(ei).shape(), (2, 4));
        assert!(tape.value(ei).all_finite());
    }

    #[test]
    fn enhance_concatenates() {
        let (store, m) = module(EieFusion::Mean, 4);
        assert_eq!(m.enhanced_dim(), 8);
        let cps = checkpoints(2, 3, 4);
        let mut tape = Tape::new();
        let ei = m.fuse(&mut tape, &store, &cps, &[0, 1, 2]);
        let z = tape.constant(Matrix::full(3, 4, 7.0));
        let zx = m.enhance(&mut tape, &store, z, ei);
        assert_eq!(tape.value(zx).shape(), (3, 8));
        // First half is the untouched downstream embedding.
        for r in 0..3 {
            assert_eq!(&tape.value(zx).row(r)[..4], &[7.0; 4]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one checkpoint")]
    fn rejects_empty_checkpoints() {
        let (store, m) = module(EieFusion::Mean, 4);
        let mut tape = Tape::new();
        m.fuse(&mut tape, &store, &[], &[0]);
    }

    #[test]
    fn names_and_all() {
        assert_eq!(EieFusion::Gru.name(), "EIE-GRU");
        assert_eq!(EieFusion::all().len(), 3);
    }
}
