//! The overall pre-training objective (paper Eq. 17):
//!
//! `L_pre = (1 − β)·L_η + β·L_ε + L_tlp`
//!
//! with toggles for the w/o-TC and w/o-SC ablations of the paper's Fig. 5.

use cpdg_tensor::{Tape, Var};

/// Weights and toggles of Eq. 17.
#[derive(Debug, Clone, Copy)]
pub struct CpdgObjective {
    /// β — balance between temporal (1−β) and structural (β) contrast.
    pub beta: f32,
    /// Include the temporal-contrast term `L_η` (off = "w/o TC").
    pub use_tc: bool,
    /// Include the structural-contrast term `L_ε` (off = "w/o SC").
    pub use_sc: bool,
}

impl Default for CpdgObjective {
    fn default() -> Self {
        Self {
            beta: 0.5,
            use_tc: true,
            use_sc: true,
        }
    }
}

impl CpdgObjective {
    /// Combines the three loss terms on the tape. `tc`/`sc` may be `None`
    /// when a batch produced no contrast centres; disabled terms are
    /// ignored regardless.
    pub fn combine(&self, tape: &mut Tape, tlp: Var, tc: Option<Var>, sc: Option<Var>) -> Var {
        let mut total = tlp;
        if self.use_tc {
            if let Some(tc) = tc {
                let w = tape.scale(tc, 1.0 - self.beta);
                total = tape.add(total, w);
            }
        }
        if self.use_sc {
            if let Some(sc) = sc {
                let w = tape.scale(sc, self.beta);
                total = tape.add(total, w);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_tensor::Matrix;

    fn scalar(tape: &mut Tape, v: f32) -> Var {
        tape.constant(Matrix::from_vec(1, 1, vec![v]))
    }

    #[test]
    fn combines_with_beta_weights() {
        let mut tape = Tape::new();
        let tlp = scalar(&mut tape, 1.0);
        let tc = scalar(&mut tape, 10.0);
        let sc = scalar(&mut tape, 100.0);
        let obj = CpdgObjective {
            beta: 0.3,
            use_tc: true,
            use_sc: true,
        };
        let total = obj.combine(&mut tape, tlp, Some(tc), Some(sc));
        // 1 + 0.7·10 + 0.3·100 = 38.
        assert!((tape.value(total).get(0, 0) - 38.0).abs() < 1e-4);
    }

    #[test]
    fn without_tc_drops_temporal_term() {
        let mut tape = Tape::new();
        let tlp = scalar(&mut tape, 1.0);
        let tc = scalar(&mut tape, 10.0);
        let sc = scalar(&mut tape, 100.0);
        let obj = CpdgObjective {
            beta: 0.5,
            use_tc: false,
            use_sc: true,
        };
        let total = obj.combine(&mut tape, tlp, Some(tc), Some(sc));
        assert!((tape.value(total).get(0, 0) - 51.0).abs() < 1e-4);
    }

    #[test]
    fn without_sc_drops_structural_term() {
        let mut tape = Tape::new();
        let tlp = scalar(&mut tape, 1.0);
        let tc = scalar(&mut tape, 10.0);
        let sc = scalar(&mut tape, 100.0);
        let obj = CpdgObjective {
            beta: 0.5,
            use_tc: true,
            use_sc: false,
        };
        let total = obj.combine(&mut tape, tlp, Some(tc), Some(sc));
        assert!((tape.value(total).get(0, 0) - 6.0).abs() < 1e-4);
    }

    #[test]
    fn missing_contrast_terms_tolerated() {
        let mut tape = Tape::new();
        let tlp = scalar(&mut tape, 2.0);
        let obj = CpdgObjective::default();
        let total = obj.combine(&mut tape, tlp, None, None);
        assert_eq!(tape.value(total).get(0, 0), 2.0);
    }

    #[test]
    fn beta_zero_is_pure_temporal() {
        let mut tape = Tape::new();
        let tlp = scalar(&mut tape, 0.0);
        let tc = scalar(&mut tape, 4.0);
        let sc = scalar(&mut tape, 8.0);
        let obj = CpdgObjective {
            beta: 0.0,
            use_tc: true,
            use_sc: true,
        };
        let total = obj.combine(&mut tape, tlp, Some(tc), Some(sc));
        assert!((tape.value(total).get(0, 0) - 4.0).abs() < 1e-5);
    }
}
