//! One-call pre-train → transfer → fine-tune → evaluate pipelines.
//!
//! [`PipelineConfig`] captures a full experimental condition (which encoder,
//! CPDG vs vanilla task-supervised pre-training vs no pre-training, which
//! fine-tuning strategy), and the `run_*` functions execute it on a
//! [`TransferSplit`]. These are the units the bench harness sweeps to
//! regenerate the paper's tables.

use crate::eie::EieFusion;
use crate::finetune::{
    finetune_link_prediction, finetune_node_classification, FinetuneConfig, FinetuneStrategy,
    LinkPredResult,
};
use crate::pretrain::{pretrain, PretrainConfig, PretrainOutput};
use cpdg_dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor};
use cpdg_graph::{DynamicGraph, NodeId, TransferSplit};
use cpdg_tensor::optim::Adam;
use cpdg_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// How the encoder is prepared before fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PretrainMode {
    /// Full CPDG pre-training (Eq. 17).
    Cpdg,
    /// Task-supervised pre-training only (the paper's vanilla DyRep/JODIE/
    /// TGN baselines): Eq. 17 with both contrast terms off.
    Vanilla,
    /// No pre-training at all (Table IX's "No Pre-train" rows).
    None,
}

/// A full experimental condition.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// DGNN backbone.
    pub encoder: EncoderKind,
    /// Memory/embedding width.
    pub dim: usize,
    /// Pre-training mode.
    pub mode: PretrainMode,
    /// Pre-training hyper-parameters (contrast toggles are overridden by
    /// `mode`).
    pub pretrain: PretrainConfig,
    /// Fine-tuning hyper-parameters.
    pub finetune: FinetuneConfig,
    /// Learning rate of the pre-training optimiser.
    pub pretrain_lr: f32,
    /// Base RNG seed (init, sampling).
    pub seed: u64,
    /// Overrides the preset's message function (ablation studies).
    pub msg_override: Option<cpdg_dgnn::MsgKind>,
    /// Overrides the preset's memory updater (ablation studies).
    pub mem_override: Option<cpdg_dgnn::MemKind>,
}

impl PipelineConfig {
    /// CPDG pre-training with EIE-GRU fine-tuning — the paper's headline
    /// configuration.
    pub fn cpdg(encoder: EncoderKind) -> Self {
        Self {
            encoder,
            dim: 32,
            mode: PretrainMode::Cpdg,
            pretrain: PretrainConfig::default(),
            finetune: FinetuneConfig {
                strategy: FinetuneStrategy::Eie(EieFusion::Gru),
                ..FinetuneConfig::default()
            },
            pretrain_lr: 2e-2,
            seed: 0,
            msg_override: None,
            mem_override: None,
        }
    }

    /// Vanilla task-supervised pre-training with full fine-tuning — the
    /// paper's DyRep/JODIE/TGN baseline rows.
    pub fn vanilla(encoder: EncoderKind) -> Self {
        Self {
            mode: PretrainMode::Vanilla,
            finetune: FinetuneConfig::default(),
            ..Self::cpdg(encoder)
        }
    }

    /// No pre-training (Table IX).
    pub fn no_pretrain(encoder: EncoderKind) -> Self {
        Self {
            mode: PretrainMode::None,
            finetune: FinetuneConfig::default(),
            ..Self::cpdg(encoder)
        }
    }

    /// Sets the seed on all nested configs.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.pretrain.seed = seed;
        self.finetune.seed = seed;
        self
    }

    /// Human-readable condition label for experiment tables.
    pub fn label(&self) -> String {
        match self.mode {
            PretrainMode::Cpdg => format!("{} with CPDG", self.encoder.name()),
            PretrainMode::Vanilla => self.encoder.name().to_string(),
            PretrainMode::None => format!("{} (no pre-train)", self.encoder.name()),
        }
    }
}

/// A Δt divisor that puts a graph's typical horizon at O(100) time-encoder
/// inputs, regardless of the dataset's time unit.
pub fn auto_time_scale(graph: &DynamicGraph) -> f64 {
    match (graph.t_min(), graph.t_max()) {
        (Some(lo), Some(hi)) if hi > lo => (hi - lo) / 100.0,
        _ => 1.0,
    }
}

/// Everything a pipeline run produces.
#[derive(Debug)]
pub struct PipelineArtifacts {
    /// The (possibly pre-trained) encoder, post fine-tuning.
    pub encoder: DgnnEncoder,
    /// All parameters.
    pub store: ParamStore,
    /// Pre-training output (empty checkpoints when mode = None).
    pub pretrain: Option<PretrainOutput>,
}

fn prepare(split: &TransferSplit, cfg: &PipelineConfig) -> PipelineArtifacts {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let time_scale = auto_time_scale(&split.pretrain);
    let mut dcfg = DgnnConfig::preset(cfg.encoder, cfg.dim, time_scale);
    if let Some(msg) = cfg.msg_override {
        dcfg.msg = msg;
    }
    if let Some(mem) = cfg.mem_override {
        dcfg.mem = mem;
    }
    let mut encoder = DgnnEncoder::new(
        &mut store,
        &mut rng,
        "enc",
        split.pretrain.num_nodes(),
        dcfg,
    );

    let pretrain_out = match cfg.mode {
        PretrainMode::None => None,
        mode => {
            let head = LinkPredictor::new(&mut store, &mut rng, "pretext_head", cfg.dim);
            let mut opt = Adam::new(cfg.pretrain_lr);
            let mut pcfg = cfg.pretrain.clone();
            if mode == PretrainMode::Vanilla {
                pcfg.objective.use_tc = false;
                pcfg.objective.use_sc = false;
            }
            Some(pretrain(
                &mut encoder,
                &head,
                &mut store,
                &mut opt,
                &split.pretrain,
                &pcfg,
            ))
        }
    };
    PipelineArtifacts {
        encoder,
        store,
        pretrain: pretrain_out,
    }
}

/// Degrades an EIE fine-tuning request to `Full` when no pre-training
/// checkpoints exist, warning through the observability layer and bumping
/// the `pipeline.eie_degraded` counter — sweeps must never mislabel this
/// condition as EIE. Returns whether the degradation happened.
fn degrade_eie_without_checkpoints(
    fcfg: &mut FinetuneConfig,
    num_checkpoints: usize,
    label: &str,
) -> bool {
    if num_checkpoints > 0 || !matches!(fcfg.strategy, FinetuneStrategy::Eie(_)) {
        return false;
    }
    cpdg_obs::counter!("pipeline.eie_degraded").inc();
    cpdg_obs::warn!(
        "core.pipeline",
        "EIE fine-tuning requested but no pre-training checkpoints exist; degrading to Full";
        pipeline = label,
    );
    fcfg.strategy = FinetuneStrategy::Full;
    true
}

/// Nodes active in the downstream graph but never seen during
/// pre-training — the paper's inductive evaluation set.
pub fn unseen_nodes(split: &TransferSplit) -> HashSet<NodeId> {
    let seen: HashSet<NodeId> = split.pretrain.active_nodes().into_iter().collect();
    split
        .downstream
        .active_nodes()
        .into_iter()
        .filter(|n| !seen.contains(n))
        .collect()
}

/// Runs the downstream *dynamic link prediction* task under `cfg`.
/// With `inductive`, only test events touching nodes unseen in pre-training
/// are scored (falls back to transductive when no such nodes exist).
pub fn run_link_prediction(
    split: &TransferSplit,
    cfg: &PipelineConfig,
    inductive: bool,
) -> LinkPredResult {
    let mut art = prepare(split, cfg);
    let checkpoints = art
        .pretrain
        .as_ref()
        .map(|p| p.checkpoints.as_slice())
        .unwrap_or(&[]);
    let mut fcfg = cfg.finetune.clone();
    let eie_degraded = degrade_eie_without_checkpoints(&mut fcfg, checkpoints.len(), &cfg.label());
    let unseen = inductive
        .then(|| unseen_nodes(split))
        .filter(|s| !s.is_empty());
    let checkpoints = checkpoints.to_vec();
    let mut res = finetune_link_prediction(
        &mut art.encoder,
        &mut art.store,
        &split.downstream,
        &checkpoints,
        &fcfg,
        unseen.as_ref(),
    );
    res.eie_degraded = eie_degraded;
    res
}

/// Runs the downstream *dynamic node classification* task under `cfg`,
/// returning the test AUC.
pub fn run_node_classification(split: &TransferSplit, cfg: &PipelineConfig) -> f64 {
    let mut art = prepare(split, cfg);
    let checkpoints = art
        .pretrain
        .as_ref()
        .map(|p| p.checkpoints.clone())
        .unwrap_or_default();
    let mut fcfg = cfg.finetune.clone();
    degrade_eie_without_checkpoints(&mut fcfg, checkpoints.len(), &cfg.label());
    finetune_node_classification(
        &mut art.encoder,
        &mut art.store,
        &split.downstream,
        &checkpoints,
        &fcfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdg_graph::split::time_transfer;
    use cpdg_graph::{generate, SyntheticConfig};

    fn quick(cfg: &mut PipelineConfig) {
        cfg.dim = 8;
        cfg.pretrain.epochs = 1;
        cfg.pretrain.batch_size = 100;
        cfg.pretrain.contrast_centers = 8;
        cfg.finetune.epochs = 1;
        cfg.finetune.batch_size = 100;
    }

    fn tiny_split(seed: u64) -> TransferSplit {
        let ds = generate(
            &SyntheticConfig {
                n_events: 800,
                ..SyntheticConfig::amazon_like(seed)
            }
            .scaled(0.1),
        );
        time_transfer(&ds.graph, 0.6).unwrap()
    }

    #[test]
    fn cpdg_pipeline_end_to_end() {
        let split = tiny_split(0);
        let mut cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(0);
        quick(&mut cfg);
        let res = run_link_prediction(&split, &cfg, false);
        assert!(res.auc.is_finite() && (0.0..=1.0).contains(&res.auc));
    }

    #[test]
    fn vanilla_and_none_modes_run() {
        let split = tiny_split(1);
        for base in [
            PipelineConfig::vanilla(EncoderKind::Jodie),
            PipelineConfig::no_pretrain(EncoderKind::Jodie),
        ] {
            let mut cfg = base.with_seed(1);
            quick(&mut cfg);
            let res = run_link_prediction(&split, &cfg, false);
            assert!(res.auc.is_finite(), "{:?}", cfg.mode);
        }
    }

    #[test]
    fn inductive_mode_runs() {
        let split = tiny_split(2);
        let mut cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(2);
        quick(&mut cfg);
        let res = run_link_prediction(&split, &cfg, true);
        assert!(res.auc.is_finite());
    }

    #[test]
    fn unseen_nodes_disjoint_from_pretrain() {
        let split = tiny_split(3);
        let unseen = unseen_nodes(&split);
        let pre: std::collections::HashSet<_> = split.pretrain.active_nodes().into_iter().collect();
        assert!(unseen.iter().all(|n| !pre.contains(n)));
    }

    #[test]
    fn auto_time_scale_spans_graph() {
        let split = tiny_split(4);
        let s = auto_time_scale(&split.pretrain);
        assert!(s > 0.0);
    }

    #[test]
    fn labels_name_conditions() {
        assert_eq!(
            PipelineConfig::cpdg(EncoderKind::Tgn).label(),
            "TGN with CPDG"
        );
        assert_eq!(PipelineConfig::vanilla(EncoderKind::Tgn).label(), "TGN");
    }

    #[test]
    fn eie_degradation_is_observable() {
        let split = tiny_split(6);
        // No pre-training → no checkpoints, yet EIE requested: the silent
        // fallback to Full must be surfaced on the result.
        let mut cfg = PipelineConfig::no_pretrain(EncoderKind::Tgn).with_seed(6);
        quick(&mut cfg);
        cfg.finetune.strategy = FinetuneStrategy::Eie(EieFusion::Gru);
        let cap = cpdg_obs::capture();
        let skips_before = cpdg_obs::metrics::counter("pipeline.eie_degraded").get();
        let res = run_link_prediction(&split, &cfg, false);
        assert!(res.eie_degraded, "degraded EIE condition must be flagged");
        // ... and must leave a structured audit trail, not just a flag.
        assert!(cpdg_obs::metrics::counter("pipeline.eie_degraded").get() > skips_before);
        let warns: Vec<_> = cap
            .records_for("core.pipeline")
            .into_iter()
            .filter(|r| r.level == cpdg_obs::Level::Warn && r.message.contains("degrading to Full"))
            .collect();
        assert!(!warns.is_empty());
        assert!(warns[0].field("pipeline").is_some());

        // A genuine CPDG run with checkpoints must NOT be flagged.
        let mut cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(6);
        quick(&mut cfg);
        let res = run_link_prediction(&split, &cfg, false);
        assert!(!res.eie_degraded);
    }

    #[test]
    fn node_classification_pipeline_runs() {
        let ds = generate(
            &SyntheticConfig {
                n_events: 1000,
                ..SyntheticConfig::wikipedia_like(5)
            }
            .scaled(0.12),
        );
        let split = time_transfer(&ds.graph, 0.6).unwrap();
        let mut cfg = PipelineConfig::cpdg(EncoderKind::Tgn).with_seed(5);
        quick(&mut cfg);
        let auc = run_node_classification(&split, &cfg);
        assert!((0.0..=1.0).contains(&auc));
    }
}
