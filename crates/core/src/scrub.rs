//! Self-healing artifact store: sealed replicas, fall-through reads with
//! auto-repair, and a budgeted background scrubber.
//!
//! CRC footers ([`integrity`](crate::integrity)) and frame checksums
//! ([`wal`](crate::wal)) *detect* silent corruption, but until this module
//! detection was lazy (only at open time) and always fail-stop (no second
//! copy to heal from). The scrub layer closes both gaps:
//!
//! * **Replicas** — [`write_replicated`] publishes every sealed artifact
//!   as `N ≥ 2` fsynced copies (`<name>`, `<name>.r1`, …), each through
//!   the same atomic temp-rename protocol as the primary, so a crash at
//!   any instant leaves every copy either old or new, never torn.
//! * **Fall-through reads with auto-repair** — [`read_sealed_replicated`]
//!   tries the primary, falls through the remaining replicas on a CRC
//!   mismatch, and rewrites every bad (or missing) copy from the first
//!   good one. Only when *every* copy is bad does the caller see the
//!   original typed [`CorruptArtifact`](crate::error::CpdgError::CorruptArtifact)
//!   naming the artifact.
//! * **The scrubber** — [`Scrubber`] walks a deterministic catalog of
//!   artifact files (WAL segments, `checkpoint.cpdg`, epoch files, the
//!   promoted pointer, quarantined candidates) re-verifying checksums on
//!   a byte-budgeted cadence, so cold corruption is found and repaired
//!   *before* the next crash recovery needs the file. A WAL segment with
//!   no sound copy is quarantined (the PR 9 suffixing discipline), which
//!   turns the next recovery into a typed
//!   [`WalGap`](crate::error::CpdgError::WalGap) refusal instead of a
//!   garbage replay.
//!
//! Chaos integration: reads consult `scrub.read`, repairs consult
//! `scrub.repair`, and every replicated read consults `integrity.bitflip`
//! — a fired bitflip fault flips one deterministically-chosen byte of the
//! bytes just read, so the chaos harness can corrupt any artifact class
//! without touching the disk.

use crate::chaos::{FaultHook, FaultPoint};
use crate::error::{CpdgError, CpdgResult};
use crate::integrity;
use crate::storage::Storage;
use std::io;
use std::path::{Path, PathBuf};

/// Default sealed-copy count (primary + one replica).
pub const DEFAULT_REPLICAS: usize = 2;

/// Name of the quarantine subdirectory used for unrepairable artifacts
/// (same convention as the trainer's candidate quarantine).
pub const QUARANTINE_DIR: &str = "quarantine";

/// The path of replica `i ≥ 1` of `path`: `<name>.r<i>` in the same
/// directory. Replica 0 is the primary itself (see [`copy_path`]).
pub fn replica_path(path: &Path, i: usize) -> PathBuf {
    debug_assert!(i >= 1, "replica indices start at 1");
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!("{name}.r{i}"))
}

/// Copy `i` of `path`: the primary for `i == 0`, else [`replica_path`].
pub fn copy_path(path: &Path, i: usize) -> PathBuf {
    if i == 0 {
        path.to_path_buf()
    } else {
        replica_path(path, i)
    }
}

/// Whether `name` is a replica file name (`<base>.r<digits>`).
pub fn is_replica_name(name: &str) -> bool {
    match name.rsplit_once(".r") {
        Some((base, digits)) => {
            !base.is_empty() && !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// Whether `name` is a scrub-layer sidecar the catalog must skip: a
/// replica copy (verified with its primary), a `.torn` forensic sidecar,
/// or atomic-publish temp residue (`.<name>.tmp`).
pub fn is_sidecar_name(name: &str) -> bool {
    is_replica_name(name)
        || name.ends_with(".torn")
        || (name.starts_with('.') && name.ends_with(".tmp"))
}

/// Atomically publishes `bytes` as `path` plus `replicas - 1` replica
/// copies. The primary is written first, so a crash mid-sequence leaves
/// the primary authoritative and stale replicas to be healed by the next
/// replicated read or scrub cycle.
pub fn write_replicated(
    storage: &dyn Storage,
    path: &Path,
    bytes: &[u8],
    replicas: usize,
) -> CpdgResult<()> {
    for i in 0..replicas.max(1) {
        let p = copy_path(path, i);
        storage
            .write_atomic(&p, bytes)
            .map_err(|e| CpdgError::io(&p, e))?;
    }
    Ok(())
}

/// Best-effort removal of every replica copy of `path` (`.r1`, `.r2`, …
/// until the first missing index). The primary itself is untouched.
pub fn remove_replicas(storage: &dyn Storage, path: &Path) {
    for i in 1.. {
        let p = replica_path(path, i);
        match storage.remove_file(&p) {
            Ok(()) => {}
            Err(_) => break,
        }
    }
}

/// Consults the `integrity.bitflip` fault point and, when it fires, flips
/// one deterministically-chosen byte of `bytes` (seeded by the artifact
/// path and length, so the same plan corrupts the same offset on every
/// run). Returns whether a flip was injected.
pub fn maybe_bitflip(hook: &FaultHook, path: &Path, bytes: &mut [u8]) -> bool {
    if bytes.is_empty() || hook.check(FaultPoint::IntegrityBitflip).is_ok() {
        return false;
    }
    let seed = integrity::crc32(path.to_string_lossy().as_bytes()) as usize;
    let offset = seed.wrapping_add(bytes.len()) % bytes.len();
    bytes[offset] ^= 0x40;
    cpdg_obs::counter!("scrub.bitflips_injected").inc();
    cpdg_obs::warn!(
        "core.scrub",
        "injected bit flip on artifact read";
        path = path.display().to_string(),
        offset = offset as u64,
    );
    true
}

/// Outcome of a successful [`read_sealed_replicated`].
#[derive(Debug, Clone)]
pub struct ReplicatedRead {
    /// The verified payload (footer stripped).
    pub payload: Vec<u8>,
    /// Copies that existed but failed their integrity check.
    pub corrupt_copies: usize,
    /// Bad or missing copies rewritten from the first good copy.
    pub repaired: usize,
}

/// Reads a footer-sealed artifact through its replica set.
///
/// Tries copy 0 (the primary), then `.r1` … `.r(replicas-1)`. The first
/// copy whose CRC verifies wins; every other copy that is corrupt *or
/// missing* is rewritten from it (each rewrite gated on the
/// `scrub.repair` fault point — a fired fault leaves that copy bad for
/// the next read or scrub cycle to retry). Errors:
///
/// * every copy absent → the primary's `NotFound` [`CpdgError::Io`], so
///   callers with a "no artifact yet" path can keep mapping it to `None`;
/// * copies present but none sound → the first copy's typed corruption
///   error, which names the artifact path.
pub fn read_sealed_replicated(
    storage: &dyn Storage,
    path: &Path,
    replicas: usize,
    hook: &FaultHook,
) -> CpdgResult<ReplicatedRead> {
    let n = replicas.max(1);
    let mut good: Option<Vec<u8>> = None;
    let mut bad: Vec<PathBuf> = Vec::new();
    let mut corrupt_copies = 0usize;
    let mut first_err: Option<CpdgError> = None;
    let mut found_any = false;
    for i in 0..n {
        let p = copy_path(path, i);
        match storage.read(&p) {
            Ok(mut bytes) => {
                found_any = true;
                maybe_bitflip(hook, &p, &mut bytes);
                match integrity::unseal_strict(&bytes, &p) {
                    Ok(_) => {
                        if good.is_none() {
                            good = Some(bytes);
                        }
                    }
                    Err(e) => {
                        corrupt_copies += 1;
                        cpdg_obs::counter!("scrub.corrupt_copies").inc();
                        cpdg_obs::warn!(
                            "core.scrub",
                            "corrupt artifact copy";
                            path = p.display().to_string(),
                            error = e.to_string(),
                        );
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        bad.push(p);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                if i == 0 && first_err.is_none() {
                    first_err = Some(CpdgError::io(&p, e));
                }
                // An absent copy (primary or replica) is healable once a
                // good copy is found.
                bad.push(p);
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(CpdgError::io(&p, e));
                }
            }
        }
    }
    let Some(sealed) = good else {
        if !found_any {
            return Err(first_err.unwrap_or_else(|| {
                CpdgError::io(path, io::Error::new(io::ErrorKind::NotFound, "no copies"))
            }));
        }
        return Err(first_err.expect("a read copy either verified or errored"));
    };
    let repaired = repair_copies(storage, &bad, &sealed, hook);
    let payload = integrity::unseal(&sealed, path)?.to_vec();
    Ok(ReplicatedRead {
        payload,
        corrupt_copies,
        repaired,
    })
}

/// Rewrites each path in `bad` with `good_bytes` (atomic publish), each
/// attempt gated on `scrub.repair`. Returns how many were repaired.
pub fn repair_copies(
    storage: &dyn Storage,
    bad: &[PathBuf],
    good_bytes: &[u8],
    hook: &FaultHook,
) -> usize {
    let mut repaired = 0;
    for p in bad {
        if let Err(fault) = hook.check(FaultPoint::ScrubRepair) {
            cpdg_obs::warn!(
                "core.scrub",
                "repair suppressed by injected fault";
                path = p.display().to_string(),
                fault = fault.to_string(),
            );
            continue;
        }
        match storage.write_atomic(p, good_bytes) {
            Ok(()) => {
                repaired += 1;
                cpdg_obs::counter!("scrub.repairs").inc();
                cpdg_obs::info!(
                    "core.scrub",
                    "repaired artifact copy from replica";
                    path = p.display().to_string(),
                    bytes = good_bytes.len() as u64,
                );
            }
            Err(e) => {
                cpdg_obs::warn!(
                    "core.scrub",
                    "repair write failed";
                    path = p.display().to_string(),
                    error = e.to_string(),
                );
            }
        }
    }
    repaired
}

/// Moves `path` into `<parent>/quarantine/` under the PR 9 suffixing
/// discipline (`<name>`, `<name>.1`, `<name>.2`, …) and drags its
/// replicas along (suffixed the same way). Returns the quarantined
/// primary's new path.
pub fn quarantine_artifact(storage: &dyn Storage, path: &Path) -> CpdgResult<PathBuf> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let qdir = parent.join(QUARANTINE_DIR);
    storage
        .create_dir_all(&qdir)
        .map_err(|e| CpdgError::io(&qdir, e))?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let mut dest = qdir.join(&name);
    let mut suffix = 0usize;
    while dest.exists() {
        suffix += 1;
        dest = qdir.join(format!("{name}.{suffix}"));
    }
    storage
        .rename(path, &dest)
        .map_err(|e| CpdgError::io(path, e))?;
    for i in 1.. {
        let rp = replica_path(path, i);
        if !rp.exists() {
            break;
        }
        let rname = rp
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let rdest = if suffix == 0 {
            qdir.join(&rname)
        } else {
            qdir.join(format!("{rname}.{suffix}"))
        };
        if storage.rename(&rp, &rdest).is_err() {
            break;
        }
    }
    cpdg_obs::counter!("scrub.quarantined").inc();
    cpdg_obs::warn!(
        "core.scrub",
        "quarantined unrepairable artifact";
        from = path.display().to_string(),
        to = dest.display().to_string(),
    );
    Ok(dest)
}

/// The artifact classes the scrubber knows how to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactClass {
    /// A sealed `wal-<start>.seg` segment (frame CRCs, not a footer).
    WalSegment,
    /// The drain checkpoint `checkpoint.cpdg` (footer-sealed JSON).
    WalCheckpoint,
    /// A model/candidate epoch file (footer-sealed JSON).
    Epoch,
    /// The promoted-epoch pointer `promoted.cpdg` (footer-sealed text).
    Pointer,
    /// A quarantined artifact — known bad, counted but never verified.
    Quarantined,
}

impl ArtifactClass {
    /// Human-readable class name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactClass::WalSegment => "wal-segment",
            ArtifactClass::WalCheckpoint => "wal-checkpoint",
            ArtifactClass::Epoch => "epoch",
            ArtifactClass::Pointer => "pointer",
            ArtifactClass::Quarantined => "quarantined",
        }
    }
}

/// Classifies one file name inside a scrub root. `None` for files the
/// scrubber must skip (sidecars, unknown formats).
pub fn classify(name: &str) -> Option<ArtifactClass> {
    if is_sidecar_name(name) {
        return None;
    }
    if name == "checkpoint.cpdg" {
        return Some(ArtifactClass::WalCheckpoint);
    }
    if name == "promoted.cpdg" {
        return Some(ArtifactClass::Pointer);
    }
    if let Some(hex) = name
        .strip_prefix("wal-")
        .and_then(|n| n.strip_suffix(".seg"))
    {
        if u64::from_str_radix(hex, 16).is_ok() {
            return Some(ArtifactClass::WalSegment);
        }
    }
    if name.ends_with(".json") {
        return Some(ArtifactClass::Epoch);
    }
    None
}

/// Scrubber tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScrubConfig {
    /// Sealed-copy count artifacts are healed back up to.
    pub replicas: usize,
    /// Byte budget per [`Scrubber::scrub_cycle`] call (`0` = unlimited).
    /// The cycle stops after the artifact that crosses the budget and the
    /// next cycle resumes at the cursor, so a large catalog is verified
    /// incrementally without a latency cliff for concurrent serving.
    pub max_bytes_per_cycle: u64,
}

impl Default for ScrubConfig {
    /// Two copies, 8 MiB verified per cycle.
    fn default() -> Self {
        Self {
            replicas: DEFAULT_REPLICAS,
            max_bytes_per_cycle: 8 << 20,
        }
    }
}

/// What one [`Scrubber::scrub_cycle`] found and did.
#[derive(Debug, Clone, Default)]
pub struct CycleReport {
    /// Artifacts whose checksums were verified this cycle.
    pub scanned: u64,
    /// Bytes read and verified this cycle.
    pub bytes: u64,
    /// Corrupt copies found (primary or replica).
    pub corrupt: u64,
    /// Copies rewritten from a good replica.
    pub repaired: u64,
    /// Reads that failed (injected `scrub.read` faults or IO errors).
    pub read_errors: u64,
    /// Artifacts with *no* sound copy: `(class, path)`. WAL segments in
    /// this list have already been quarantined.
    pub unrepairable: Vec<(ArtifactClass, PathBuf)>,
}

/// One catalog entry: a primary artifact file to verify.
#[derive(Debug, Clone)]
struct CatalogEntry {
    class: ArtifactClass,
    path: PathBuf,
    /// Whether this is its WAL directory's active tail segment (skipped:
    /// a torn tail there is a legal crash artifact, not corruption).
    active_tail: bool,
}

/// The deterministic background scrubber: walks a sorted catalog of
/// artifact files under its roots, re-verifying checksums and healing
/// from replicas, a byte budget at a time.
///
/// Synchronous and single-threaded by design — the serving integration
/// wraps it in a supervised thread; tests drive cycles directly.
pub struct Scrubber {
    roots: Vec<PathBuf>,
    config: ScrubConfig,
    cursor: usize,
}

impl Scrubber {
    /// A scrubber over `roots` (WAL directories, epoch directories —
    /// shard subdirectories and quarantine counts are discovered
    /// automatically; missing roots are skipped).
    pub fn new(roots: Vec<PathBuf>, config: ScrubConfig) -> Self {
        Self {
            roots,
            config,
            cursor: 0,
        }
    }

    /// Builds the sorted catalog of primary artifacts under the roots.
    fn catalog(&self) -> Vec<CatalogEntry> {
        let mut dirs: Vec<PathBuf> = Vec::new();
        for root in &self.roots {
            if !root.is_dir() {
                continue;
            }
            dirs.push(root.clone());
            // One level of discovery: shard WAL dirs and quarantine dirs.
            if let Ok(entries) = std::fs::read_dir(root) {
                for e in entries.flatten() {
                    let p = e.path();
                    if !p.is_dir() {
                        continue;
                    }
                    let name = e.file_name().to_string_lossy().into_owned();
                    if name.starts_with("wal.shard") || name == QUARANTINE_DIR {
                        dirs.push(p);
                    }
                }
            }
        }
        dirs.sort();
        dirs.dedup();
        let mut out = Vec::new();
        for dir in &dirs {
            let quarantined = dir.file_name().is_some_and(|n| n == QUARANTINE_DIR);
            let Ok(entries) = std::fs::read_dir(dir) else {
                continue;
            };
            let mut files: Vec<PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            files.sort();
            // The highest-start segment per directory is the active tail.
            let max_seg = files
                .iter()
                .filter_map(|p| p.file_name()?.to_str())
                .filter(|n| classify(n) == Some(ArtifactClass::WalSegment))
                .max()
                .map(str::to_owned);
            for p in files {
                let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if quarantined {
                    out.push(CatalogEntry {
                        class: ArtifactClass::Quarantined,
                        path: p.clone(),
                        active_tail: false,
                    });
                    continue;
                }
                let Some(class) = classify(name) else {
                    continue;
                };
                let active_tail =
                    class == ArtifactClass::WalSegment && max_seg.as_deref() == Some(name);
                out.push(CatalogEntry {
                    class,
                    path: p.clone(),
                    active_tail,
                });
            }
        }
        out
    }

    /// Runs one budgeted scrub cycle: verifies artifacts starting at the
    /// cursor until the byte budget is spent (or the whole catalog is
    /// covered), healing bad copies from good replicas along the way.
    pub fn scrub_cycle(&mut self, storage: &dyn Storage, hook: &FaultHook) -> CycleReport {
        let catalog = self.catalog();
        let mut report = CycleReport::default();
        if catalog.is_empty() {
            self.cursor = 0;
            return report;
        }
        let budget = self.config.max_bytes_per_cycle;
        let n = catalog.len();
        self.cursor %= n;
        for step in 0..n {
            let entry = &catalog[(self.cursor + step) % n];
            self.scrub_one(storage, hook, entry, &mut report);
            if budget > 0 && report.bytes >= budget {
                self.cursor = (self.cursor + step + 1) % n;
                cpdg_obs::counter!("scrub.cycles").inc();
                return report;
            }
        }
        self.cursor = 0;
        cpdg_obs::counter!("scrub.cycles").inc();
        report
    }

    /// Scrubs the entire catalog once, ignoring the byte budget — the
    /// offline `cpdg scrub <dir>` path.
    pub fn scrub_all(&mut self, storage: &dyn Storage, hook: &FaultHook) -> CycleReport {
        let saved = self.config.max_bytes_per_cycle;
        self.config.max_bytes_per_cycle = 0;
        self.cursor = 0;
        let report = self.scrub_cycle(storage, hook);
        self.config.max_bytes_per_cycle = saved;
        report
    }

    fn scrub_one(
        &self,
        storage: &dyn Storage,
        hook: &FaultHook,
        entry: &CatalogEntry,
        report: &mut CycleReport,
    ) {
        if entry.class == ArtifactClass::Quarantined || entry.active_tail {
            // Known-bad or actively-written files are counted, not read.
            report.scanned += 1;
            return;
        }
        if hook.check(FaultPoint::ScrubRead).is_err() {
            report.read_errors += 1;
            return;
        }
        match entry.class {
            ArtifactClass::WalSegment => self.scrub_segment(storage, hook, entry, report),
            _ => self.scrub_sealed(storage, hook, entry, report),
        }
    }

    /// Verifies a footer-sealed artifact and its replicas, repairing from
    /// the first good copy.
    fn scrub_sealed(
        &self,
        storage: &dyn Storage,
        hook: &FaultHook,
        entry: &CatalogEntry,
        report: &mut CycleReport,
    ) {
        match read_sealed_replicated(storage, &entry.path, self.config.replicas, hook) {
            Ok(read) => {
                report.scanned += 1;
                report.bytes += read.payload.len() as u64;
                report.corrupt += read.corrupt_copies as u64;
                report.repaired += read.repaired as u64;
            }
            Err(CpdgError::Io { source, .. }) if source.kind() == io::ErrorKind::NotFound => {
                // Deleted between catalog and read — not corruption.
            }
            Err(CpdgError::Io { .. }) => {
                report.read_errors += 1;
            }
            Err(_) => {
                report.scanned += 1;
                report.corrupt += 1;
                report.unrepairable.push((entry.class, entry.path.clone()));
            }
        }
    }

    /// Verifies a sealed WAL segment (frame CRCs over every copy),
    /// repairing the bad copies from a sound one; with no sound copy the
    /// segment is quarantined so recovery refuses with a typed `WalGap`
    /// instead of replaying garbage.
    fn scrub_segment(
        &self,
        storage: &dyn Storage,
        hook: &FaultHook,
        entry: &CatalogEntry,
        report: &mut CycleReport,
    ) {
        let n = self.config.replicas.max(1);
        let mut good: Option<Vec<u8>> = None;
        let mut bad: Vec<PathBuf> = Vec::new();
        let mut found_any = false;
        for i in 0..n {
            let p = copy_path(&entry.path, i);
            match storage.read(&p) {
                Ok(mut bytes) => {
                    found_any = true;
                    maybe_bitflip(hook, &p, &mut bytes);
                    if crate::wal::segment_is_sound(&bytes) {
                        if good.is_none() {
                            good = Some(bytes);
                        }
                    } else {
                        report.corrupt += 1;
                        cpdg_obs::counter!("scrub.corrupt_copies").inc();
                        bad.push(p);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    if i >= 1 {
                        bad.push(p);
                    }
                }
                Err(_) => {
                    report.read_errors += 1;
                }
            }
        }
        if !found_any {
            return; // segment truncated away between catalog and read
        }
        report.scanned += 1;
        match good {
            Some(bytes) => {
                report.bytes += bytes.len() as u64;
                report.repaired += repair_copies(storage, &bad, &bytes, hook) as u64;
            }
            None => {
                report
                    .unrepairable
                    .push((ArtifactClass::WalSegment, entry.path.clone()));
                if let Err(e) = quarantine_artifact(storage, &entry.path) {
                    cpdg_obs::warn!(
                        "core.scrub",
                        "failed to quarantine unrepairable WAL segment";
                        path = entry.path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultPlan, Trigger};
    use crate::storage::FS_STORAGE;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpdg_scrub_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn bitflip_hook(every: u64) -> FaultHook {
        FaultHook::install(&FaultPlan::new(0).with(
            FaultPoint::IntegrityBitflip,
            FaultKind::Permanent,
            Trigger::Every { k: every },
        ))
    }

    #[test]
    fn replica_names_round_trip() {
        let p = replica_path(Path::new("/a/checkpoint.cpdg"), 1);
        assert_eq!(p, Path::new("/a/checkpoint.cpdg.r1"));
        assert!(is_replica_name("checkpoint.cpdg.r1"));
        assert!(is_replica_name("wal-0000000000000000.seg.r2"));
        assert!(!is_replica_name("checkpoint.cpdg"));
        assert!(!is_replica_name("model.r1x"));
        assert!(is_sidecar_name("wal-0.seg.torn"));
        assert!(is_sidecar_name(".checkpoint.cpdg.tmp"));
    }

    #[test]
    fn classify_knows_every_artifact_class() {
        assert_eq!(
            classify("checkpoint.cpdg"),
            Some(ArtifactClass::WalCheckpoint)
        );
        assert_eq!(classify("promoted.cpdg"), Some(ArtifactClass::Pointer));
        assert_eq!(
            classify("wal-0000000000000010.seg"),
            Some(ArtifactClass::WalSegment)
        );
        assert_eq!(classify("candidate-g3.json"), Some(ArtifactClass::Epoch));
        assert_eq!(classify("checkpoint.cpdg.r1"), None);
        assert_eq!(classify("wal-0000000000000010.seg.torn"), None);
        assert_eq!(classify("notes.txt"), None);
    }

    #[test]
    fn replicated_read_heals_a_corrupt_primary() {
        let dir = test_dir("heal");
        let path = dir.join("artifact.json");
        let sealed = integrity::seal(br#"{"v":1}"#);
        write_replicated(&FS_STORAGE, &path, &sealed, 2).unwrap();
        // Corrupt the primary in place.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_sealed_replicated(&FS_STORAGE, &path, 2, &FaultHook::none()).unwrap();
        assert_eq!(read.payload, br#"{"v":1}"#);
        assert_eq!(read.corrupt_copies, 1);
        assert_eq!(read.repaired, 1);
        // The primary is healed: a plain read now verifies.
        let healed = std::fs::read(&path).unwrap();
        assert!(integrity::unseal_strict(&healed, &path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicated_read_refuses_when_every_copy_is_bad() {
        let dir = test_dir("refuse");
        let path = dir.join("artifact.json");
        let sealed = integrity::seal(br#"{"v":1}"#);
        write_replicated(&FS_STORAGE, &path, &sealed, 2).unwrap();
        for i in 0..2 {
            let p = copy_path(&path, i);
            let mut bytes = std::fs::read(&p).unwrap();
            bytes[1] ^= 0xFF;
            std::fs::write(&p, &bytes).unwrap();
        }
        let err = read_sealed_replicated(&FS_STORAGE, &path, 2, &FaultHook::none()).unwrap_err();
        assert_eq!(err.exit_code(), 4, "typed corruption, not a panic: {err}");
        assert!(err.to_string().contains("artifact.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicated_read_maps_fully_absent_to_not_found() {
        let dir = test_dir("absent");
        let path = dir.join("missing.json");
        let err = read_sealed_replicated(&FS_STORAGE, &path, 2, &FaultHook::none()).unwrap_err();
        match err {
            CpdgError::Io { source, .. } => {
                assert_eq!(source.kind(), io::ErrorKind::NotFound)
            }
            other => panic!("expected NotFound Io, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicated_read_backfills_missing_replicas() {
        let dir = test_dir("backfill");
        let path = dir.join("artifact.json");
        let sealed = integrity::seal(br#"{"v":2}"#);
        // Written with one copy (legacy), read expecting two.
        FS_STORAGE.write_atomic(&path, &sealed).unwrap();
        let read = read_sealed_replicated(&FS_STORAGE, &path, 2, &FaultHook::none()).unwrap();
        assert_eq!(read.repaired, 1);
        assert!(replica_path(&path, 1).exists(), "replica backfilled");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_bitflip_on_primary_heals_from_replica() {
        let dir = test_dir("bitflip");
        let path = dir.join("artifact.json");
        let sealed = integrity::seal(br#"{"v":3}"#);
        write_replicated(&FS_STORAGE, &path, &sealed, 2).unwrap();
        // Nth(1): only the first read (the primary) is flipped in memory.
        let hook = FaultHook::install(&FaultPlan::new(0).with(
            FaultPoint::IntegrityBitflip,
            FaultKind::Permanent,
            Trigger::Nth { n: 1 },
        ));
        let read = read_sealed_replicated(&FS_STORAGE, &path, 2, &hook).unwrap();
        assert_eq!(read.payload, br#"{"v":3}"#);
        assert_eq!(read.corrupt_copies, 1);
        // Every copy flipped → typed refusal.
        let hook = bitflip_hook(1);
        let err = read_sealed_replicated(&FS_STORAGE, &path, 2, &hook).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_cycle_repairs_and_reports() {
        let dir = test_dir("cycle");
        let ckpt = dir.join("checkpoint.cpdg");
        let sealed = integrity::seal(br#"{"applied":0}"#);
        write_replicated(&FS_STORAGE, &ckpt, &sealed, 2).unwrap();
        let epoch = dir.join("candidate-g1.json");
        write_replicated(&FS_STORAGE, &epoch, &integrity::seal(br#"{"m":1}"#), 2).unwrap();
        // Corrupt the checkpoint primary on disk.
        let mut bytes = std::fs::read(&ckpt).unwrap();
        bytes[3] ^= 0x10;
        std::fs::write(&ckpt, &bytes).unwrap();
        let mut scrubber = Scrubber::new(vec![dir.clone()], ScrubConfig::default());
        let report = scrubber.scrub_cycle(&FS_STORAGE, &FaultHook::none());
        assert_eq!(report.scanned, 2);
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.repaired, 1);
        assert!(report.unrepairable.is_empty());
        // Second cycle: everything clean.
        let report = scrubber.scrub_cycle(&FS_STORAGE, &FaultHook::none());
        assert_eq!(report.corrupt, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_reports_unrepairable_sealed_artifacts() {
        let dir = test_dir("unrepair");
        let ptr = dir.join("promoted.cpdg");
        // Single copy, corrupted — nothing to heal from.
        let mut sealed = integrity::seal(b"3\nmodel.json");
        let at = sealed.len() / 2;
        sealed[at] ^= 0x01;
        FS_STORAGE.write_atomic(&ptr, &sealed).unwrap();
        let mut scrubber = Scrubber::new(vec![dir.clone()], ScrubConfig::default());
        let report = scrubber.scrub_all(&FS_STORAGE, &FaultHook::none());
        assert_eq!(report.unrepairable.len(), 1);
        assert_eq!(report.unrepairable[0].0, ArtifactClass::Pointer);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_paces_the_catalog() {
        let dir = test_dir("budget");
        for i in 0..4 {
            let p = dir.join(format!("candidate-g{i}.json"));
            write_replicated(&FS_STORAGE, &p, &integrity::seal(&[b'x'; 256]), 2).unwrap();
        }
        let mut scrubber = Scrubber::new(
            vec![dir.clone()],
            ScrubConfig {
                replicas: 2,
                max_bytes_per_cycle: 1,
            },
        );
        // One artifact crosses the 1-byte budget per cycle; four cycles
        // cover the catalog exactly once.
        let mut scanned = 0;
        for _ in 0..4 {
            scanned += scrubber
                .scrub_cycle(&FS_STORAGE, &FaultHook::none())
                .scanned;
        }
        assert_eq!(scanned, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_uses_suffix_discipline() {
        let dir = test_dir("quarantine");
        let a = dir.join("wal-0000000000000000.seg");
        std::fs::write(&a, b"garbage").unwrap();
        let q1 = quarantine_artifact(&FS_STORAGE, &a).unwrap();
        std::fs::write(&a, b"garbage2").unwrap();
        let q2 = quarantine_artifact(&FS_STORAGE, &a).unwrap();
        assert_ne!(q1, q2);
        assert!(q2.to_string_lossy().ends_with(".1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
