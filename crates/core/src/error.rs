//! Unified error type for the CPDG runtime.
//!
//! Replaces the ad-hoc `Result<_, String>` plumbing of model IO, pipeline
//! entry points, and the CLI with one typed enum, so callers (and the
//! process exit code) can distinguish "the disk failed" from "the model
//! file is corrupt" from "training diverged".

use cpdg_dgnn::DivergenceReport;
use cpdg_graph::loader::LoadError;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Convenience alias used throughout `cpdg-core`.
pub type CpdgResult<T> = Result<T, CpdgError>;

/// Anything that can go wrong in the CPDG training/serving runtime.
#[derive(Debug)]
pub enum CpdgError {
    /// Underlying filesystem failure while touching `path`.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The OS-level error.
        source: io::Error,
    },
    /// In-memory serialisation failed (should not happen for well-formed
    /// models; indicates non-finite floats or similar).
    Serialize(String),
    /// A file exists but its contents are not a valid artifact — truncated
    /// JSON, wrong schema, mismatched shapes.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// A model/checkpoint file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this binary supports.
        expected: u32,
    },
    /// `--resume` was requested but the directory holds no valid checkpoint.
    NoCheckpoint {
        /// The checkpoint directory searched.
        dir: PathBuf,
    },
    /// The divergence watchdog exhausted its retry budget.
    Diverged(DivergenceReport),
    /// A graceful stop: the run's step budget for this invocation ran out
    /// before the stream was exhausted. Resume from the checkpoint
    /// directory to continue.
    Interrupted {
        /// Global steps completed when the run paused.
        step: usize,
        /// Total steps the full run comprises.
        total_steps: usize,
    },
    /// A data file and a model disagree on the node universe size.
    NodeCountMismatch {
        /// Nodes present in the data.
        data_nodes: usize,
        /// Nodes the model was built for.
        model_nodes: usize,
    },
    /// Dataset loading/parsing failed.
    Data(LoadError),
    /// Invalid arguments or configuration.
    Invalid(String),
    /// An input exceeded a configured resource guard (`--max-events`,
    /// `--max-nodes`) and was rejected before it could exhaust memory.
    ResourceLimit {
        /// Which guard tripped (`"events"` or `"nodes"`).
        what: &'static str,
        /// The configured ceiling.
        limit: usize,
        /// How many were seen when the guard tripped (a lower bound).
        seen: usize,
    },
    /// A chaos-injected fault survived every recovery attempt (retry
    /// budget exhausted, or a permanent fault at a non-storage point).
    Fault {
        /// Dotted fault-point name (`sampler.batch`, `ckpt.save`, …).
        point: String,
        /// Description of the injected fault.
        reason: String,
    },
    /// An artifact's CRC32 integrity footer does not match its payload:
    /// the bytes were silently altered after the atomic publish (bit rot,
    /// partial overwrite by a foreign tool). Distinct from [`Corrupt`]
    /// (unparseable contents) so operators know the file *was* valid once.
    ///
    /// [`Corrupt`]: CpdgError::Corrupt
    CorruptArtifact {
        /// The offending file.
        path: PathBuf,
        /// CRC32 recorded in the footer.
        expected: u32,
        /// CRC32 recomputed over the payload.
        found: u32,
    },
    /// The WAL's sealed segments are not a dense run of record indices: a
    /// segment was lost (quarantined with no good replica, or removed by a
    /// foreign tool), so replay would silently skip events. Refused rather
    /// than replayed — the gap names exactly which records are missing.
    WalGap {
        /// The WAL directory whose segment chain is broken.
        dir: PathBuf,
        /// First record index missing from the chain.
        expected: u64,
        /// Record index where the chain resumes.
        found: u64,
    },
    /// The process received SIGTERM/SIGINT and stopped gracefully after
    /// persisting a checkpoint. Resume from the checkpoint directory.
    Signalled {
        /// Signal number that triggered the stop (15 TERM, 2 INT).
        signal: i32,
        /// Global steps completed when the run stopped.
        step: usize,
    },
}

impl CpdgError {
    /// Wraps an IO error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        CpdgError::Io {
            path: path.into(),
            source,
        }
    }

    /// Flags a corrupt artifact.
    pub fn corrupt(path: impl Into<PathBuf>, reason: impl Into<String>) -> Self {
        CpdgError::Corrupt {
            path: path.into(),
            reason: reason.into(),
        }
    }

    /// Process exit code for this error class, so scripts can branch on
    /// failure modes (`1` generic IO/data/injected-fault, `2` usage,
    /// `3` model/data mismatch, `4` corrupt/incompatible artifact,
    /// `5` divergence, `6` interrupted-resumable, `7` resource limit,
    /// `8` graceful signal stop).
    pub fn exit_code(&self) -> u8 {
        match self {
            CpdgError::Io { .. }
            | CpdgError::Data(_)
            | CpdgError::Serialize(_)
            | CpdgError::Fault { .. } => 1,
            CpdgError::Invalid(_) => 2,
            CpdgError::NodeCountMismatch { .. } => 3,
            CpdgError::Corrupt { .. }
            | CpdgError::CorruptArtifact { .. }
            | CpdgError::WalGap { .. }
            | CpdgError::VersionMismatch { .. }
            | CpdgError::NoCheckpoint { .. } => 4,
            CpdgError::Diverged(_) => 5,
            CpdgError::Interrupted { .. } => 6,
            CpdgError::ResourceLimit { .. } => 7,
            CpdgError::Signalled { .. } => 8,
        }
    }
}

impl fmt::Display for CpdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn disp(p: &Path) -> std::path::Display<'_> {
            p.display()
        }
        match self {
            CpdgError::Io { path, source } => write!(f, "io error on {}: {source}", disp(path)),
            CpdgError::Serialize(msg) => write!(f, "serialisation failed: {msg}"),
            CpdgError::Corrupt { path, reason } => {
                write!(f, "corrupt file {}: {reason}", disp(path))
            }
            CpdgError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "file format version {found} unsupported (expected {expected})"
                )
            }
            CpdgError::NoCheckpoint { dir } => {
                write!(f, "no valid checkpoint found in {}", disp(dir))
            }
            CpdgError::Diverged(report) => write!(f, "{report}"),
            CpdgError::Interrupted { step, total_steps } => write!(
                f,
                "run paused at step {step}/{total_steps}; resume from the checkpoint directory \
                 to continue"
            ),
            CpdgError::NodeCountMismatch {
                data_nodes,
                model_nodes,
            } => write!(
                f,
                "data has {data_nodes} nodes but the model was pre-trained for {model_nodes} — \
                 pre-train on the union id space first"
            ),
            CpdgError::Data(e) => write!(f, "data error: {e}"),
            CpdgError::Invalid(msg) => write!(f, "{msg}"),
            CpdgError::ResourceLimit { what, limit, seen } => write!(
                f,
                "resource limit exceeded: {what} limit {limit}, saw at least {seen}"
            ),
            CpdgError::Fault { point, reason } => {
                write!(f, "unrecovered injected fault at {point}: {reason}")
            }
            CpdgError::CorruptArtifact {
                path,
                expected,
                found,
            } => write!(
                f,
                "integrity check failed on {}: footer crc32 {expected:#010x}, payload crc32 \
                 {found:#010x}",
                disp(path)
            ),
            CpdgError::WalGap {
                dir,
                expected,
                found,
            } => write!(
                f,
                "WAL {} has a gap in its segment chain: records {expected}..{found} are \
                 missing (a segment was quarantined or removed); restore the segment or its \
                 replica, or start from a checkpoint that covers the gap",
                disp(dir)
            ),
            CpdgError::Signalled { signal, step } => write!(
                f,
                "stopped by signal {signal} at step {step} after checkpointing; resume from the \
                 checkpoint directory to continue"
            ),
        }
    }
}

impl std::error::Error for CpdgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CpdgError::Io { source, .. } => Some(source),
            CpdgError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LoadError> for CpdgError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::ResourceLimit { what, limit, seen } => {
                CpdgError::ResourceLimit { what, limit, seen }
            }
            other => CpdgError::Data(other),
        }
    }
}

impl From<DivergenceReport> for CpdgError {
    fn from(r: DivergenceReport) -> Self {
        CpdgError::Diverged(r)
    }
}

impl From<String> for CpdgError {
    fn from(msg: String) -> Self {
        CpdgError::Invalid(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CpdgError::io(
            "/tmp/x.json",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/x.json"));
        let e = CpdgError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = CpdgError::NodeCountMismatch {
            data_nodes: 10,
            model_nodes: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        let usage = CpdgError::Invalid("bad flag".into());
        let mismatch = CpdgError::NodeCountMismatch {
            data_nodes: 2,
            model_nodes: 1,
        };
        let corrupt = CpdgError::corrupt("/m.json", "truncated");
        assert_ne!(usage.exit_code(), mismatch.exit_code());
        assert_ne!(mismatch.exit_code(), corrupt.exit_code());
        assert_ne!(usage.exit_code(), corrupt.exit_code());
    }

    #[test]
    fn resource_limits_convert_and_get_their_own_exit_code() {
        let e: CpdgError = LoadError::ResourceLimit {
            what: "events",
            limit: 10,
            seen: 11,
        }
        .into();
        assert!(matches!(
            e,
            CpdgError::ResourceLimit {
                what: "events",
                limit: 10,
                seen: 11
            }
        ));
        assert_eq!(e.exit_code(), 7);
        assert!(e.to_string().contains("limit 10"), "{e}");
        // Other load errors still map to the Data class.
        let d: CpdgError = LoadError::Empty.into();
        assert!(matches!(d, CpdgError::Data(_)));
    }

    #[test]
    fn injected_faults_name_their_point() {
        let e = CpdgError::Fault {
            point: "sampler.batch".into(),
            reason: "boom".into(),
        };
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_string().contains("sampler.batch"), "{e}");
    }

    #[test]
    fn checksum_and_signal_errors_have_distinct_codes() {
        let crc = CpdgError::CorruptArtifact {
            path: "/m.json".into(),
            expected: 0xDEAD_BEEF,
            found: 0x1234_5678,
        };
        assert_eq!(
            crc.exit_code(),
            4,
            "crc failures join the corrupt-artifact family"
        );
        assert!(crc.to_string().contains("0xdeadbeef"), "{crc}");
        assert!(crc.to_string().contains("/m.json"), "{crc}");
        let sig = CpdgError::Signalled {
            signal: 15,
            step: 7,
        };
        assert_eq!(sig.exit_code(), 8);
        assert!(sig.to_string().contains("signal 15"), "{sig}");
        assert!(sig.to_string().contains("step 7"), "{sig}");
    }

    #[test]
    fn string_errors_convert() {
        fn inner() -> CpdgResult<()> {
            Err("plain message".to_string())?;
            Ok(())
        }
        assert!(matches!(inner(), Err(CpdgError::Invalid(_))));
    }
}
