//! Property tests for the CRC32 integrity footer: `seal`/`unseal` must be
//! a lossless inverse pair on *arbitrary* payloads (including empty and
//! footer-lookalike ones), and any single-bit flip or truncation of a
//! sealed artifact must surface as detectable damage, never as a silently
//! different payload. The WAL and every checkpoint format lean on these
//! guarantees, so they are pinned here rather than per consumer.

use cpdg_core::error::CpdgError;
use cpdg_core::integrity::{seal, unseal};
use proptest::prelude::*;
use std::path::Path;

/// Arbitrary payloads: any bytes, biased small, explicitly including empty.
fn any_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seal_unseal_round_trips_any_payload(payload in any_payload()) {
        let sealed = seal(&payload);
        let back = unseal(&sealed, Path::new("/prop.bin")).unwrap();
        prop_assert_eq!(back, payload.as_slice());
    }

    #[test]
    fn sealing_is_deterministic(payload in any_payload()) {
        prop_assert_eq!(seal(&payload), seal(&payload));
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        payload in any_payload(),
        flip in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let sealed = seal(&payload);
        let mut damaged = sealed.clone();
        let at = flip.index(damaged.len());
        damaged[at] ^= 1 << bit;
        // A flip anywhere in the sealed bytes must never pass verification
        // AND hand back a payload different from the original. Flips that
        // destroy the footer's shape demote the file to a legacy
        // (unfootered) read — that is detectable damage too, because the
        // returned bytes then visibly contain footer debris, never a clean
        // forged payload equal in shape to a real one.
        match unseal(&damaged, Path::new("/prop.bin")) {
            Err(CpdgError::CorruptArtifact { expected, found, .. }) => {
                prop_assert_ne!(expected, found, "corruption report must disagree");
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(recovered) => {
                // Legacy fallback path: the footer no longer parses, so the
                // damaged file is returned whole — which differs from the
                // sealed original by exactly the flipped bit and still
                // carries the footer bytes, so it cannot be mistaken for a
                // clean round-tripped payload.
                prop_assert_eq!(recovered, damaged.as_slice());
                prop_assert_ne!(recovered, payload.as_slice());
            }
        }
    }

    #[test]
    fn truncation_never_yields_the_original_payload(
        payload in any_payload(),
        keep in any::<proptest::sample::Index>(),
    ) {
        let sealed = seal(&payload);
        // Strictly shorter than the sealed artifact.
        let cut = keep.index(sealed.len());
        let truncated = &sealed[..cut];
        match unseal(truncated, Path::new("/prop.bin")) {
            Err(CpdgError::CorruptArtifact { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(recovered) => {
                // Without a parseable footer the remnant reads as legacy
                // bytes: exactly what is on disk, nothing synthesized. The
                // one cut that reproduces the original payload is the one
                // that removes precisely the footer — indistinguishable
                // from a legacy file and the documented tolerance. Every
                // other cut leaves a strict prefix or footer debris.
                prop_assert_eq!(recovered, truncated);
                if cut != payload.len() && !payload.is_empty() {
                    prop_assert_ne!(recovered, payload.as_slice());
                }
            }
        }
    }

    #[test]
    fn sealed_length_is_payload_plus_fixed_footer(payload in any_payload()) {
        // "\n#crc32:" + 8 hex digits + "\n" — the contract DESIGN.md and the
        // WAL checkpoint loader both assume.
        prop_assert_eq!(seal(&payload).len(), payload.len() + 18);
    }
}
