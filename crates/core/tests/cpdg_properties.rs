//! Cross-module property tests for the CPDG core: sampler ↔ contrast ↔
//! objective interactions that unit tests of single modules cannot see.

use cpdg_core::contrast::structural::{structural_contrast_loss, StructuralContrastConfig};
use cpdg_core::contrast::temporal::{readout_with, temporal_contrast_loss, TemporalContrastConfig};
use cpdg_core::contrast::ReadoutKind;
use cpdg_core::eie::{EieFusion, EieModule};
use cpdg_core::sampler::batch::BatchSampler;
use cpdg_core::sampler::bfs::{eta_bfs, BfsConfig};
use cpdg_core::sampler::dfs::{eps_dfs, DfsConfig};
use cpdg_core::sampler::prob::TemporalBias;
use cpdg_dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, MemorySnapshot};
use cpdg_graph::{generate, NodeId, SyntheticConfig, Timestamp};
use cpdg_tensor::{Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(seed: u64) -> (ParamStore, DgnnEncoder, cpdg_graph::DynamicGraph) {
    let ds = generate(&SyntheticConfig { n_events: 900, ..SyntheticConfig::amazon_like(seed) }.scaled(0.12));
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
    let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), cfg);
    enc.replay(&store, &ds.graph, 150);
    (store, enc, ds.graph)
}

#[test]
fn bfs_and_dfs_subgraphs_overlap_on_recent_neighbors() {
    // With a sharp chronological temperature, η-BFS's 1-hop picks should
    // frequently coincide with ε-DFS's most-recent picks — they encode the
    // same recency preference continuously vs discretely (paper §IV-A).
    let (_, _, graph) = setup(0);
    let t = graph.t_max().unwrap() + 1.0;
    let mut rng = StdRng::seed_from_u64(1);
    let bfs_cfg = BfsConfig::new(3, 1, 0.05, TemporalBias::Chronological);
    let dfs_cfg = DfsConfig::new(3, 1);
    let mut overlaps = 0usize;
    let mut total = 0usize;
    for node in graph.active_nodes().into_iter().take(30) {
        if graph.degree_before(node, t) < 6 {
            continue;
        }
        let b = eta_bfs(&graph, node, t, &bfs_cfg, &mut rng);
        let d = eps_dfs(&graph, node, t, &dfs_cfg);
        let d_set: std::collections::HashSet<NodeId> = d[1..].iter().copied().collect();
        overlaps += b[1..].iter().filter(|n| d_set.contains(n)).count();
        total += b.len() - 1;
    }
    assert!(total > 20, "need enough samples");
    assert!(
        overlaps * 2 > total,
        "sharp chrono η-BFS should mostly agree with ε-DFS: {overlaps}/{total}"
    );
}

#[test]
fn readout_kinds_differ_on_heterogeneous_subgraphs() {
    let (store, enc, graph) = setup(1);
    let t = graph.t_max().unwrap() + 1.0;
    let node = graph
        .active_nodes()
        .into_iter()
        .max_by_key(|&n| graph.degree_before(n, t))
        .unwrap();
    let sub = eps_dfs(&graph, node, t, &DfsConfig::new(4, 2));
    assert!(sub.len() >= 3);
    let mean = readout_with(&enc, &store, &sub, ReadoutKind::Mean);
    let max = readout_with(&enc, &store, &sub, ReadoutKind::Max);
    assert!(mean.max_abs_diff(&max) > 1e-6, "pooling variants must differ");
    // Max dominates mean elementwise.
    for (m, x) in mean.data().iter().zip(max.data()) {
        assert!(x >= m, "max readout must dominate mean");
    }
}

#[test]
fn uniform_bias_removes_the_temporal_signal() {
    // Under uniform positive and negative biases, TP and TN come from the
    // same distribution, so across many centres the TC loss hovers near
    // the margin (no systematic separation), whereas the temporal-aware
    // version should deviate.
    let (store, enc, graph) = setup(2);
    let t = graph.t_max().unwrap() + 1.0;
    let centers: Vec<(NodeId, Timestamp)> = graph
        .active_nodes()
        .into_iter()
        .filter(|&n| graph.degree_before(n, t) >= 5)
        .take(24)
        .map(|n| (n, t))
        .collect();
    assert!(centers.len() >= 6, "need busy centres, got {}", centers.len());
    let nodes: Vec<NodeId> = centers.iter().map(|c| c.0).collect();
    let times: Vec<Timestamp> = centers.iter().map(|c| c.1).collect();

    let sampler = BatchSampler::new(&graph);
    let loss_with = |pos_bias, neg_bias, seed: u64| -> f32 {
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &nodes, &times);
        let cfg = TemporalContrastConfig { pos_bias, neg_bias, ..Default::default() };
        let l = temporal_contrast_loss(&mut tape, &enc, &store, &sampler, &centers, z, &cfg, seed);
        tape.value(l).get(0, 0)
    };

    // Swapping pos/neg under uniform bias changes nothing systematically;
    // under temporal bias it flips the sign of the distance difference.
    let aware = loss_with(TemporalBias::Chronological, TemporalBias::ReverseChronological, 3);
    let flipped = loss_with(TemporalBias::ReverseChronological, TemporalBias::Chronological, 3);
    assert!(
        (aware - flipped).abs() > 1e-4,
        "temporal-aware loss must be direction-sensitive: {aware} vs {flipped}"
    );
}

#[test]
fn structural_negatives_are_harder_for_similar_nodes() {
    // SC loss is non-negative and bounded by margin + max distance; basic
    // sanity across readout kinds.
    let (store, enc, graph) = setup(3);
    let t = graph.t_max().unwrap() + 1.0;
    let centers: Vec<(NodeId, Timestamp)> =
        graph.active_nodes().into_iter().take(8).map(|n| (n, t)).collect();
    let nodes: Vec<NodeId> = centers.iter().map(|c| c.0).collect();
    let times: Vec<Timestamp> = centers.iter().map(|c| c.1).collect();
    let pool = graph.active_nodes();
    let sampler = BatchSampler::new(&graph);
    for readout in [ReadoutKind::Mean, ReadoutKind::Max] {
        let mut tape = Tape::new();
        let ctx = enc.apply_pending(&mut tape, &store, &graph);
        let z = enc.embed_many(&mut tape, &store, &ctx, &graph, &nodes, &times);
        let cfg = StructuralContrastConfig { readout, ..Default::default() };
        let l = structural_contrast_loss(
            &mut tape, &enc, &store, &sampler, &centers, z, &pool, &cfg, 4,
        );
        let v = tape.value(l).get(0, 0);
        assert!(v.is_finite() && v >= 0.0, "{readout:?}: {v}");
    }
}

#[test]
fn eie_mean_of_constant_checkpoints_is_identity() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let module = EieModule::new(&mut store, &mut rng, "eie", 4, EieFusion::Mean);
    let snap = MemorySnapshot { states: Matrix::full(6, 4, 0.75), progress: 1.0 };
    let cps = vec![snap.clone(), snap.clone(), snap];
    let mut tape = Tape::new();
    let ei = module.fuse(&mut tape, &store, &cps, &[0, 3, 5]);
    assert_eq!(tape.value(ei), &Matrix::full(3, 4, 0.75));
}

#[test]
fn eie_gru_distinguishes_growth_from_decay() {
    // Two checkpoint sequences with the same multiset of states but
    // opposite order must fuse differently under GRU (order-aware), and
    // identically under Mean (order-free).
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(6);
    let gru = EieModule::new(&mut store, &mut rng, "g", 4, EieFusion::Gru);
    let mean = EieModule::new(&mut store, &mut rng, "m", 4, EieFusion::Mean);

    let mk = |v: f32, p: f64| MemorySnapshot { states: Matrix::full(2, 4, v), progress: p };
    let rising = vec![mk(0.1, 0.3), mk(0.5, 0.6), mk(0.9, 1.0)];
    let falling = vec![mk(0.9, 0.3), mk(0.5, 0.6), mk(0.1, 1.0)];

    let mut tape = Tape::new();
    let g_r = gru.fuse(&mut tape, &store, &rising, &[0, 1]);
    let g_f = gru.fuse(&mut tape, &store, &falling, &[0, 1]);
    assert!(tape.value(g_r).max_abs_diff(tape.value(g_f)) > 1e-5, "GRU is order-aware");

    let m_r = mean.fuse(&mut tape, &store, &rising, &[0, 1]);
    let m_f = mean.fuse(&mut tape, &store, &falling, &[0, 1]);
    assert!(tape.value(m_r).max_abs_diff(tape.value(m_f)) < 1e-6, "Mean is order-free");
}

#[test]
fn lstm_backbone_supports_the_full_contrast_stack() {
    // The paper's Mem(·) menu includes LSTM; make sure the whole CPDG loss
    // assembly runs on it.
    let ds = generate(&SyntheticConfig { n_events: 600, ..SyntheticConfig::amazon_like(7) }.scaled(0.1));
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut cfg = DgnnConfig::preset(EncoderKind::Tgn, 8, 10_000.0);
    cfg.mem = cpdg_dgnn::MemKind::Lstm;
    let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), cfg);
    enc.replay(&store, &ds.graph, 100);

    let t = ds.graph.t_max().unwrap() + 1.0;
    let centers: Vec<(NodeId, Timestamp)> =
        ds.graph.active_nodes().into_iter().take(6).map(|n| (n, t)).collect();
    let nodes: Vec<NodeId> = centers.iter().map(|c| c.0).collect();
    let times: Vec<Timestamp> = centers.iter().map(|c| c.1).collect();

    let mut tape = Tape::new();
    let ctx = enc.apply_pending(&mut tape, &store, &ds.graph);
    let z = enc.embed_many(&mut tape, &store, &ctx, &ds.graph, &nodes, &times);
    let sampler = BatchSampler::new(&ds.graph);
    let tc = temporal_contrast_loss(
        &mut tape, &enc, &store, &sampler, &centers, z,
        &TemporalContrastConfig::default(), 8,
    );
    let grads = tape.backward(tc);
    for (_, g) in tape.param_grads(&grads) {
        assert!(g.all_finite());
    }
}
