//! Equivalence and determinism guarantees of the indexed/batched samplers.
//!
//! Three contracts, each load-bearing for the parallel pre-training path:
//!
//! 1. **Index ≡ graph.** `eta_bfs_indexed` / `eps_dfs_indexed` over a
//!    [`TemporalAdjacencyIndex`] must reproduce `eta_bfs` / `eps_dfs` over
//!    the raw graph *exactly* — same nodes, same order, same RNG draws —
//!    on arbitrary random graphs, not just hand-picked fixtures.
//! 2. **Batch ≡ solo.** Entry `i` of a batch equals the stand-alone call
//!    with `query_rng(batch_seed, i)`.
//! 3. **Thread invariance.** Batches are identical at 1, 2 and 8 workers.

use cpdg_core::sampler::batch::{query_rng, BatchSampler};
use cpdg_core::sampler::bfs::{eta_bfs, eta_bfs_indexed, BfsConfig};
use cpdg_core::sampler::dfs::{eps_dfs, eps_dfs_indexed, DfsConfig};
use cpdg_core::sampler::prob::TemporalBias;
use cpdg_graph::{
    generate, graph_from_triples, DynamicGraph, NodeId, SyntheticConfig, TemporalAdjacencyIndex,
    Timestamp,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random-graph strategy: arbitrary (src, dst, t) triples over a small
/// universe, including self-loops, duplicate edges and tied timestamps —
/// the degenerate shapes where an index most plausibly diverges from the
/// raw adjacency scan.
fn random_graph() -> impl Strategy<Value = DynamicGraph> {
    (2usize..16).prop_flat_map(|n| {
        proptest::collection::vec(
            (0..n as NodeId, 0..n as NodeId, 0.0f64..100.0),
            1..60,
        )
        .prop_map(move |triples| {
            graph_from_triples(n, &triples).expect("finite times, in-range ids")
        })
    })
}

fn all_biases() -> [TemporalBias; 3] {
    [TemporalBias::Chronological, TemporalBias::ReverseChronological, TemporalBias::Uniform]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn indexed_bfs_equals_graph_bfs_on_random_graphs(
        graph in random_graph(),
        seed in 0u64..500,
        t in 0.0f64..120.0,
    ) {
        let index = TemporalAdjacencyIndex::build(&graph);
        let cfg = BfsConfig::new(3, 2, 0.5, all_biases()[(seed % 3) as usize]);
        for root in 0..graph.num_nodes() as NodeId {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let via_graph = eta_bfs(&graph, root, t, &cfg, &mut rng_a);
            let via_index = eta_bfs_indexed(&index, root, t, &cfg, &mut rng_b);
            prop_assert_eq!(&via_index, &via_graph, "root {} at t={}", root, t);
        }
    }

    #[test]
    fn indexed_dfs_equals_graph_dfs_on_random_graphs(
        graph in random_graph(),
        t in 0.0f64..120.0,
        eps in 1usize..4,
        k in 1usize..4,
    ) {
        let index = TemporalAdjacencyIndex::build(&graph);
        let cfg = DfsConfig::new(eps, k);
        for root in 0..graph.num_nodes() as NodeId {
            let via_graph = eps_dfs(&graph, root, t, &cfg);
            let via_index = eps_dfs_indexed(&index, root, t, &cfg);
            prop_assert_eq!(&via_index, &via_graph, "root {} at t={}", root, t);
        }
    }
}

fn workload() -> (cpdg_graph::SyntheticDataset, Vec<(NodeId, Timestamp)>) {
    let ds = generate(&SyntheticConfig::amazon_like(31).scaled(0.08));
    let t = ds.graph.t_max().unwrap() + 1.0;
    let queries: Vec<(NodeId, Timestamp)> =
        ds.graph.active_nodes().into_iter().take(40).map(|n| (n, t)).collect();
    (ds, queries)
}

#[test]
fn batch_entries_equal_solo_calls_with_query_rng() {
    let (ds, queries) = workload();
    let sampler = BatchSampler::with_threads(&ds.graph, 8);
    let bfs = BfsConfig::new(4, 2, 0.4, TemporalBias::Chronological);
    let rev = BfsConfig::new(4, 2, 0.4, TemporalBias::ReverseChronological);
    let batch_seed = 0xC0FFEE;

    let batch = sampler.sample_bfs_batch(&queries, &bfs, batch_seed);
    for (i, &(root, t)) in queries.iter().enumerate() {
        let mut rng = query_rng(batch_seed, i);
        let solo = eta_bfs_indexed(sampler.index(), root, t, &bfs, &mut rng);
        assert_eq!(batch[i], solo, "bfs query {i}");
    }

    let pairs = sampler.sample_bfs_pairs(&queries, &bfs, &rev, batch_seed);
    for (i, &(root, t)) in queries.iter().enumerate() {
        let mut rng = query_rng(batch_seed, i);
        let pos = eta_bfs_indexed(sampler.index(), root, t, &bfs, &mut rng);
        let neg = eta_bfs_indexed(sampler.index(), root, t, &rev, &mut rng);
        assert_eq!(pairs[i], (pos, neg), "pair query {i}");
    }
}

#[test]
fn batches_are_identical_across_thread_counts() {
    let (ds, queries) = workload();
    let bfs = BfsConfig::new(5, 2, 0.5, TemporalBias::Chronological);
    let rev = BfsConfig::new(5, 2, 0.5, TemporalBias::ReverseChronological);
    let dfs = DfsConfig::new(3, 2);
    let pool = ds.graph.active_nodes();

    let reference = BatchSampler::with_threads(&ds.graph, 1);
    let want_bfs = reference.sample_bfs_batch(&queries, &bfs, 42);
    let want_pairs = reference.sample_bfs_pairs(&queries, &bfs, &rev, 42);
    let want_dfs_pairs = reference.sample_dfs_pairs(&queries, &pool, &dfs, 42);

    for threads in [2, 8] {
        let s = BatchSampler::with_threads(&ds.graph, threads);
        assert_eq!(s.sample_bfs_batch(&queries, &bfs, 42), want_bfs, "{threads}t bfs");
        assert_eq!(s.sample_bfs_pairs(&queries, &bfs, &rev, 42), want_pairs, "{threads}t pairs");
        assert_eq!(
            s.sample_dfs_pairs(&queries, &pool, &dfs, 42),
            want_dfs_pairs,
            "{threads}t dfs pairs"
        );
    }
}

#[test]
fn repeated_batches_are_reproducible() {
    // Same sampler, same seed, called twice — the index is immutable and
    // each query reseeds from scratch, so nothing may carry over.
    let (ds, queries) = workload();
    let sampler = BatchSampler::with_threads(&ds.graph, 4);
    let bfs = BfsConfig::new(3, 3, 0.6, TemporalBias::Chronological);
    let a = sampler.sample_bfs_batch(&queries, &bfs, 7);
    let b = sampler.sample_bfs_batch(&queries, &bfs, 7);
    assert_eq!(a, b);
}

#[test]
fn index_rebuild_is_stable() {
    // Building the index twice from the same graph yields identical
    // flattened arrays — a prerequisite for cross-run reproducibility.
    let (ds, _) = workload();
    let a = TemporalAdjacencyIndex::build(&ds.graph);
    let b = TemporalAdjacencyIndex::build(&ds.graph);
    for node in 0..ds.graph.num_nodes() as NodeId {
        let (va, vb) = (a.neighborhood(node), b.neighborhood(node));
        assert_eq!(va.neighbors, vb.neighbors);
        assert_eq!(va.times, vb.times);
        assert_eq!(va.edges, vb.edges);
    }
}
