//! Golden regression + end-to-end determinism of the pre-training loop.
//!
//! Two layers of protection:
//!
//! - **Run-to-run / thread-count determinism** (bitwise): the trajectory is
//!   a pure function of `(dataset, config)` — repeating a run, or changing
//!   the worker-thread knob, must reproduce parameters and losses exactly.
//! - **Golden regression** (tolerance): epoch losses of a fixed-seed mini
//!   run are pinned against `tests/golden/pretrain_losses.json`, catching
//!   unintended numeric drift from refactors. Bless a legitimate change
//!   with `CPDG_BLESS=1 cargo test -p cpdg-core --test golden_pretrain`
//!   (a missing file is blessed automatically on first run).

// Test binaries are exempt from the library-crate print ban.
#![allow(clippy::disallowed_macros)]

use cpdg_core::pretrain::{pretrain, LossBreakdown, PretrainConfig};
use cpdg_dgnn::{DgnnConfig, DgnnEncoder, EncoderKind, LinkPredictor};
use cpdg_graph::{generate, SyntheticConfig};
use cpdg_tensor::optim::Adam;
use cpdg_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Mutex;

/// Serialises tests that read or write the global worker-thread knob.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

struct RunResult {
    epoch_losses: Vec<LossBreakdown>,
    params_json: String,
    checkpoint_bits: Vec<Vec<u32>>,
}

/// One fixed mini pre-training run: ~500 events, 2 epochs, TGN encoder.
/// Everything that could move is pinned by a literal seed.
fn mini_run() -> RunResult {
    let ds = generate(
        &SyntheticConfig { n_events: 500, ..SyntheticConfig::amazon_like(17) }.scaled(0.1),
    );
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(17);
    let dcfg = DgnnConfig::preset(EncoderKind::Tgn, 16, 10_000.0);
    let mut enc = DgnnEncoder::new(&mut store, &mut rng, "enc", ds.graph.num_nodes(), dcfg);
    let head = LinkPredictor::new(&mut store, &mut rng, "head", 16);
    let mut opt = Adam::new(2e-2);
    let cfg = PretrainConfig {
        epochs: 2,
        batch_size: 100,
        n_checkpoints: 4,
        contrast_centers: 12,
        seed: 9,
        ..Default::default()
    };
    let out = pretrain(&mut enc, &head, &mut store, &mut opt, &ds.graph, &cfg);
    RunResult {
        epoch_losses: out.epoch_losses,
        params_json: store.to_json(),
        checkpoint_bits: out
            .checkpoints
            .iter()
            .map(|c| c.states.data().iter().map(|v| v.to_bits()).collect())
            .collect(),
    }
}

fn assert_bitwise_equal(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(a.epoch_losses.len(), b.epoch_losses.len(), "{ctx}: epoch count");
    for (i, (x, y)) in a.epoch_losses.iter().zip(&b.epoch_losses).enumerate() {
        for (name, u, v) in [
            ("tlp", x.tlp, y.tlp),
            ("tc", x.tc, y.tc),
            ("sc", x.sc, y.sc),
            ("total", x.total, y.total),
        ] {
            assert_eq!(u.to_bits(), v.to_bits(), "{ctx}: epoch {i} {name}: {u} vs {v}");
        }
    }
    assert_eq!(a.checkpoint_bits, b.checkpoint_bits, "{ctx}: memory checkpoints");
    assert_eq!(a.params_json, b.params_json, "{ctx}: final parameters");
}

#[test]
fn pretraining_is_bitwise_reproducible_run_to_run() {
    let _lock = THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let first = mini_run();
    let second = mini_run();
    assert_bitwise_equal(&second, &first, "repeat run");
}

#[test]
fn thread_count_does_not_change_the_training_trajectory() {
    // The whole point of the determinism contract: 1 worker and 4 workers
    // walk bit-identical trajectories (threaded matmul keeps reduction
    // order; batched samplers use per-query RNG streams).
    let _lock = THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    cpdg_tensor::threading::set_threads(1);
    let solo = mini_run();
    cpdg_tensor::threading::set_threads(4);
    let parallel = mini_run();
    cpdg_tensor::threading::reset_threads();
    assert_bitwise_equal(&parallel, &solo, "4 threads vs 1 thread");
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/pretrain_losses.json")
}

#[test]
fn epoch_losses_match_golden_file() {
    let _lock = THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let got = mini_run().epoch_losses;
    let path = golden_path();

    let bless = std::env::var_os("CPDG_BLESS").is_some();
    if bless || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let json = serde_json::to_string_pretty(&got).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        eprintln!("blessed golden file at {} — rerun to verify", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap();
    let want: Vec<LossBreakdown> = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("corrupt golden file {}: {e}", path.display()));
    assert_eq!(got.len(), want.len(), "epoch count drifted; bless with CPDG_BLESS=1 if intended");

    // Tolerance absorbs cross-platform libm differences (exp/cos in the
    // time encoder), not algorithmic drift.
    let close = |a: f32, b: f32| (a - b).abs() <= 1e-3 + 1e-3 * b.abs();
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        for (name, a, b) in
            [("tlp", g.tlp, w.tlp), ("tc", g.tc, w.tc), ("sc", g.sc, w.sc), ("total", g.total, w.total)]
        {
            assert!(
                close(a, b),
                "epoch {i} {name} drifted from golden: got {a}, want {b} \
                 (bless intentional changes with CPDG_BLESS=1)"
            );
        }
    }
}
