//! Bounded admission queue: the front door of the serving engine.
//!
//! Admission is where overload must be converted into *explicit, cheap*
//! rejections. An unbounded queue converts overload into latency (every
//! queued request waits behind every other) and eventually into memory
//! exhaustion; a bounded queue converts it into a typed [`Overloaded`]
//! answer the client can act on. Producers never block: a full queue sheds
//! immediately. Consumers block until work arrives or the queue is closed
//! and drained — the graceful-shutdown contract: after [`close`], every
//! already-admitted item is still handed out exactly once, then all
//! consumers see `None`.
//!
//! [`close`]: BoundedQueue::close

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Why admission rejected a request: the queue was genuinely full, or it
/// had been closed for drain/shutdown. Clients should back off and retry
/// on `Full` but fail over on `Closed` — conflating the two made every
/// graceful drain look like overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue held `capacity` items already.
    Full,
    /// The queue was closed (drain or shutdown); it will never re-open.
    Closed,
}

/// Typed admission rejection: the queue was at capacity or closed; see
/// [`ShedReason`] for which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Capacity at the moment of rejection.
    pub capacity: usize,
    /// Whether the rejection was a capacity shed or a drain/shutdown shed.
    pub reason: ShedReason,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            ShedReason::Full => write!(f, "admission queue at capacity {}", self.capacity),
            ShedReason::Closed => write!(f, "admission queue closed (draining)"),
        }
    }
}

impl std::error::Error for Overloaded {}

/// A `total`/`shards` pair that cannot honour both halves of the
/// [`split_capacity`] contract (at least one slot per shard AND aggregate
/// ≤ `total`). Returned whenever `shards > total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityMismatch {
    /// The configured total admission bound.
    pub total: usize,
    /// The requested shard count.
    pub shards: usize,
}

impl fmt::Display for CapacityMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission capacity {} cannot give each of {} shards a slot (need capacity >= shards)",
            self.total, self.shards
        )
    }
}

impl std::error::Error for CapacityMismatch {}

/// Splits a total admission capacity across `shards` per-shard queues:
/// each queue gets `total / shards`, floored. With one shard this is
/// exactly `total`, so the legacy single-queue server is unchanged; with
/// more, the aggregate bound stays ≤ `total` (sharding never *increases*
/// how much work the server will buffer). Because every shard also needs
/// at least one slot, a configuration with `shards > total` cannot
/// satisfy both bounds and is refused with [`CapacityMismatch`] instead
/// of silently buffering `shards` items against a smaller configured
/// total (the pre-fix behaviour).
pub fn split_capacity(total: usize, shards: usize) -> Result<usize, CapacityMismatch> {
    let shards = shards.max(1);
    let total = total.max(1);
    if shards > total {
        return Err(CapacityMismatch { total, shards });
    }
    Ok(total / shards)
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity and non-blocking admission.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (≥ 1; 0 behaves as 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking admission: `Err(Overloaded)` when full or closed, with
    /// the [`ShedReason`] distinguishing the two (closed wins when both
    /// hold — a closed queue is permanently rejecting, which is the more
    /// actionable signal).
    pub fn push(&self, item: T) -> Result<(), Overloaded> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(Overloaded {
                capacity: self.capacity,
                reason: ShedReason::Closed,
            });
        }
        if st.items.len() >= self.capacity {
            return Err(Overloaded {
                capacity: self.capacity,
                reason: ShedReason::Full,
            });
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking removal: the next item, or `None` once the queue is closed
    /// *and* empty. Items admitted before [`close`](BoundedQueue::close)
    /// are always drained, never dropped.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue lock");
        }
    }

    /// Non-blocking conditional removal, the coalescing primitive: pops
    /// the front item only when one is immediately available *and*
    /// `pred(front)` holds. Returns `None` when the queue is empty, closed
    /// with nothing left, or the front item fails the predicate — the
    /// front item is never reordered or dropped, so FIFO admission order
    /// is preserved exactly (a batch is always a contiguous prefix).
    pub fn try_pop_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        match st.items.front() {
            Some(front) if pred(front) => st.items.pop_front(),
            _ => None,
        }
    }

    /// Stops admission. Already-queued items remain poppable; blocked
    /// consumers wake and drain them before observing `None`.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    /// Items currently waiting (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (diagnostic; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn split_capacity_preserves_the_single_shard_bound() {
        assert_eq!(
            split_capacity(64, 1),
            Ok(64),
            "one shard keeps the full bound"
        );
        assert_eq!(split_capacity(64, 4), Ok(16));
        assert_eq!(split_capacity(64, 0), Ok(64), "0 shards behaves as 1");
    }

    #[test]
    fn split_capacity_enforces_the_aggregate_bound_for_any_shard_count() {
        // Regression: `shards > total` used to hand every shard a 1-slot
        // queue, buffering `shards` items against a smaller configured
        // total. Sweep well past `total` to pin the refusal.
        for total in [1usize, 3, 8, 64] {
            for shards in 1..=3 * total + 4 {
                match split_capacity(total, shards) {
                    Ok(per_shard) => {
                        assert!(shards <= total, "Ok only when every shard can get a slot");
                        assert!(per_shard >= 1, "every shard queue holds at least one item");
                        assert!(
                            per_shard * shards <= total,
                            "aggregate bound never exceeds the configured total \
                             (total={total} shards={shards} per_shard={per_shard})"
                        );
                    }
                    Err(e) => {
                        assert!(
                            shards > total,
                            "refusal only when the bounds are unsatisfiable"
                        );
                        assert_eq!(e, CapacityMismatch { total, shards });
                        assert!(e.to_string().contains("cannot give each of"));
                    }
                }
            }
        }
        assert!(
            split_capacity(3, 8).is_err(),
            "the doc-comment counterexample is refused, not floored to 8×1"
        );
    }

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_with_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let err = q.push(3).unwrap_err();
        assert_eq!(
            err,
            Overloaded {
                capacity: 2,
                reason: ShedReason::Full
            }
        );
        assert_eq!(err.to_string(), "admission queue at capacity 2");
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
    }

    #[test]
    fn zero_capacity_behaves_as_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert!(q.push(8).is_err());
    }

    #[test]
    fn close_drains_admitted_items_then_yields_none() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        let err = q.push(3).unwrap_err();
        assert_eq!(
            err,
            Overloaded {
                capacity: 8,
                reason: ShedReason::Closed
            },
            "closed queue sheds with the Closed reason, not Full"
        );
        assert_eq!(
            err.to_string(),
            "admission queue closed (draining)",
            "drain/shutdown no longer renders as an at-capacity message"
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "None is sticky after drain");
    }

    #[test]
    fn closed_reason_wins_over_full() {
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        q.close();
        assert_eq!(
            q.push(2).unwrap_err().reason,
            ShedReason::Closed,
            "a queue that is both full and closed reports Closed"
        );
    }

    #[test]
    fn try_pop_if_takes_only_a_matching_contiguous_prefix() {
        let q = BoundedQueue::new(8);
        for v in [2, 4, 5, 6] {
            q.push(v).unwrap();
        }
        let even = |v: &i32| v % 2 == 0;
        assert_eq!(q.try_pop_if(even), Some(2));
        assert_eq!(q.try_pop_if(even), Some(4));
        assert_eq!(q.try_pop_if(even), None, "odd front blocks the batch");
        assert_eq!(q.pop(), Some(5), "blocking pop still sees FIFO order");
        assert_eq!(q.try_pop_if(even), Some(6));
        assert_eq!(q.try_pop_if(even), None, "empty queue never blocks");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(1024));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "every admitted item is consumed exactly once");
    }
}
