//! Bounded admission queue: the front door of the serving engine.
//!
//! Admission is where overload must be converted into *explicit, cheap*
//! rejections. An unbounded queue converts overload into latency (every
//! queued request waits behind every other) and eventually into memory
//! exhaustion; a bounded queue converts it into a typed [`Overloaded`]
//! answer the client can act on. Producers never block: a full queue sheds
//! immediately. Consumers block until work arrives or the queue is closed
//! and drained — the graceful-shutdown contract: after [`close`], every
//! already-admitted item is still handed out exactly once, then all
//! consumers see `None`.
//!
//! [`close`]: BoundedQueue::close

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Typed admission rejection: the queue was at capacity (or closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Capacity at the moment of rejection.
    pub capacity: usize,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "admission queue at capacity {}", self.capacity)
    }
}

impl std::error::Error for Overloaded {}

/// Splits a total admission capacity across `shards` per-shard queues:
/// each queue gets `total / shards`, floored, never below 1. With one
/// shard this is exactly `total`, so the legacy single-queue server is
/// unchanged; with more, the aggregate bound stays ≤ `total` (sharding
/// never *increases* how much work the server will buffer).
pub fn split_capacity(total: usize, shards: usize) -> usize {
    (total / shards.max(1)).max(1)
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity and non-blocking admission.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (≥ 1; 0 behaves as 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking admission: `Err(Overloaded)` when full or closed.
    pub fn push(&self, item: T) -> Result<(), Overloaded> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed || st.items.len() >= self.capacity {
            return Err(Overloaded {
                capacity: self.capacity,
            });
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking removal: the next item, or `None` once the queue is closed
    /// *and* empty. Items admitted before [`close`](BoundedQueue::close)
    /// are always drained, never dropped.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue lock");
        }
    }

    /// Stops admission. Already-queued items remain poppable; blocked
    /// consumers wake and drain them before observing `None`.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    /// Items currently waiting (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (diagnostic; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn split_capacity_preserves_the_single_shard_bound() {
        assert_eq!(split_capacity(64, 1), 64, "one shard keeps the full bound");
        assert_eq!(split_capacity(64, 4), 16);
        assert_eq!(split_capacity(64, 0), 64, "0 shards behaves as 1");
        assert_eq!(split_capacity(3, 8), 1, "never below one slot per shard");
        for shards in 1..12usize {
            assert!(
                split_capacity(64, shards) * shards <= 64,
                "aggregate bound never exceeds the configured total"
            );
        }
    }

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_with_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(Overloaded { capacity: 2 }));
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
    }

    #[test]
    fn zero_capacity_behaves_as_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert!(q.push(8).is_err());
    }

    #[test]
    fn close_drains_admitted_items_then_yields_none() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(
            q.push(3),
            Err(Overloaded { capacity: 8 }),
            "closed queue sheds"
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "None is sticky after drain");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(1024));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "every admitted item is consumed exactly once");
    }
}
