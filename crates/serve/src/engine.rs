//! The serving engine: model state, streamed ingestion, inference with
//! cancellation, the circuit breaker, and versioned hot reload.
//!
//! ## Concurrency model
//!
//! Two locks with strictly separated jobs:
//!
//! * `inner: Mutex<EngineInner>` — the *serialisation point*. Everything
//!   that touches mutable DGNN state (the encoder's node memory, the
//!   growing event log, breaker bookkeeping) runs under this lock, one
//!   request at a time. Serialising inference is what makes the chaos
//!   oracle possible: with a fixed request order, every fault-point hit
//!   index, breaker transition, and memory update replays identically at
//!   any worker-thread count.
//! * `current: RwLock<Arc<Epoch>>` — the *version pointer*. `PING` /
//!   `STATS` and reply stamping read the live version without queueing
//!   behind inference. Hot reload reads the new model file off-lock, then
//!   builds and swaps the new [`Epoch`] under `inner`; a request already
//!   holding `inner` finishes on the epoch it started with.
//!
//! ## Failure taxonomy (what feeds the breaker)
//!
//! Only *model-health* failures count toward tripping the circuit breaker:
//! an injected `serve.infer` fault, a non-finite output, or a panic inside
//! the forward pass. Deadline expiry is a *request*-health failure (the
//! model may be fine, the budget was not) and returns `ERR deadline`
//! without touching the breaker. Bad arguments (`ERR exec`) never reach
//! inference at all. While open, the breaker serves degraded replies from
//! the static pre-training embeddings and lets every
//! `probe_every`-th request through; one clean probe re-closes it.

use crate::breaker::{Admittance, CircuitBreaker};
use crate::protocol::{render_floats, Command, ErrKind, Reply};
use cpdg_core::error::{CpdgError, CpdgResult};
use cpdg_core::storage::Storage;
use cpdg_core::{FaultHook, FaultPoint, ModelFile};
use cpdg_dgnn::{Deadline, DgnnConfig, DgnnEncoder, EncoderState, LinkPredictor};
use cpdg_graph::{DynamicGraph, FieldId, NodeId, Timestamp};
use cpdg_tensor::{Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Parameter names the pre-training CLI registers; reloads rebuild the same
/// namespaces so [`ParamStore::load_matching`] lines up.
const ENCODER_NAME: &str = "enc";
const HEAD_NAME: &str = "pretext_head";

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-request inference budget; `None` disables deadlines.
    pub deadline: Option<Duration>,
    /// Consecutive inference failures that trip the breaker.
    pub breaker_threshold: u32,
    /// While open, every `n`-th query probes the real model.
    pub breaker_probe_every: u32,
    /// RNG seed for (re)building encoder scaffolding before weights are
    /// overwritten from the model file. Affects nothing observable when the
    /// model file covers all parameters, but kept explicit for determinism.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { deadline: None, breaker_threshold: 3, breaker_probe_every: 4, seed: 0 }
    }
}

/// One immutable model generation: weights, head, fallback embeddings.
pub struct Epoch {
    /// Monotone model generation, starting at 1; bumped on each reload.
    pub version: u64,
    /// All parameters (encoder + head), weights loaded from the model file.
    pub store: ParamStore,
    /// Link-scoring head over encoder embeddings.
    pub head: LinkPredictor,
    /// Encoder wiring.
    pub cfg: DgnnConfig,
    /// Node universe size.
    pub num_nodes: usize,
    /// `num_nodes × dim` static fallback embeddings (the final EIE memory
    /// checkpoint from pre-training; zeros when the model carries none).
    pub static_states: Matrix,
}

struct EngineInner {
    epoch: Arc<Epoch>,
    encoder: DgnnEncoder,
    graph: DynamicGraph,
    breaker: CircuitBreaker,
}

/// Monotone counters shared between the engine and the server front door.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Ingested events.
    pub events: AtomicU64,
    /// Full-fidelity `OK` answers.
    pub ok: AtomicU64,
    /// Degraded fallback answers.
    pub degraded: AtomicU64,
    /// Requests shed at admission.
    pub shed: AtomicU64,
    /// `ERR` replies of any kind (parse, exec, deadline, reload).
    pub errors: AtomicU64,
    /// Successful hot reloads.
    pub reloads: AtomicU64,
}

impl ServeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// The serving engine. Thread-safe; share behind an [`Arc`].
pub struct Engine {
    inner: Mutex<EngineInner>,
    current: RwLock<Arc<Epoch>>,
    hook: FaultHook,
    config: EngineConfig,
    /// Shared request counters (the server increments `shed`).
    pub stats: ServeStats,
}

fn build_epoch(model: &ModelFile, version: u64, seed: u64) -> (Epoch, DgnnEncoder) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let encoder = DgnnEncoder::new(
        &mut store,
        &mut rng,
        ENCODER_NAME,
        model.num_nodes,
        model.encoder_config.clone(),
    );
    let head = LinkPredictor::new(&mut store, &mut rng, HEAD_NAME, model.encoder_config.dim);
    let loaded = store.load_matching(&model.params);
    if loaded == 0 {
        cpdg_obs::warn!(
            "serve.engine",
            "model file matched no parameters; serving randomly initialised weights";
            version = version,
        );
    }
    let dim = model.encoder_config.dim;
    let static_states = match model.checkpoints.last() {
        Some(snap) if snap.states.rows() == model.num_nodes && snap.states.cols() == dim => {
            snap.states.clone()
        }
        Some(snap) => {
            cpdg_obs::warn!(
                "serve.engine",
                "EIE checkpoint shape does not match model; degraded fallback uses zeros";
                snapshot_rows = snap.states.rows(),
                snapshot_cols = snap.states.cols(),
                num_nodes = model.num_nodes,
                dim = dim,
            );
            Matrix::zeros(model.num_nodes, dim)
        }
        None => Matrix::zeros(model.num_nodes, dim),
    };
    let epoch = Epoch {
        version,
        store,
        head,
        cfg: model.encoder_config.clone(),
        num_nodes: model.num_nodes,
        static_states,
    };
    (epoch, encoder)
}

/// How one real forward pass ended.
enum InferOutcome {
    /// Finite output values.
    Ok(Vec<f32>),
    /// The per-request deadline expired mid-pass.
    DeadlineExpired,
    /// Injected fault, non-finite output, or panic — breaker-relevant.
    Failed(String),
}

impl Engine {
    /// Loads a pre-trained model bundle and builds a serving engine at
    /// version 1 with a fresh (zero) memory and an empty event log.
    pub fn from_model_file(path: &Path, config: EngineConfig, hook: FaultHook) -> CpdgResult<Self> {
        let model = ModelFile::load(path)?;
        Ok(Self::from_model(&model, config, hook))
    }

    /// Builds a serving engine from an already-loaded model bundle.
    pub fn from_model(model: &ModelFile, config: EngineConfig, hook: FaultHook) -> Self {
        let (epoch, encoder) = build_epoch(model, 1, config.seed);
        let epoch = Arc::new(epoch);
        let graph = DynamicGraph::empty(model.num_nodes);
        let breaker = CircuitBreaker::new(config.breaker_threshold, config.breaker_probe_every);
        Self {
            inner: Mutex::new(EngineInner {
                epoch: Arc::clone(&epoch),
                encoder,
                graph,
                breaker,
            }),
            current: RwLock::new(epoch),
            hook,
            config,
            stats: ServeStats::default(),
        }
    }

    /// The live model version (lock-free with respect to inference).
    pub fn version(&self) -> u64 {
        self.current.read().expect("epoch pointer lock").version
    }

    /// Node universe size of the live model.
    pub fn num_nodes(&self) -> usize {
        self.current.read().expect("epoch pointer lock").num_nodes
    }

    /// Executes one parsed command to a reply. This is the single entry
    /// point workers call; admission control happens before it.
    pub fn execute(&self, cmd: Command) -> Reply {
        cpdg_obs::counter!("serve.requests").inc();
        let reply = match cmd {
            Command::Ping => Reply::Ok { version: self.version(), body: "pong".to_string() },
            Command::Stats => self.stats_reply(),
            Command::Event { src, dst, t, field } => self.ingest(src, dst, t, field),
            Command::Emb { node, t } => self.emb(node, t),
            Command::Score { src, dst, t } => self.score(src, dst, t),
            Command::Reload { path } => self.reload(Path::new(&path)),
        };
        match &reply {
            Reply::Ok { .. } => ServeStats::bump(&self.stats.ok),
            Reply::Degraded { .. } => {
                ServeStats::bump(&self.stats.degraded);
                cpdg_obs::counter!("serve.degraded").inc();
            }
            Reply::Err { .. } => ServeStats::bump(&self.stats.errors),
        }
        reply
    }

    fn stats_reply(&self) -> Reply {
        let breaker_open = self.inner.lock().expect("engine lock").breaker.is_open();
        let s = &self.stats;
        Reply::Ok {
            version: self.version(),
            body: format!(
                "events={} ok={} degraded={} shed={} errors={} reloads={} breaker={}",
                ServeStats::get(&s.events),
                ServeStats::get(&s.ok),
                ServeStats::get(&s.degraded),
                ServeStats::get(&s.shed),
                ServeStats::get(&s.errors),
                ServeStats::get(&s.reloads),
                if breaker_open { "open" } else { "closed" },
            ),
        }
    }

    /// Ingests one streamed interaction, advancing the DGNN memory exactly
    /// as training would: flush previously pending messages, then queue
    /// this event as the new pending batch. Ingestion is never faulted and
    /// never consults the breaker — the memory stream must stay
    /// bit-identical across chaos runs for the drain oracle to hold.
    fn ingest(&self, src: NodeId, dst: NodeId, t: Timestamp, field: FieldId) -> Reply {
        let mut inner = self.inner.lock().expect("engine lock");
        let inner = &mut *inner;
        let idx = match inner.graph.push_event(src, dst, t, field) {
            Ok(idx) => idx,
            Err(e) => return Reply::Err { kind: ErrKind::Exec, detail: e.to_string() },
        };
        let mut tape = Tape::new();
        let ctx = inner.encoder.apply_pending(&mut tape, &inner.epoch.store, &inner.graph);
        let event = *inner.graph.event(idx);
        inner.encoder.commit(&tape, ctx, &[event]);
        ServeStats::bump(&self.stats.events);
        Reply::Ok { version: inner.epoch.version, body: format!("event {idx}") }
    }

    fn request_deadline(&self) -> Deadline {
        match self.config.deadline {
            Some(budget) => Deadline::within(budget),
            None => Deadline::none(),
        }
    }

    /// One guarded forward pass producing the embeddings of `nodes` at `t`,
    /// flattened row-major. All breaker-relevant failure modes funnel into
    /// [`InferOutcome::Failed`].
    fn forward(
        &self,
        inner: &EngineInner,
        nodes: &[NodeId],
        t: Timestamp,
        score_pair: bool,
    ) -> InferOutcome {
        if let Err(fault) = self.hook.check(FaultPoint::ServeInfer) {
            return InferOutcome::Failed(fault.to_string());
        }
        let deadline = self.request_deadline();
        let epoch = &inner.epoch;
        let result = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<f32>, ()> {
            let mut tape = Tape::new();
            let ctx = inner.encoder.apply_pending(&mut tape, &epoch.store, &inner.graph);
            let times = vec![t; nodes.len()];
            let z = inner
                .encoder
                .embed_many_within(&mut tape, &epoch.store, &ctx, &inner.graph, nodes, &times, &deadline)
                .map_err(|_| ())?;
            let out = if score_pair {
                // Row 0 = src, row 1 = dst.
                let z_src = tape.gather_rows(z, &[0]);
                let z_dst = tape.gather_rows(z, &[1]);
                epoch.head.score(&mut tape, &epoch.store, z_src, z_dst)
            } else {
                z
            };
            Ok(tape.value(out).data().to_vec())
        }));
        match result {
            Ok(Ok(values)) => {
                if values.iter().all(|v| v.is_finite()) {
                    InferOutcome::Ok(values)
                } else {
                    InferOutcome::Failed("non-finite inference output".to_string())
                }
            }
            Ok(Err(())) => InferOutcome::DeadlineExpired,
            Err(_) => InferOutcome::Failed("panic during inference".to_string()),
        }
    }

    /// Shared query path for `EMB` and `SCORE`.
    fn query(&self, nodes: &[NodeId], t: Option<Timestamp>, score_pair: bool) -> Reply {
        let mut inner = self.inner.lock().expect("engine lock");
        let epoch = Arc::clone(&inner.epoch);
        for &n in nodes {
            if (n as usize) >= epoch.num_nodes {
                return Reply::Err {
                    kind: ErrKind::Exec,
                    detail: format!("node {n} out of range for universe of {}", epoch.num_nodes),
                };
            }
        }
        let t = t.unwrap_or_else(|| inner.graph.t_max().unwrap_or(0.0));
        let degraded = |version: u64| {
            let body = if score_pair {
                let a = epoch.static_states.row(nodes[0] as usize);
                let b = epoch.static_states.row(nodes[1] as usize);
                let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                render_floats(&[dot])
            } else {
                render_floats(epoch.static_states.row(nodes[0] as usize))
            };
            Reply::Degraded { version, body }
        };
        match inner.breaker.admit() {
            Admittance::Shorted => degraded(epoch.version),
            Admittance::Closed | Admittance::Probe => match self.forward(&inner, nodes, t, score_pair) {
                InferOutcome::Ok(values) => {
                    inner.breaker.record_success();
                    Reply::Ok { version: epoch.version, body: render_floats(&values) }
                }
                InferOutcome::DeadlineExpired => {
                    // The model is not implicated; leave the breaker alone.
                    Reply::Err { kind: ErrKind::Deadline, detail: String::new() }
                }
                InferOutcome::Failed(detail) => {
                    cpdg_obs::warn!(
                        "serve.engine",
                        "inference failed; serving degraded fallback";
                        detail = detail.as_str(),
                        version = epoch.version,
                    );
                    inner.breaker.record_failure();
                    degraded(epoch.version)
                }
            },
        }
    }

    fn emb(&self, node: NodeId, t: Option<Timestamp>) -> Reply {
        self.query(&[node], t, false)
    }

    fn score(&self, src: NodeId, dst: NodeId, t: Option<Timestamp>) -> Reply {
        self.query(&[src, dst], t, true)
    }

    /// Hot-reloads the model from `path`. On any failure — injected
    /// `serve.reload` fault, unreadable/corrupt file, incompatible shape,
    /// state transplant refusal — the old epoch stays live and the reply is
    /// a typed `ERR reload`. On success the version increments and the live
    /// DGNN memory carries over unchanged.
    fn reload(&self, path: &Path) -> Reply {
        let fail = |detail: String| Reply::Err { kind: ErrKind::Reload, detail };
        if let Err(fault) = self.hook.check(FaultPoint::ServeReload) {
            return fail(fault.to_string());
        }
        let model = match ModelFile::load(path) {
            Ok(m) => m,
            Err(e) => return fail(e.to_string()),
        };
        let mut inner = self.inner.lock().expect("engine lock");
        let old = Arc::clone(&inner.epoch);
        if model.num_nodes != old.num_nodes || model.encoder_config.dim != old.cfg.dim {
            return fail(format!(
                "incompatible model: {} nodes dim {} (serving {} nodes dim {})",
                model.num_nodes, model.encoder_config.dim, old.num_nodes, old.cfg.dim
            ));
        }
        let (epoch, mut encoder) = build_epoch(&model, old.version + 1, self.config.seed);
        if let Err(e) = encoder.restore_state(inner.encoder.export_state()) {
            return fail(format!("memory transplant refused: {e}"));
        }
        let epoch = Arc::new(epoch);
        inner.epoch = Arc::clone(&epoch);
        inner.encoder = encoder;
        *self.current.write().expect("epoch pointer lock") = Arc::clone(&epoch);
        ServeStats::bump(&self.stats.reloads);
        cpdg_obs::counter!("serve.reloads").inc();
        cpdg_obs::info!(
            "serve.engine",
            "hot reload complete";
            version = epoch.version,
            path = path.display().to_string(),
        );
        Reply::Ok { version: epoch.version, body: "reloaded".to_string() }
    }

    /// Flushes pending encoder messages into memory (the same final flush
    /// [`DgnnEncoder::replay`] performs) — part of graceful drain.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("engine lock");
        let inner = &mut *inner;
        let mut tape = Tape::new();
        let ctx = inner.encoder.apply_pending(&mut tape, &inner.epoch.store, &inner.graph);
        inner.encoder.commit(&tape, ctx, &[]);
    }

    /// Snapshot of the full mutable encoder state (memory, cells, pending).
    pub fn export_state(&self) -> EncoderState {
        self.inner.lock().expect("engine lock").encoder.export_state()
    }

    /// Restores encoder state (e.g. a `--memory-in` warm start), validating
    /// shape compatibility against the live model.
    pub fn restore_state(&self, state: EncoderState) -> Result<(), String> {
        self.inner.lock().expect("engine lock").encoder.restore_state(state)
    }

    /// Drain-time persistence: flush pending messages, then atomically
    /// write the CRC-sealed encoder state to `path`. Byte-deterministic for
    /// a given ingested event sequence, which is what the end-to-end smoke
    /// test `cmp`s against an in-process run.
    pub fn persist_memory(&self, storage: &dyn Storage, path: &Path) -> CpdgResult<()> {
        self.flush();
        let state = self.export_state();
        let json =
            serde_json::to_vec(&state).map_err(|e| CpdgError::Serialize(e.to_string()))?;
        storage
            .write_atomic(path, &cpdg_core::integrity::seal(&json))
            .map_err(|e| CpdgError::io(path, e))
    }

    /// Loads encoder state persisted by [`Engine::persist_memory`] (legacy
    /// un-sealed files are accepted with the usual one-time warning).
    pub fn restore_memory_file(&self, storage: &dyn Storage, path: &Path) -> CpdgResult<()> {
        let bytes = storage.read(path).map_err(|e| CpdgError::io(path, e))?;
        let payload = cpdg_core::integrity::unseal(&bytes, path)?;
        let state: EncoderState = serde_json::from_slice(payload)
            .map_err(|e| CpdgError::corrupt(path, e.to_string()))?;
        self.restore_state(state).map_err(|e| CpdgError::corrupt(path, e))
    }

    /// Whether the circuit breaker is currently open (diagnostics).
    pub fn breaker_open(&self) -> bool {
        self.inner.lock().expect("engine lock").breaker.is_open()
    }

    /// A clone of the engine's fault hook (shares trigger state), so the
    /// server front door consults the same plan at `serve.accept`.
    pub fn fault_hook(&self) -> FaultHook {
        self.hook.clone()
    }
}
